"""Glitch-aware power analysis by event-driven timed simulation.

The paper's power model is zero-delay (§2): it counts at most one transition
per signal per cycle and explicitly ignores glitches, citing that "glitches
typically contribute about 20% to the total power consumption".  This module
quantifies that statement for any netlist in this system: it simulates input
*vector pairs* through the linear-delay timing model (pure transport delay,
last-write-wins event semantics) and counts **every** transition on every
stem, hazards included.

The result is a per-signal *transition density* ``T(s)`` (average number of
transitions per cycle; may exceed 1) and the corresponding power
``Σ C(s)·T(s)``, directly comparable with the zero-delay ``Σ C·E``:

- ``T(s) >= E(s)`` always — a net ends at its zero-delay final value, so it
  makes at least one transition whenever the zero-delay model counts one,
- ``T(s) = E(s)`` exactly on glitch-free nets (e.g. when all input paths
  are balanced), the surplus is glitch power.

This is an analysis tool, not part of the optimization loop (the paper's
argument for the zero-delay model — pre-layout path delays are unreliable —
applies here too).
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Optional

from repro.netlist.netlist import Gate, Netlist
from repro.netlist.simulate import random_patterns
from repro.netlist.traverse import topological_order
from repro.timing.analysis import gate_delay


@dataclass
class GlitchReport:
    """Zero-delay vs. timed power for one netlist and workload."""

    zero_delay_power: float  # Σ C·E over the sampled vector pairs
    timed_power: float  # Σ C·T, glitches included
    transition_density: dict  # name -> T(s)
    zero_delay_activity: dict  # name -> E(s) over the same sample
    num_pairs: int

    @property
    def glitch_power(self) -> float:
        return self.timed_power - self.zero_delay_power

    @property
    def glitch_fraction(self) -> float:
        """Share of the timed power due to glitches (paper: ~20 %)."""
        if self.timed_power == 0:
            return 0.0
        return self.glitch_power / self.timed_power

    def worst_glitchers(self, k: int = 10) -> list[tuple[str, float]]:
        """Signals with the largest glitch surplus ``T - E``."""
        surplus = [
            (name, self.transition_density[name] - self.zero_delay_activity[name])
            for name in self.transition_density
        ]
        surplus.sort(key=lambda item: -item[1])
        return surplus[:k]


def _steady_state(
    netlist: Netlist, order: list[Gate], inputs: Mapping[str, int]
) -> dict[str, int]:
    values: dict[str, int] = {}
    for gate in order:
        if gate.is_input:
            values[gate.name] = inputs[gate.name]
        else:
            values[gate.name] = gate.cell.evaluate(
                [values[f.name] for f in gate.fanins]
            )
    return values


def _timed_transitions(
    netlist: Netlist,
    order: list[Gate],
    delays: dict[str, float],
    state: dict[str, int],
    new_inputs: Mapping[str, int],
    counts: dict[str, int],
) -> dict[str, int]:
    """Propagate one input change event-wise; returns the settled state.

    ``state`` is the settled state before the new vector; ``counts``
    accumulates transitions per stem (inputs included).
    """
    # (time, sequence, gate) — sequence breaks ties deterministically.
    queue: list[tuple[float, int, Gate]] = []
    sequence = 0
    current = dict(state)

    def schedule_sinks(gate: Gate, at: float) -> None:
        nonlocal sequence
        for sink, _pin in gate.fanouts:
            heapq.heappush(
                queue, (at + delays[sink.name], sequence, sink)
            )
            sequence += 1

    for name, value in new_inputs.items():
        if current[name] != value:
            current[name] = value
            counts[name] = counts.get(name, 0) + 1
            schedule_sinks(netlist.gates[name], 0.0)

    while queue:
        time, _seq, gate = heapq.heappop(queue)
        new_value = gate.cell.evaluate(
            [current[f.name] for f in gate.fanins]
        )
        if new_value == current[gate.name]:
            continue
        current[gate.name] = new_value
        counts[gate.name] = counts.get(gate.name, 0) + 1
        schedule_sinks(gate, time)
    return current


def analyze_glitches(
    netlist: Netlist,
    num_pairs: int = 256,
    seed: int = 2024,
    input_probs: Optional[Mapping[str, float]] = None,
) -> GlitchReport:
    """Measure transition densities over random consecutive vector pairs."""
    order = topological_order(netlist)
    delays = {g.name: gate_delay(netlist, g) for g in order}
    # Two independent pattern sets = the "before" and "after" vectors.
    rounded = max(64, ((num_pairs + 63) // 64) * 64)
    before = random_patterns(netlist.input_names, rounded, seed, input_probs)
    after = random_patterns(
        netlist.input_names, rounded, seed + 1, input_probs
    )

    def vector(patterns, index):
        word, bit = divmod(index, 64)
        return {
            name: (int(patterns[name][word]) >> bit) & 1
            for name in netlist.input_names
        }

    counts: dict[str, int] = {g.name: 0 for g in order}
    zero_delay_changes: dict[str, int] = {g.name: 0 for g in order}
    for index in range(num_pairs):
        v0 = vector(before, index)
        v1 = vector(after, index)
        settled0 = _steady_state(netlist, order, v0)
        settled1 = _steady_state(netlist, order, v1)
        for name in settled0:
            if settled0[name] != settled1[name]:
                zero_delay_changes[name] += 1
        final = _timed_transitions(
            netlist, order, delays, settled0, v1, counts
        )
        # Transport-delay simulation must settle to the zero-delay state.
        assert final == settled1

    density = {name: counts[name] / num_pairs for name in counts}
    activity = {
        name: zero_delay_changes[name] / num_pairs
        for name in zero_delay_changes
    }
    timed_power = 0.0
    zero_power = 0.0
    for gate in order:
        load = netlist.load_of(gate)
        timed_power += load * density[gate.name]
        zero_power += load * activity[gate.name]
    return GlitchReport(
        zero_delay_power=zero_power,
        timed_power=timed_power,
        transition_density=density,
        zero_delay_activity=activity,
        num_pairs=num_pairs,
    )
