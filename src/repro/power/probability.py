"""Signal-probability engines.

All engines expose the same minimal protocol:

- ``probability(name) -> float`` — P(signal = 1),
- ``refresh()`` — recompute everything from the current netlist state,
- ``update_fanout(roots) -> list[str]`` — incrementally recompute after the
  netlist changed at ``roots``; returns the names whose probability changed.

The simulation engine is the optimizer's default: probabilities come from a
seeded bit-parallel pattern set, so incremental updates are exact restatements
of the same sample (no estimator drift between moves).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Optional

from repro.errors import NetlistError
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.simulate import (
    DEFAULT_NUM_PATTERNS,
    SimState,
    exhaustive_patterns,
    random_patterns,
)
from repro.netlist.traverse import topological_order, transitive_fanout


class ProbabilityEngine:
    """Interface for signal-probability providers."""

    netlist: Netlist

    def probability(self, name: str) -> float:
        raise NotImplementedError

    def refresh(self) -> None:
        raise NotImplementedError

    def update_fanout(self, roots: Iterable[Gate]) -> list[str]:
        """Recompute after an edit at ``roots``; names with changed p."""
        raise NotImplementedError


class SimulationProbability(ProbabilityEngine):
    """Monte-Carlo probabilities from deterministic bit-parallel patterns.

    With ``exhaustive=True`` (feasible up to 20 inputs) the sample is the
    full input space and probabilities are exact for equiprobable inputs.
    """

    def __init__(
        self,
        netlist: Netlist,
        num_patterns: int = DEFAULT_NUM_PATTERNS,
        seed: int = 2024,
        input_probs: Optional[Mapping[str, float]] = None,
        exhaustive: bool = False,
        patterns: Optional[Mapping] = None,
    ):
        self.netlist = netlist
        if patterns is None:
            if exhaustive:
                if input_probs:
                    raise NetlistError(
                        "exhaustive simulation assumes equiprobable inputs"
                    )
                patterns = exhaustive_patterns(netlist.input_names)
            else:
                patterns = random_patterns(
                    netlist.input_names, num_patterns, seed, input_probs
                )
        self.sim = SimState(netlist, patterns)
        self._probs: dict[str, float] = {}
        self.refresh()

    def probability(self, name: str) -> float:
        return self._probs[name]

    def refresh(self) -> None:
        self.sim.resimulate_all()
        self._probs = {
            gate.name: self.sim.signal_probability(gate.name)
            for gate in self.netlist.gates.values()
        }

    def update_fanout(self, roots: Iterable[Gate]) -> list[str]:
        changed_gates = self.sim.resimulate_fanout(roots)
        changed: list[str] = []
        for gate in changed_gates:
            p = self.sim.signal_probability(gate.name)
            if self._probs.get(gate.name) != p:
                self._probs[gate.name] = p
                changed.append(gate.name)
        # Drop entries for gates that disappeared, pick up new gates.
        live = set(self.netlist.gates)
        for name in [n for n in self._probs if n not in live]:
            del self._probs[name]
        for name in live - set(self._probs):
            self._probs[name] = self.sim.signal_probability(name)
            changed.append(name)
        return changed


class PropagationProbability(ProbabilityEngine):
    """Gate-local propagation assuming spatially independent fanins.

    Exact on trees, biased on reconvergent circuits; provided for the
    ablation study of estimator choice and as a fast fallback.
    """

    def __init__(
        self,
        netlist: Netlist,
        input_probs: Optional[Mapping[str, float]] = None,
    ):
        self.netlist = netlist
        self.input_probs = dict(input_probs or {})
        self._probs: dict[str, float] = {}
        self.refresh()

    def _gate_probability(self, gate: Gate) -> float:
        fanin_probs = [self._probs[f.name] for f in gate.fanins]
        return gate.cell.function.onset_probability(fanin_probs)

    def probability(self, name: str) -> float:
        return self._probs[name]

    def refresh(self) -> None:
        self._probs = {}
        for gate in topological_order(self.netlist):
            if gate.is_input:
                self._probs[gate.name] = self.input_probs.get(gate.name, 0.5)
            else:
                self._probs[gate.name] = self._gate_probability(gate)

    def update_fanout(self, roots: Iterable[Gate]) -> list[str]:
        changed: list[str] = []
        root_list = [g for g in roots if not g.is_input]
        for gate in root_list:
            p = self._gate_probability(gate)
            if self._probs.get(gate.name) != p:
                self._probs[gate.name] = p
                changed.append(gate.name)
        for gate in transitive_fanout(self.netlist, root_list):
            if gate.is_input:
                continue
            p = self._gate_probability(gate)
            if self._probs.get(gate.name) != p:
                self._probs[gate.name] = p
                changed.append(gate.name)
        live = set(self.netlist.gates)
        for name in [n for n in self._probs if n not in live]:
            del self._probs[name]
        return changed


class ExactBddProbability(ProbabilityEngine):
    """Exact probabilities through global ROBDDs.

    Builds one BDD per stem over the primary inputs.  Intended for small and
    medium circuits (node limit guards against blow-up); incremental updates
    simply rebuild the manager — exactness, not speed, is the point here.
    """

    def __init__(
        self,
        netlist: Netlist,
        input_probs: Optional[Mapping[str, float]] = None,
        node_limit: int = 2_000_000,
    ):
        self.netlist = netlist
        self.input_probs = dict(input_probs or {})
        self.node_limit = node_limit
        self._probs: dict[str, float] = {}
        self.refresh()

    def probability(self, name: str) -> float:
        return self._probs[name]

    def refresh(self) -> None:
        from repro.netlist.bdds import netlist_bdds

        var_probs = [
            self.input_probs.get(name, 0.5) for name in self.netlist.input_names
        ]
        manager, nodes = netlist_bdds(
            self.netlist, node_limit=self.node_limit
        )
        self._probs = {
            name: manager.probability(node, var_probs)
            for name, node in nodes.items()
        }

    def update_fanout(self, roots: Iterable[Gate]) -> list[str]:
        old = dict(self._probs)
        self.refresh()
        return [
            name
            for name, p in self._probs.items()
            if old.get(name) != p
        ]
