"""Power estimation under the paper's zero-delay model.

``P = 1/2 · Vdd² · f · Σ_i C(i)·E(i)`` with ``E(s) = 2·p(s)·(1 - p(s))``
(eq. 1, temporal independence of primary inputs).  The experiments report the
technology-dependent factor ``Σ C·E`` exactly as the paper's *power* column
does.

Three interchangeable probability engines are provided:

- :class:`~repro.power.probability.SimulationProbability` — deterministic
  bit-parallel Monte-Carlo; supports cheap incremental re-estimation of
  transitive-fanout regions (what POWDER's inner loop needs),
- :class:`~repro.power.probability.ExactBddProbability` — global ROBDDs,
  exact, for small circuits and for validating the estimators,
- :class:`~repro.power.probability.PropagationProbability` — gate-local
  propagation assuming spatial independence (fast, ignores reconvergence).
"""

from repro.power.probability import (
    ProbabilityEngine,
    SimulationProbability,
    ExactBddProbability,
    PropagationProbability,
)
from repro.power.estimate import PowerEstimator, PowerReport, transition_probability
from repro.power.temporal import TemporalSimulationProbability, TemporalSpec
from repro.power.glitch import GlitchReport, analyze_glitches

__all__ = [
    "ProbabilityEngine",
    "SimulationProbability",
    "ExactBddProbability",
    "PropagationProbability",
    "TemporalSimulationProbability",
    "TemporalSpec",
    "GlitchReport",
    "analyze_glitches",
    "PowerEstimator",
    "PowerReport",
    "transition_probability",
]
