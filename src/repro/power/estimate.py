"""The circuit power estimator (eq. 1) with incremental update.

:class:`PowerEstimator` binds a netlist to a probability engine and maintains
``E(s)`` per stem.  ``total()`` is the paper's power figure ``Σ C(i)·E(i)``;
:meth:`PowerEstimator.physical_power` applies the ``1/2·Vdd²·f`` prefactor
for users who want Watts.

The estimator is the object the optimizer interrogates constantly, so the
hot paths — per-stem contribution and post-move update — avoid whole-circuit
recomputation (§3.3: "the goal is to avoid as much reestimation as
possible").

In pipeline runs the estimator is owned by a
:class:`repro.pipeline.OptimizationContext` (analysis name
``"estimator"``, built lazily from the ``"probability"`` engine) and is
shared across passes until one invalidates it.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.netlist.netlist import Gate, Netlist
from repro.power.probability import ProbabilityEngine, SimulationProbability


def transition_probability(p: float) -> float:
    """``E(s) = 2·p·(1-p)`` under temporal independence (§2)."""
    return 2.0 * p * (1.0 - p)


@dataclass(frozen=True)
class PowerReport:
    """Summary of one estimation pass."""

    total: float  # Σ C(i)·E(i)
    num_signals: int
    by_signal: dict  # name -> (C, E, C*E)

    def top_contributors(self, k: int = 10) -> list[tuple[str, float]]:
        ranked = sorted(
            ((name, ce) for name, (_c, _e, ce) in self.by_signal.items()),
            key=lambda item: -item[1],
        )
        return ranked[:k]


class PowerEstimator:
    """Maintains ``Σ C·E`` for a netlist under edits."""

    def __init__(
        self,
        netlist: Netlist,
        engine: ProbabilityEngine | None = None,
        vdd: float = 5.0,
        frequency: float = 20e6,
    ):
        self.netlist = netlist
        self.engine = engine or SimulationProbability(netlist)
        if self.engine.netlist is not netlist:
            raise ValueError("probability engine bound to a different netlist")
        self.vdd = vdd
        self.frequency = frequency

    # ------------------------------------------------------------------
    # Per-signal quantities
    # ------------------------------------------------------------------
    def probability(self, gate: Gate) -> float:
        return self.engine.probability(gate.name)

    def activity(self, gate: Gate) -> float:
        """Transition probability E of the gate's stem.

        Engines that *measure* activities (e.g. the temporal pair-simulation
        engine) are preferred over the temporal-independence formula
        ``E = 2p(1-p)``.
        """
        measured = getattr(self.engine, "activity", None)
        if measured is not None:
            return measured(gate.name)
        return transition_probability(self.engine.probability(gate.name))

    def load(self, gate: Gate) -> float:
        """Capacitive load C of the gate's stem."""
        return self.netlist.load_of(gate)

    def contribution(self, gate: Gate) -> float:
        """This stem's ``C·E`` term."""
        return self.load(gate) * self.activity(gate)

    # ------------------------------------------------------------------
    # Circuit-level quantities
    # ------------------------------------------------------------------
    def total(self) -> float:
        """``Σ_i C(i)·E(i)`` over every stem (the paper's power column)."""
        return sum(self.contribution(g) for g in self.netlist.gates.values())

    def physical_power(self) -> float:
        """Power in Watts: ``1/2 · Vdd² · f · Σ C·E`` (C in farads assumed)."""
        return 0.5 * self.vdd**2 * self.frequency * self.total()

    def report(self) -> PowerReport:
        by_signal = {}
        total = 0.0
        for gate in self.netlist.gates.values():
            c = self.load(gate)
            e = self.activity(gate)
            by_signal[gate.name] = (c, e, c * e)
            total += c * e
        return PowerReport(total=total, num_signals=len(by_signal), by_signal=by_signal)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def update_after_edit(self, roots: Iterable[Gate]) -> list[str]:
        """Refresh probabilities after the netlist changed at ``roots``.

        Mirrors the paper's ``power_estimate_update``: only the transitive
        fanout of the edited stems is re-estimated.  Returns the stem names
        whose probability changed.
        """
        return self.engine.update_fanout(roots)

    def refresh(self) -> None:
        self.engine.refresh()
