"""Temporal-correlation-aware activity estimation.

The paper's base model assumes temporal independence of the primary inputs
(``E(s) = 2·p·(1-p)``) but notes that "other estimation methods considering
temporal and spatial correlations could also be used" (§2).  This module
provides such an engine: every primary input is a stationary lag-1 Markov
process described by

- ``p1`` — the stationary probability of being 1, and
- ``activity`` — the toggle probability ``P(s_t ≠ s_{t+1})``,

from which the transition rates follow (stationarity forces
``p1·P(1→0) = (1-p1)·P(0→1) = activity/2``).  The engine simulates the
circuit on *pairs* of consecutive pattern sets and measures each internal
signal's activity directly as the fraction of toggling pattern pairs —
spatial correlation between signals is captured exactly (same sample), and
input temporal correlation propagates through the logic.

With ``activity = 2·p1·(1-p1)`` for every input this reproduces the
temporal-independence model (up to sampling noise); lower activities model
slowly-changing control inputs, higher ones fast toggling data.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import NetlistError
from repro.netlist.netlist import Netlist
from repro.kernels.words import popcount
from repro.netlist.simulate import (
    DEFAULT_NUM_PATTERNS,
    SimState,
    random_patterns,
)
from repro.power.probability import SimulationProbability


@dataclass(frozen=True)
class TemporalSpec:
    """Lag-1 Markov description of one primary input."""

    p1: float = 0.5
    activity: float = 0.5  # P(toggle between consecutive cycles)

    def __post_init__(self):
        if not 0.0 <= self.p1 <= 1.0:
            raise NetlistError(f"p1 must be a probability, got {self.p1}")
        limit = 2.0 * min(self.p1, 1.0 - self.p1)
        if not 0.0 <= self.activity <= limit + 1e-12:
            raise NetlistError(
                f"activity {self.activity} infeasible for p1={self.p1} "
                f"(max {limit})"
            )

    @property
    def p_fall(self) -> float:
        """P(1 -> 0)."""
        if self.p1 == 0.0:
            return 0.0
        return min(1.0, self.activity / (2.0 * self.p1))

    @property
    def p_rise(self) -> float:
        """P(0 -> 1)."""
        if self.p1 == 1.0:
            return 0.0
        return min(1.0, self.activity / (2.0 * (1.0 - self.p1)))


def _markov_step(
    words: np.ndarray, spec: TemporalSpec, rng: np.random.Generator
) -> np.ndarray:
    """Next-cycle pattern word for one input under its Markov spec."""
    num_bits = len(words) * 64
    current = np.unpackbits(
        words.view(np.uint8), bitorder="little"
    ).astype(bool)[:num_bits]
    uniform = rng.random(num_bits)
    toggle = np.where(current, uniform < spec.p_fall, uniform < spec.p_rise)
    nxt = current ^ toggle
    return np.packbits(nxt, bitorder="little").view(np.uint64).copy()


class TemporalSimulationProbability(SimulationProbability):
    """Pair-simulation engine measuring activities directly.

    Exposes the regular :class:`SimulationProbability` interface (``sim``,
    ``probability``) plus :meth:`activity`; the power estimator prefers the
    measured activity over the ``2p(1-p)`` formula when it is available.
    """

    def __init__(
        self,
        netlist: Netlist,
        num_patterns: int = DEFAULT_NUM_PATTERNS,
        seed: int = 2024,
        input_specs: Optional[Mapping[str, TemporalSpec]] = None,
        default_spec: TemporalSpec = TemporalSpec(),
    ):
        self.specs = {
            name: (input_specs or {}).get(name, default_spec)
            for name in netlist.input_names
        }
        patterns_t = random_patterns(
            netlist.input_names,
            num_patterns,
            seed,
            {name: spec.p1 for name, spec in self.specs.items()},
        )
        rng = np.random.default_rng(seed + 1)
        patterns_next = {
            name: _markov_step(patterns_t[name], self.specs[name], rng)
            for name in netlist.input_names
        }
        # The base class owns `sim` (cycle t); `sim_next` holds cycle t+1.
        self.sim_next = SimState(netlist, patterns_next)
        self._acts: dict[str, float] = {}
        super().__init__(netlist, patterns=patterns_t)

    # ------------------------------------------------------------------
    def activity(self, name: str) -> float:
        """Measured toggle probability ``P(s_t != s_{t+1})``."""
        return self._acts[name]

    def _measure(self, names: Iterable[str]) -> None:
        total = self.sim.num_patterns
        for name in names:
            toggles = popcount(self.sim.value(name) ^ self.sim_next.value(name))
            self._acts[name] = toggles / total

    def refresh(self) -> None:
        # Base-class refresh resimulates cycle t and rebuilds probabilities.
        super().refresh()
        if not hasattr(self, "sim_next"):
            return  # during base-class __init__; measured right after
        self.sim_next.resimulate_all()
        self._acts = {}
        self._measure(self.netlist.gates)

    def update_fanout(self, roots) -> list[str]:
        roots = list(roots)
        changed = set(super().update_fanout(roots))
        changed_next = self.sim_next.resimulate_fanout(
            [g for g in roots if g.name in self.netlist.gates]
        )
        changed.update(g.name for g in changed_next)
        live = set(self.netlist.gates)
        for name in [n for n in self._acts if n not in live]:
            del self._acts[name]
        self._measure(
            [n for n in changed if n in live] + [n for n in live if n not in self._acts]
        )
        return sorted(changed & live)
