"""Delay-constraint handling for substitutions (paper §3.4).

The paper discards every substitution that would push the circuit delay past
the user constraint, identifying two mechanisms:

1. the substituting signal arrives later than the substituted signal's
   required time (a brand-new too-long path), and
2. extra fanout load slows the substituting gate, so a previously uncritical
   path through it becomes critical.

:func:`quick_delay_reject` implements (1) plus a slack test for (2) as a fast
necessary filter; :func:`substitution_meets_constraint` is the exact verdict
from a full STA pass on the already-edited trial netlist.  The optimizer uses
the quick filter during candidate selection and the exact check on the chosen
move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import TimingError
from repro.netlist.netlist import Gate, Netlist
from repro.timing.analysis import TimingAnalysis


@dataclass(frozen=True)
class DelayConstraint:
    """An absolute circuit-delay limit."""

    limit: float

    @classmethod
    def from_netlist(cls, netlist: Netlist, slack_percent: float = 0.0) -> "DelayConstraint":
        """Constraint = initial circuit delay scaled by ``1 + slack%/100``.

        ``slack_percent=0`` reproduces the paper's "with delay constraints"
        mode; Figure 6 sweeps this percentage from 0 to 200.
        """
        initial = TimingAnalysis(netlist).circuit_delay
        if slack_percent < 0:
            raise TimingError("slack percentage must be non-negative")
        return cls(limit=initial * (1.0 + slack_percent / 100.0))

    def satisfied_by(self, netlist: Netlist, tolerance: float = 1e-9) -> bool:
        return TimingAnalysis(netlist).circuit_delay <= self.limit + tolerance


def quick_delay_reject(
    timing: TimingAnalysis,
    substituting: Gate,
    substituted: Gate,
    added_load: float,
    new_gate_tau: float = 0.0,
    new_gate_resistance: float = 0.0,
) -> bool:
    """Fast necessary filter: True when the move *certainly* violates timing.

    ``timing`` must have been built with the constraint as its required
    limit, so required times already encode the budget.  ``added_load`` is
    the capacitance newly hung on the substituting stem; for OS3/IS3 the new
    gate's τ/R describe the inserted 2-input cell.
    """
    required_a = timing.required.get(substituted.name)
    if required_a is None:
        return False
    arrival_b = timing.arrival[substituting.name]
    if new_gate_tau or new_gate_resistance:
        # The new gate sits between b (and c) and the substituted fanout;
        # its own delay adds to the path.  Load on the new gate is at least
        # the load the substituted signal drove.
        arrival_b += new_gate_tau + new_gate_resistance * max(
            timing.netlist.load_of(substituted), 0.0
        )
    if arrival_b > required_a + 1e-9:
        return True
    # Mechanism (2): the substituting gate slows by R·ΔC; if that exceeds its
    # slack, some path through it would violate the constraint.
    if added_load > 0.0 and not substituting.is_input and substituting.cell.pins:
        resistance = max(p.resistance for p in substituting.cell.pins)
        slack_b = timing.slack(substituting)
        if slack_b != float("inf") and resistance * added_load > slack_b + 1e-9:
            return True
    return False


def substitution_meets_constraint(
    trial_netlist: Netlist,
    constraint: Optional[DelayConstraint],
    tolerance: float = 1e-9,
) -> bool:
    """Exact check: STA on the edited netlist against the constraint."""
    if constraint is None:
        return True
    return TimingAnalysis(trial_netlist).circuit_delay <= constraint.limit + tolerance
