"""Arrival/required-time computation.

The model is the paper's: a gate's delay is ``τ + R·C_out`` where ``C_out``
is the total capacitance its stem drives.  τ and R are taken as the maximum
over the cell's pins (pins are uniform in genlib ``PIN *`` libraries, so this
is exact there and conservative otherwise).  Primary inputs arrive at time 0
and primary outputs impose their required time on the fanin cone.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TimingError
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import topological_order

_INF = float("inf")


def gate_delay(netlist: Netlist, gate: Gate, extra_load: float = 0.0) -> float:
    """``D(s) = τ(s) + R(s)·C(s)`` for a logic gate (0 for primary inputs)."""
    if gate.is_input:
        return 0.0
    pins = gate.cell.pins
    if not pins:  # constant driver: no signal transition, no delay
        return 0.0
    tau = max(p.tau for p in pins)
    resistance = max(p.resistance for p in pins)
    return tau + resistance * (netlist.load_of(gate) + extra_load)


class TimingAnalysis:
    """One full STA pass over a netlist; immutable snapshot semantics.

    Construct a new instance after netlist edits (cheap: one topological
    sweep).  ``required_limit`` is the delay constraint applied at every
    primary output; ``None`` means "constrain to the computed circuit delay",
    which makes all slacks non-negative by construction.
    """

    def __init__(self, netlist: Netlist, required_limit: Optional[float] = None):
        self.netlist = netlist
        self.arrival: dict[str, float] = {}
        self.required: dict[str, float] = {}
        self.delay_of: dict[str, float] = {}
        self._run(required_limit)

    def _run(self, required_limit: Optional[float]) -> None:
        order = topological_order(self.netlist)
        for gate in order:
            d = gate_delay(self.netlist, gate)
            self.delay_of[gate.name] = d
            if gate.is_input or not gate.fanins:
                self.arrival[gate.name] = d if not gate.is_input else 0.0
            else:
                self.arrival[gate.name] = d + max(
                    self.arrival[f.name] for f in gate.fanins
                )
        self.circuit_delay = max(
            (self.arrival[driver.name] for driver in self.netlist.outputs.values()),
            default=0.0,
        )
        limit = required_limit if required_limit is not None else self.circuit_delay
        self.required_limit = limit
        for gate in order:
            self.required[gate.name] = _INF
        for driver in self.netlist.outputs.values():
            self.required[driver.name] = min(self.required[driver.name], limit)
        for gate in reversed(order):
            req = self.required[gate.name]
            for fanin in gate.fanins:
                candidate = req - self.delay_of[gate.name]
                if candidate < self.required[fanin.name]:
                    self.required[fanin.name] = candidate

    # ------------------------------------------------------------------
    def slack(self, gate: Gate) -> float:
        """Required minus arrival; negative when the constraint is violated."""
        req = self.required[gate.name]
        if req == _INF:
            # Dead logic: no path to any output; never timing-critical.
            return _INF
        return req - self.arrival[gate.name]

    def worst_slack(self) -> float:
        return min(
            (self.slack(g) for g in self.netlist.gates.values()),
            default=0.0,
        )

    def meets(self, limit: float, tolerance: float = 1e-9) -> bool:
        return self.circuit_delay <= limit + tolerance

    def critical_path(self) -> list[Gate]:
        """One maximal-arrival path, outputs back to inputs."""
        if not self.netlist.outputs:
            return []
        end = max(
            self.netlist.outputs.values(), key=lambda g: self.arrival[g.name]
        )
        path = [end]
        gate = end
        while gate.fanins:
            gate = max(gate.fanins, key=lambda f: self.arrival[f.name])
            path.append(gate)
        path.reverse()
        return path

    def validate(self) -> None:
        """Internal consistency checks (used by the test-suite)."""
        for gate in self.netlist.gates.values():
            for fanin in gate.fanins:
                if (
                    self.arrival[gate.name]
                    < self.arrival[fanin.name] + self.delay_of[gate.name] - 1e-9
                ):
                    raise TimingError(
                        f"arrival of {gate.name!r} precedes fanin {fanin.name!r}"
                    )
