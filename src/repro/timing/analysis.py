"""Arrival/required-time computation.

The model is the paper's: a gate's delay is ``τ + R·C_out`` where ``C_out``
is the total capacitance its stem drives.  τ and R are taken as the maximum
over the cell's pins (pins are uniform in genlib ``PIN *`` libraries, so this
is exact there and conservative otherwise).  Primary inputs arrive at time 0
and primary outputs impose their required time on the fanin cone.

:class:`TimingAnalysis` is incremental: after an in-place netlist edit,
:meth:`update_after_edit` re-propagates gate delays and arrival times
through the dirtied fanout cone only, producing floats identical to a
from-scratch rebuild on the same netlist (untouched gates keep delays
computed from identical fanout lists, so every recomputed value sees
bit-equal inputs).  Required times are derived lazily — one backward pass
on first access, invalidated by updates — because the optimizer only reads
them for the quick delay filter, not after every edit.

:meth:`what_if` answers "what would the circuit delay be after this
substitution?" without building a trial netlist copy: it emulates the
rewiring, the dead-logic sweep, and the load changes on a virtual overlay
graph, re-deriving arrival times only inside the dirtied region and
falling back to committed arrivals elsewhere.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING, Optional

from repro.errors import TimingError
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import (
    topological_index,
    topological_order,
    transitive_fanout,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.transform.substitution import Substitution

_INF = float("inf")


def gate_delay(netlist: Netlist, gate: Gate, extra_load: float = 0.0) -> float:
    """``D(s) = τ(s) + R(s)·C(s)`` for a logic gate (0 for primary inputs)."""
    if gate.is_input:
        return 0.0
    pins = gate.cell.pins
    if not pins:  # constant driver: no signal transition, no delay
        return 0.0
    tau = max(p.tau for p in pins)
    resistance = max(p.resistance for p in pins)
    return tau + resistance * (netlist.load_of(gate) + extra_load)


def _delay_for_load(gate: Gate, load: float) -> float:
    """:func:`gate_delay` with an explicit load (trial/what-if paths)."""
    if gate.is_input:
        return 0.0
    pins = gate.cell.pins
    if not pins:
        return 0.0
    tau = max(p.tau for p in pins)
    resistance = max(p.resistance for p in pins)
    return tau + resistance * load


class TimingAnalysis:
    """Incremental STA bound to one netlist.

    ``required_limit`` is the delay constraint applied at every primary
    output; ``None`` means "constrain to the computed circuit delay", which
    makes all slacks non-negative by construction.  After in-place netlist
    edits call :meth:`update_after_edit` with the dirtied gates instead of
    constructing a new instance.

    In pipeline runs the instance is owned by a
    :class:`repro.pipeline.OptimizationContext` (analysis name
    ``"timing"``, built against the ``"constraint"`` analysis' limit).
    """

    def __init__(self, netlist: Netlist, required_limit: Optional[float] = None):
        self.netlist = netlist
        self.arrival: dict[str, float] = {}
        self.delay_of: dict[str, float] = {}
        self._limit = required_limit
        self._required: Optional[dict[str, float]] = None
        self._forward_full()

    # ------------------------------------------------------------------
    # Forward pass (arrival times)
    # ------------------------------------------------------------------
    def _forward_full(self) -> None:
        for gate in topological_order(self.netlist):
            d = gate_delay(self.netlist, gate)
            self.delay_of[gate.name] = d
            if gate.is_input or not gate.fanins:
                self.arrival[gate.name] = d if not gate.is_input else 0.0
            else:
                self.arrival[gate.name] = d + max(
                    self.arrival[f.name] for f in gate.fanins
                )
        self.circuit_delay = max(
            (self.arrival[driver.name] for driver in self.netlist.outputs.values()),
            default=0.0,
        )
        self._required = None

    def update_after_edit(self, roots: Iterable[Gate]) -> None:
        """Re-propagate delays and arrivals after an in-place netlist edit.

        ``roots`` must contain every live gate whose fanin list, fanout
        list (i.e. load), or primary-output binding changed — newly added
        gates included.  Gates removed from the netlist are detected by
        absence.  The result is float-identical to rebuilding from scratch.
        """
        live = self.netlist.gates
        for name in [n for n in self.arrival if n not in live]:
            del self.arrival[name]
            del self.delay_of[name]
        order = topological_order(self.netlist)
        index = topological_index(self.netlist)
        dirty = {id(g) for g in roots if g.name in live}
        if dirty:
            changed: set[int] = set()
            for pos in range(min(index[i] for i in dirty), len(order)):
                gate = order[pos]
                known = gate.name in self.arrival
                if id(gate) in dirty or not known:
                    self.delay_of[gate.name] = gate_delay(self.netlist, gate)
                elif not any(id(f) in changed for f in gate.fanins):
                    continue
                d = self.delay_of[gate.name]
                if gate.is_input or not gate.fanins:
                    arrival = 0.0 if gate.is_input else d
                else:
                    arrival = d + max(self.arrival[f.name] for f in gate.fanins)
                if not known or arrival != self.arrival[gate.name]:
                    self.arrival[gate.name] = arrival
                    changed.add(id(gate))
        self.circuit_delay = max(
            (self.arrival[driver.name] for driver in self.netlist.outputs.values()),
            default=0.0,
        )
        self._required = None

    # ------------------------------------------------------------------
    # Backward pass (required times) — lazy
    # ------------------------------------------------------------------
    @property
    def required_limit(self) -> float:
        return self._limit if self._limit is not None else self.circuit_delay

    @property
    def required(self) -> dict[str, float]:
        if self._required is None:
            order = topological_order(self.netlist)
            limit = self.required_limit
            required = {gate.name: _INF for gate in order}
            for driver in self.netlist.outputs.values():
                required[driver.name] = min(required[driver.name], limit)
            for gate in reversed(order):
                req = required[gate.name]
                for fanin in gate.fanins:
                    candidate = req - self.delay_of[gate.name]
                    if candidate < required[fanin.name]:
                        required[fanin.name] = candidate
            self._required = required
        return self._required

    # ------------------------------------------------------------------
    def slack(self, gate: Gate) -> float:
        """Required minus arrival; negative when the constraint is violated."""
        req = self.required[gate.name]
        if req == _INF:
            # Dead logic: no path to any output; never timing-critical.
            return _INF
        return req - self.arrival[gate.name]

    def worst_slack(self) -> float:
        return min(
            (self.slack(g) for g in self.netlist.gates.values()),
            default=0.0,
        )

    def meets(self, limit: float, tolerance: float = 1e-9) -> bool:
        return self.circuit_delay <= limit + tolerance

    def critical_path(self) -> list[Gate]:
        """One maximal-arrival path, outputs back to inputs."""
        if not self.netlist.outputs:
            return []
        end = max(
            self.netlist.outputs.values(), key=lambda g: self.arrival[g.name]
        )
        path = [end]
        gate = end
        while gate.fanins:
            gate = max(gate.fanins, key=lambda f: self.arrival[f.name])
            path.append(gate)
        path.reverse()
        return path

    def validate(self) -> None:
        """Internal consistency checks (used by the test-suite)."""
        for gate in self.netlist.gates.values():
            for fanin in gate.fanins:
                if (
                    self.arrival[gate.name]
                    < self.arrival[fanin.name] + self.delay_of[gate.name] - 1e-9
                ):
                    raise TimingError(
                        f"arrival of {gate.name!r} precedes fanin {fanin.name!r}"
                    )

    # ------------------------------------------------------------------
    # What-if analysis (trial delay without a netlist copy)
    # ------------------------------------------------------------------
    def what_if(self, substitution: "Substitution") -> Optional[float]:
        """Circuit delay if ``substitution`` were applied; ``None`` when the
        move no longer applies (stale description or cycle creation).

        Matches ``TimingAnalysis(apply_to_copy(netlist, sub)[0])
        .circuit_delay`` without copying the netlist: the rewiring, the
        dead-logic sweep, and the resulting load changes are emulated on a
        virtual overlay, and arrivals are recomputed only inside the
        dirtied fanout closure.
        """
        from repro.transform.substitution import IS3, OS3

        netlist = self.netlist
        if not substitution.validate_against(netlist):
            return None
        library = netlist.library
        target = netlist.gate(substitution.target)
        is_os = substitution.is_output_substitution()
        is_pair = substitution.kind in (OS3, IS3)

        # --- the substituting chain (virtual nodes are \x00-tokens) ----
        INV1, INV2, NEW = "\x00inv1", "\x00inv2", "\x00new"
        chain_fanins: dict[str, list[str]] = {}
        head_gate: Optional[Gate] = None  # existing gate receiving the load
        if substitution.is_constant:
            tie_cell = library.constant(bool(substitution.constant))
            head_gate = next(
                (g for g in netlist.logic_gates() if g.cell is tie_cell), None
            )
            if head_gate is not None:
                head = head_gate.name
            else:
                head = NEW
                chain_fanins[NEW] = []
        elif is_pair:
            eff1 = INV1 if substitution.invert1 else substitution.source1
            eff2 = INV2 if substitution.invert2 else substitution.source2
            if substitution.invert1:
                chain_fanins[INV1] = [substitution.source1]
            if substitution.invert2:
                chain_fanins[INV2] = [substitution.source2]
            chain_fanins[NEW] = [eff1, eff2]
            head = NEW
        elif substitution.invert1:
            chain_fanins[INV1] = [substitution.source1]
            head = INV1
        else:
            head = substitution.source1
            head_gate = netlist.gate(substitution.source1)

        # --- moved branches --------------------------------------------
        if is_os:
            moved = list(target.fanouts)
            moved_pos = list(target.po_names)
        else:
            sink_name, pin = substitution.branch
            moved = [(netlist.gate(sink_name), pin)]
            moved_pos = []
        moved_pins: dict[int, set[int]] = {}
        for sink, sink_pin in moved:
            moved_pins.setdefault(id(sink), set()).add(sink_pin)

        # --- cycle check (same predicate as replace_fanin/replace_fanouts):
        # the move is rejected iff a rewired sink is, or reaches, a gate the
        # substituting chain hangs off.
        if substitution.is_constant:
            chain_roots = {id(head_gate)} if head_gate is not None else set()
        else:
            chain_roots = {
                id(netlist.gate(s)) for s in substitution.source_names()
            }
        if chain_roots:
            stack = [s for s, _pin in moved if s is not target]
            seen = {id(s) for s in stack}
            if seen & chain_roots:
                return None
            while stack:
                gate = stack.pop()
                for out, _pin in gate.fanouts:
                    if id(out) in chain_roots:
                        return None
                    if id(out) not in seen:
                        seen.add(id(out))
                        stack.append(out)

        # --- trial-sweep emulation: which nodes die --------------------
        # Mirrors sweep_dead on the rewired netlist: a node dies iff it is
        # a logic node, drives no primary output, and every branch leads to
        # a dead node.  Virtual chain nodes participate (an inserted gate
        # whose only sinks die is itself swept).
        children: dict[object, list[object]] = {}
        keepalive: set[object] = set()
        for key, fanins in chain_fanins.items():
            children.setdefault(key, [])
        head_children = [s.name for s, _pin in moved]
        if head in chain_fanins:
            children[head] = list(head_children)
            if moved_pos:
                keepalive.add(head)
            if is_pair:
                for token, eff in ((INV1, substitution.invert1),
                                   (INV2, substitution.invert2)):
                    if eff:
                        children[token] = [NEW]
        for gate in netlist.gates.values():
            if is_os and gate is target:
                # All branches and POs moved away; not kept alive by them.
                children[gate.name] = []
                if gate.is_input:
                    keepalive.add(gate.name)
                continue
            kids = []
            for s, p in gate.fanouts:
                if gate is target and not is_os and (s, p) == moved[0]:
                    continue  # the rewired branch leaves the target
                kids.append(s.name)
            children[gate.name] = kids
            if gate.is_input or gate.po_names:
                keepalive.add(gate.name)
        # Chain attachment: sources (or the reused tie gate) drive the chain.
        if substitution.is_constant:
            if head_gate is not None:
                children[head_gate.name] = children[head_gate.name] + head_children
                if moved_pos:
                    keepalive.add(head_gate.name)
        elif is_pair:
            eff1 = INV1 if substitution.invert1 else NEW
            eff2 = INV2 if substitution.invert2 else NEW
            s1, s2 = substitution.source1, substitution.source2
            children[s1] = children[s1] + [eff1]
            children[s2] = children[s2] + [eff2]
        elif substitution.invert1:
            s1 = substitution.source1
            children[s1] = children[s1] + [INV1]
        else:
            s1 = substitution.source1
            children[s1] = children[s1] + head_children
            if moved_pos:
                keepalive.add(s1)

        parents: dict[object, list[object]] = {}
        remaining: dict[object, int] = {}
        for key, kids in children.items():
            remaining[key] = len(kids)
            for kid in kids:
                parents.setdefault(kid, []).append(key)
        dead: set[object] = set()
        worklist = [
            key
            for key, count in remaining.items()
            if count == 0 and key not in keepalive
        ]
        while worklist:
            key = worklist.pop()
            if key in dead:
                continue
            dead.add(key)
            for parent in parents.get(key, ()):
                remaining[parent] -= 1
                if remaining[parent] == 0 and parent not in keepalive:
                    worklist.append(parent)

        # --- trial loads and delay overrides ---------------------------
        def pin_load(sink: Gate, sink_pin: int) -> float:
            return sink.cell.pins[sink_pin].load

        moved_pin_load = 0.0
        for sink, sink_pin in moved:
            if sink.name not in dead:
                moved_pin_load += pin_load(sink, sink_pin)
        moved_po_load = 0.0
        for po in moved_pos:
            moved_po_load += netlist.output_loads[po]

        # Loads newly hung on each source by the chain (0 when the chain
        # node died in the sweep).
        chain_pin: dict[str, float] = {}
        if not substitution.is_constant:
            inv_cell = library.inverter() if (
                substitution.invert1 or substitution.invert2
            ) else None
            if is_pair:
                cell = library[substitution.new_cell]
                pairs = (
                    (substitution.source1, substitution.invert1, INV1, 0),
                    (substitution.source2, substitution.invert2, INV2, 1),
                )
                for source, inverted, token, cell_pin in pairs:
                    if inverted:
                        if token not in dead:
                            chain_pin[source] = (
                                chain_pin.get(source, 0.0)
                                + inv_cell.pins[0].load
                            )
                    elif NEW not in dead:
                        chain_pin[source] = (
                            chain_pin.get(source, 0.0)
                            + cell.pins[cell_pin].load
                        )
            elif substitution.invert1:
                if INV1 not in dead:
                    chain_pin[substitution.source1] = inv_cell.pins[0].load

        affected: set[str] = set()
        for key in dead:
            gate = netlist.gates.get(key) if isinstance(key, str) else None
            if gate is None:
                continue
            for fanin in gate.fanins:
                if fanin.name not in dead:
                    affected.add(fanin.name)
        if head_gate is not None:
            affected.add(head_gate.name)
        affected.update(chain_pin)
        if not is_os and target.name not in dead:
            affected.add(target.name)

        delay_override: dict[object, float] = {}
        for name in affected:
            gate = netlist.gates[name]
            load = 0.0
            for s, p in gate.fanouts:
                if s.name in dead:
                    continue
                if gate is target and not is_os and (s, p) == moved[0]:
                    continue
                load += pin_load(s, p)
            load += chain_pin.get(name, 0.0)
            if head_gate is not None and name == head_gate.name:
                load += moved_pin_load
            for po in gate.po_names:
                load += netlist.output_loads[po]
            if head_gate is not None and name == head_gate.name:
                load += moved_po_load
            delay_override[name] = _delay_for_load(gate, load)

        if NEW in chain_fanins:
            if substitution.is_constant:
                delay_override[NEW] = 0.0  # tie cell: no pins, no transition
            else:
                cell = library[substitution.new_cell]
                delay_override[NEW] = _delay_for_cell(
                    cell, moved_pin_load + moved_po_load
                )
        if INV1 in chain_fanins:
            inv_cell = library.inverter()
            inv_load = (
                library[substitution.new_cell].pins[0].load
                if is_pair
                else moved_pin_load + moved_po_load
            )
            delay_override[INV1] = _delay_for_cell(inv_cell, inv_load)
        if INV2 in chain_fanins:
            delay_override[INV2] = _delay_for_cell(
                library.inverter(), library[substitution.new_cell].pins[1].load
            )

        # --- arrival recomputation over the dirtied closure ------------
        dirty_names = set(affected)
        dirty_names.update(s.name for s, _pin in moved)
        dirty_gates = [
            netlist.gates[n] for n in dirty_names if n in netlist.gates
        ]
        closure = set(dirty_names)
        closure.update(
            g.name for g in transitive_fanout(netlist, dirty_gates)
        )

        arrivals: dict[object, float] = {}

        def trial_fanins(key: object) -> list[object]:
            if key in chain_fanins:
                return list(chain_fanins[key])
            gate = netlist.gates[key]
            moved_here = moved_pins.get(id(gate), set())
            if not moved_here:
                return [f.name for f in gate.fanins]
            return [
                head if i in moved_here else f.name
                for i, f in enumerate(gate.fanins)
            ]

        def compute(root: object) -> None:
            stack: list[object] = [root]
            while stack:
                key = stack[-1]
                if key in arrivals:
                    stack.pop()
                    continue
                if key not in chain_fanins and key not in closure:
                    arrivals[key] = self.arrival[key]
                    stack.pop()
                    continue
                gate = None if key in chain_fanins else netlist.gates[key]
                if gate is not None and gate.is_input:
                    arrivals[key] = 0.0
                    stack.pop()
                    continue
                deps = trial_fanins(key)
                pending = [d for d in deps if d not in arrivals]
                if pending:
                    stack.extend(pending)
                    continue
                if key in delay_override:
                    d = delay_override[key]
                else:
                    d = self.delay_of[key]
                if not deps:
                    arrivals[key] = d
                else:
                    arrivals[key] = d + max(arrivals[dep] for dep in deps)
                stack.pop()

        best = 0.0
        seen_output = False
        for _po, driver in netlist.outputs.items():
            key: object = head if (is_os and driver is target) else driver.name
            compute(key)
            value = arrivals[key]
            if not seen_output or value > best:
                best = value
                seen_output = True
        return best if seen_output else 0.0


def _delay_for_cell(cell, load: float) -> float:
    pins = cell.pins
    if not pins:
        return 0.0
    tau = max(p.tau for p in pins)
    resistance = max(p.resistance for p in pins)
    return tau + resistance * load
