"""Static timing analysis under the paper's linear delay model.

``D(s) = τ(s) + C(s)·R(s)`` per gate (§2); arrival times propagate from
primary inputs, required times from the output constraint, the circuit delay
is the latest primary-output arrival.  :mod:`repro.timing.constraints`
implements the substitution delay check of §3.4.
"""

from repro.timing.analysis import TimingAnalysis, gate_delay
from repro.timing.constraints import DelayConstraint, substitution_meets_constraint

__all__ = [
    "TimingAnalysis",
    "gate_delay",
    "DelayConstraint",
    "substitution_meets_constraint",
]
