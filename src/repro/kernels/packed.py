"""A packed, topologically-ordered flat-array view of one netlist.

:class:`PackedCircuit` compiles a netlist into contiguous buffers —
integer gate indices in topological order, per-gate op codes, fanin index
matrices, and a level-grouped evaluation schedule — so the bit-parallel
hot paths (full simulation, forced-overlay propagation, flip-mask
observability) run as a handful of vectorized word operations per
*level × op group* instead of one Python dict walk per gate.

Evaluation is bit-identical to :func:`repro.netlist.simulate.evaluate_cell`
by construction: the fast op codes are recognised from the cell's truth
table (all pure bitwise identities) and every other cell evaluates the
same compiled irredundant SOP cube list, just broadcast over all gates of
the group at once.

Coherence
---------
The packed view is immutable; :func:`packed_view` caches one per netlist
and revalidates it against the identity of the netlist's cached
topological order, which every structural edit (fanin rewires, fanout
moves, gate adds/removes, PO rebinds) invalidates.  Callers therefore
always see a view consistent with the current structure without any
explicit notification protocol — ``OptimizationContext.update_after_edit``
simply touches the cache to keep the analysis bookkeeping honest.

The value **matrix** is the caller's: kernels take a ``(num_gates,
nwords)`` ``uint64`` array whose row *i* is the committed value word of
gate ``order[i]`` and never mutate it (overlay kernels copy).

The accelerated backend is selected behind a feature probe
(:data:`HAVE_NUMPY`): the module imports cleanly without numpy, callers
check the probe (or catch :class:`~repro.errors.NetlistError` from the
constructor) and stay on the per-gate evaluation paths when the packed
backend is unavailable.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping, Sequence
from typing import Optional

try:  # feature probe: the accelerated backend
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the toolchain ships numpy
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro.errors import NetlistError
from repro.kernels.words import ALL_ONES, WORD_DTYPE
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import topological_order

# Op codes for the common cell functions (pure bitwise identities).
OP_CONST0 = "const0"
OP_CONST1 = "const1"
OP_BUF = "buf"
OP_INV = "inv"
OP_AND2 = "and2"
OP_OR2 = "or2"
OP_XOR2 = "xor2"
OP_NAND2 = "nand2"
OP_NOR2 = "nor2"
OP_XNOR2 = "xnor2"
#: Fallback: evaluate the cell's compiled SOP cube list.
OP_CUBES = "cubes"

_TWO_INPUT_OPS = {
    0b1000: OP_AND2,
    0b1110: OP_OR2,
    0b0110: OP_XOR2,
    0b0111: OP_NAND2,
    0b0001: OP_NOR2,
    0b1001: OP_XNOR2,
}


def _classify(gate: Gate) -> tuple[str, tuple[tuple[int, int], ...]]:
    """(op code, cube list) for one logic gate."""
    from repro.netlist.simulate import _compiled_cubes

    function = gate.cell.function
    nvars = function.nvars
    if nvars == 0:
        return (OP_CONST1 if function.bits & 1 else OP_CONST0), ()
    if nvars == 1:
        if function.bits == 0b10:
            return OP_BUF, ()
        if function.bits == 0b01:
            return OP_INV, ()
    elif nvars == 2:
        op = _TWO_INPUT_OPS.get(function.bits)
        if op is not None:
            return op, ()
    return OP_CUBES, _compiled_cubes(gate.cell)


class _OpGroup:
    """All gates of one topological level sharing one op code."""

    __slots__ = ("op", "out", "fanins", "cubes", "nvars")

    def __init__(self, op, out, fanins, cubes, nvars):
        self.op = op
        #: Gate indices evaluated by this group, ascending.
        self.out = out
        #: ``(len(out), nvars)`` fanin index matrix (empty for constants).
        self.fanins = fanins
        #: SOP cubes for :data:`OP_CUBES` groups, ``()`` otherwise.
        self.cubes = cubes
        self.nvars = nvars


class PackedCircuit:
    """Flat-array compilation of one netlist's structure.

    Immutable once built; every query is index-based.  Use
    :func:`packed_view` instead of constructing directly so views are
    shared and stay coherent with netlist edits.
    """

    def __init__(self, netlist: Netlist, order: Optional[list[Gate]] = None):
        if not HAVE_NUMPY:
            raise NetlistError(
                "PackedCircuit requires the numpy backend; use the "
                "per-gate evaluation paths instead"
            )
        self.netlist = netlist
        order = order if order is not None else topological_order(netlist)
        self.order: list[Gate] = order
        self.names: list[str] = [g.name for g in order]
        self.index: dict[str, int] = {g.name: i for i, g in enumerate(order)}
        self.num_gates = len(order)

        #: Indices of primary inputs (always a topological prefix set).
        input_idx = []
        levels = [0] * self.num_gates
        for i, gate in enumerate(order):
            if gate.is_input:
                input_idx.append(i)
            elif gate.fanins:
                levels[i] = 1 + max(
                    levels[self.index[f.name]] for f in gate.fanins
                )
        self.input_idx = np.asarray(input_idx, dtype=np.int32)
        self.levels = np.asarray(levels, dtype=np.int32)

        #: Distinct primary-output driver indices, ascending.
        self.po_idx = np.asarray(
            sorted({self.index[g.name] for g in netlist.outputs.values()}),
            dtype=np.int32,
        )

        #: Per-gate structure for the cone-local kernels: op code, fanin
        #: index tuple, SOP cubes (inputs get ``None`` ops), and fanout
        #: index lists (ascending, so worklists stay topological).
        self.gate_op: list[Optional[str]] = [None] * self.num_gates
        self.gate_fanin_idx: list[tuple[int, ...]] = [()] * self.num_gates
        self.gate_cubes: list[tuple] = [()] * self.num_gates
        self.fanout_lists: list[list[int]] = [[] for _ in range(self.num_gates)]

        # Level-grouped evaluation schedule over the logic gates.
        by_level: dict[int, dict[tuple, list[int]]] = {}
        self._gate_cubes: dict[tuple, tuple] = {}
        for i, gate in enumerate(order):
            for fanin in gate.fanins:
                self.fanout_lists[self.index[fanin.name]].append(i)
            if gate.is_input:
                continue
            op, cubes = _classify(gate)
            self.gate_op[i] = op
            self.gate_fanin_idx[i] = tuple(
                self.index[f.name] for f in gate.fanins
            )
            self.gate_cubes[i] = cubes
            key = (op, len(gate.fanins)) if op != OP_CUBES else (
                op,
                len(gate.fanins),
                gate.cell.function.bits,
            )
            self._gate_cubes[key] = cubes
            by_level.setdefault(levels[i], {}).setdefault(key, []).append(i)
        self.schedule: list[list[_OpGroup]] = []
        for level in sorted(by_level):
            groups = []
            for key in sorted(by_level[level], key=str):
                members = by_level[level][key]
                op, nvars = key[0], key[1]
                fanins = np.asarray(
                    [
                        [self.index[f.name] for f in order[i].fanins]
                        for i in members
                    ],
                    dtype=np.int32,
                ).reshape(len(members), nvars)
                groups.append(
                    _OpGroup(
                        op,
                        np.asarray(members, dtype=np.int32),
                        fanins,
                        self._gate_cubes[key],
                        nvars,
                    )
                )
            self.schedule.append(groups)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _eval_group(
        self, group: _OpGroup, values: "np.ndarray", rows: "np.ndarray"
    ) -> "np.ndarray":
        """Evaluate ``rows`` (positions into ``group.out``) against ``values``."""
        op = group.op
        nwords = values.shape[1]
        count = len(rows)
        if op in (OP_CONST0, OP_CONST1):
            fill = ALL_ONES if op == OP_CONST1 else WORD_DTYPE(0)
            return np.full((count, nwords), fill, dtype=WORD_DTYPE)
        fi = values[group.fanins[rows]]  # (count, nvars, nwords)
        if op == OP_BUF:
            return fi[:, 0].copy()
        if op == OP_INV:
            return ~fi[:, 0]
        if op == OP_AND2:
            return fi[:, 0] & fi[:, 1]
        if op == OP_OR2:
            return fi[:, 0] | fi[:, 1]
        if op == OP_XOR2:
            return fi[:, 0] ^ fi[:, 1]
        if op == OP_NAND2:
            return ~(fi[:, 0] & fi[:, 1])
        if op == OP_NOR2:
            return ~(fi[:, 0] | fi[:, 1])
        if op == OP_XNOR2:
            return ~(fi[:, 0] ^ fi[:, 1])
        # Generic SOP: same cube walk as evaluate_cell, broadcast over rows.
        result = np.zeros((count, nwords), dtype=WORD_DTYPE)
        for care, cube_values in group.cubes:
            term = np.full((count, nwords), ALL_ONES, dtype=WORD_DTYPE)
            var = 0
            care_left = care
            while care_left:
                if care_left & 1:
                    word = fi[:, var]
                    term &= word if (cube_values >> var) & 1 else ~word
                care_left >>= 1
                var += 1
            result |= term
        return result

    def simulate(
        self, patterns: Mapping[str, "np.ndarray"], nwords: int
    ) -> "np.ndarray":
        """Full forward evaluation; returns the ``(num_gates, nwords)`` matrix."""
        values = np.zeros((self.num_gates, nwords), dtype=WORD_DTYPE)
        for i in self.input_idx:
            values[i] = patterns[self.names[i]]
        for groups in self.schedule:
            for group in groups:
                all_rows = np.arange(len(group.out))
                values[group.out] = self._eval_group(group, values, all_rows)
        return values

    def _eval_gate(
        self,
        i: int,
        overlay: Mapping[int, "np.ndarray"],
        matrix: "np.ndarray",
    ) -> "np.ndarray":
        """Evaluate one gate against committed rows overridden by ``overlay``."""
        op = self.gate_op[i]
        fis = self.gate_fanin_idx[i]
        get = overlay.get
        if op is OP_CONST0:
            return np.zeros(matrix.shape[1], dtype=WORD_DTYPE)
        if op is OP_CONST1:
            return np.full(matrix.shape[1], ALL_ONES, dtype=WORD_DTYPE)
        a = get(fis[0], matrix[fis[0]]) if fis else None
        if op is OP_BUF:
            return a
        if op is OP_INV:
            return ~a
        b = get(fis[1], matrix[fis[1]]) if len(fis) > 1 else None
        if op is OP_AND2:
            return a & b
        if op is OP_OR2:
            return a | b
        if op is OP_XOR2:
            return a ^ b
        if op is OP_NAND2:
            return ~(a & b)
        if op is OP_NOR2:
            return ~(a | b)
        if op is OP_XNOR2:
            return ~(a ^ b)
        words = [get(f, matrix[f]) for f in fis]
        nwords = matrix.shape[1]
        result = np.zeros(nwords, dtype=WORD_DTYPE)
        for care, cube_values in self.gate_cubes[i]:
            term = np.full(nwords, ALL_ONES, dtype=WORD_DTYPE)
            var = 0
            care_left = care
            while care_left:
                if care_left & 1:
                    word = words[var]
                    term &= word if (cube_values >> var) & 1 else ~word
                care_left >>= 1
                var += 1
            result |= term
        return result

    def propagate_overlay(
        self,
        matrix: "np.ndarray",
        forced: Mapping[int, "np.ndarray"],
    ) -> dict[int, "np.ndarray"]:
        """Propagate forced values through their transitive fanout.

        ``matrix`` holds the committed value words (row per gate, never
        mutated).  Returns ``index -> word`` for every forced gate plus
        every downstream gate whose value differs under the overlay —
        exactly the contract of ``SimState.propagate_forced``, keyed by
        index instead of name.

        The walk is cone-local and diff-driven: only gates with at least
        one overlaid fanin are evaluated, and a gate whose value matches
        the committed row stops the propagation through it.  Forced gates
        themselves are pinned, never re-evaluated.
        """
        if not forced:
            return {}
        overlay: dict[int, np.ndarray] = dict(forced)
        heap: list[int] = []
        queued: set[int] = set()
        for i in forced:
            for sink in self.fanout_lists[i]:
                if sink not in queued:
                    queued.add(sink)
                    heapq.heappush(heap, sink)
        while heap:
            i = heapq.heappop(heap)
            if i in forced:
                continue  # pinned: fanouts were seeded above
            new = self._eval_gate(i, overlay, matrix)
            if np.array_equal(new, matrix[i]):
                continue
            overlay[i] = new
            for sink in self.fanout_lists[i]:
                if sink not in queued:
                    queued.add(sink)
                    heapq.heappush(heap, sink)
        return overlay

    def output_diff_mask(
        self,
        matrix: "np.ndarray",
        overlay: Mapping[int, "np.ndarray"],
        nwords: int,
    ) -> "np.ndarray":
        """OR over PO drivers of (overlay value XOR committed value)."""
        mask = np.zeros(nwords, dtype=WORD_DTYPE)
        for i in self.po_idx:
            word = overlay.get(int(i))
            if word is not None:
                mask |= word ^ matrix[i]
        return mask

    def flip_mask(
        self, matrix: "np.ndarray", root: int, nwords: int
    ) -> "np.ndarray":
        """Patterns on which flipping gate ``root`` flips some primary output."""
        overlay = self.propagate_overlay(matrix, {root: ~matrix[root]})
        return self.output_diff_mask(matrix, overlay, nwords)


def packed_view(netlist: Netlist) -> PackedCircuit:
    """The shared packed view of ``netlist``, rebuilt after structural edits.

    Validity is keyed on the identity of the netlist's cached topological
    order: every structural edit clears that cache, so a stale view can
    never be returned.
    """
    order = topological_order(netlist)
    cached = getattr(netlist, "_packed_cache", None)
    if cached is not None and cached[0] is order:
        return cached[1]
    packed = PackedCircuit(netlist, order)
    netlist._packed_cache = (order, packed)
    return packed
