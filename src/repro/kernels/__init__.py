"""Packed hot-path kernels.

Everything in this package operates on contiguous word buffers instead of
per-gate dict walks:

- :mod:`repro.kernels.words` — the simulation word size (one constant),
  pattern-count validation, and the popcount ladder
  (``numpy.bitwise_count`` → ``int.bit_count`` → 16-bit LUT),
- :mod:`repro.kernels.packed` — :class:`~repro.kernels.packed.PackedCircuit`,
  a topologically-ordered flat-array view of a netlist (gate op codes,
  fanin indices, level-grouped evaluation schedule) with vectorized
  full-simulation and forced-overlay propagation kernels.

The packed view is cached per netlist and self-validates against the
netlist's structural state, so callers never hold a stale view; see
:func:`repro.kernels.packed.packed_view`.
"""

from repro.kernels.words import (
    ALL_ONES,
    WORD_BITS,
    WORD_DTYPE,
    popcount,
    popcount_lastaxis,
    validate_num_patterns,
)
from repro.kernels.packed import HAVE_NUMPY, PackedCircuit, packed_view

__all__ = [
    "ALL_ONES",
    "HAVE_NUMPY",
    "WORD_BITS",
    "WORD_DTYPE",
    "PackedCircuit",
    "packed_view",
    "popcount",
    "popcount_lastaxis",
    "validate_num_patterns",
]
