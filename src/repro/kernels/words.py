"""Simulation word size and bit-counting primitives.

Every bit-parallel structure in the system — pattern sets, simulation
values, observability masks, fault-detection masks — packs one pattern per
bit of a :data:`WORD_BITS`-wide unsigned word.  This module is the single
place that width is defined; everything else derives word counts through
:func:`validate_num_patterns` instead of hard-coding ``64``.

``popcount`` totals the set bits of a word array through the fastest
available path:

1. ``numpy.bitwise_count`` (NumPy ≥ 2.0) — one vectorized pass,
2. ``int.bit_count()`` (Python ≥ 3.10) on the array's bytes viewed as one
   big integer — no 64× temporary, no table,
3. a 16-bit lookup table, the portable fallback for older Python/NumPy
   combinations.
"""

from __future__ import annotations

import sys
from typing import Optional

import numpy as np

from repro.errors import NetlistError

#: Patterns per simulation word.  The one place the word width lives.
WORD_BITS = 64

#: Dtype matching :data:`WORD_BITS`; value words are arrays of this type.
WORD_DTYPE = np.uint64

#: A fully-set word (every pattern bit 1).
ALL_ONES = np.uint64((1 << WORD_BITS) - 1)


def validate_num_patterns(num_patterns: int, context: str = "num_patterns") -> int:
    """Check a pattern count against the word width; return the word count.

    Raises :class:`~repro.errors.NetlistError` with an actionable message
    when ``num_patterns`` is not a positive multiple of :data:`WORD_BITS`
    (patterns are packed one per bit, so partial words cannot be
    represented).
    """
    if num_patterns <= 0 or num_patterns % WORD_BITS:
        raise NetlistError(
            f"{context} must be a positive multiple of {WORD_BITS} "
            f"(patterns pack one per bit of a {WORD_BITS}-bit simulation "
            f"word), got {num_patterns}"
        )
    return num_patterns // WORD_BITS


_POPCOUNT_TABLE: Optional[np.ndarray] = None


def _popcount_table() -> np.ndarray:
    global _POPCOUNT_TABLE
    if _POPCOUNT_TABLE is None:
        _POPCOUNT_TABLE = np.fromiter(
            (bin(i).count("1") for i in range(1 << 16)),
            dtype=np.uint16,
            count=1 << 16,
        )
    return _POPCOUNT_TABLE


def _popcount_lut(words: np.ndarray) -> int:
    """Total set bits via a 16-bit lookup table (no 64x temporary)."""
    return int(_popcount_table()[words.view(np.uint16)].sum(dtype=np.uint64))


def popcount_lastaxis(words: np.ndarray) -> np.ndarray:
    """Per-entry set-bit totals over the last axis of a word array.

    ``popcount_lastaxis(a)[i, j] == popcount(a[i, j])`` for a 3-d array —
    the batched form used to score whole candidate tables at once.
    """
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    u16 = words.view(np.uint16).reshape(*words.shape[:-1], -1)
    return _popcount_table()[u16].sum(axis=-1, dtype=np.int64)


def _popcount_bigint(words: np.ndarray) -> int:
    """Total set bits via ``int.bit_count`` over the raw bytes.

    Byte order is irrelevant for a population count, so the array's bytes
    are reinterpreted as one arbitrary-precision integer and counted in a
    single C-level call.
    """
    return int.from_bytes(words.tobytes(), "little").bit_count()


if hasattr(np, "bitwise_count"):

    def popcount(words: np.ndarray) -> int:
        """Total number of set bits across a word array."""
        return int(np.bitwise_count(words).sum())

elif sys.version_info >= (3, 10):  # numpy < 2.0, modern Python

    popcount = _popcount_bigint

else:  # pragma: no cover - Python < 3.10 with numpy < 2.0

    popcount = _popcount_lut
