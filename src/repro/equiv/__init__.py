"""Combinational equivalence checking via miters and ATPG.

The permissibility oracle of the optimizer reduces to one question: do two
netlists (original, and original-with-substitution) compute the same primary
outputs?  :func:`~repro.equiv.miter.build_miter` joins them over shared
inputs with XOR/OR compare logic; :func:`~repro.equiv.checker.check_equivalent`
stages the engines by expected cost — bit-parallel simulation for cheap
counterexamples, bounded ROBDD comparison on larger circuits, and the
(incremental) ATPG justifier to find a distinguishing vector or prove there
is none.  An unresolvable query returns UNKNOWN, which callers must treat
as "not proven" (the paper's abort semantics).
"""

from repro.equiv.miter import build_miter
from repro.equiv.checker import (
    EquivalenceResult,
    EQUAL,
    NOT_EQUAL,
    UNKNOWN,
    check_equivalent,
)

__all__ = [
    "build_miter",
    "EquivalenceResult",
    "EQUAL",
    "NOT_EQUAL",
    "UNKNOWN",
    "check_equivalent",
]
