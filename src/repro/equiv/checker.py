"""The equivalence / permissibility oracle.

``check_equivalent`` decides whether two netlists compute the same outputs:

1. **Simulation filter** — simulate both on a shared random pattern set; any
   differing output word yields an immediate counterexample (most
   non-permissible substitutions die here, as in the paper's
   fault-simulation-based candidate filtering).
2. **ATPG decision** — build the miter and ask the PODEM justifier for an
   input vector driving it to 1.  SAT gives a counterexample; UNSAT proves
   equivalence.
3. **BDD fallback** — when the ATPG search aborts (XOR/carry-chain miters
   have exponential branch-and-bound trees but linear BDDs), compare
   per-output ROBDDs under a node limit.  Only if that also blows up does
   the check return :data:`UNKNOWN`, which callers must treat as "not
   permissible" (paper §3.5 semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.atpg.podem import DEFAULT_BACKTRACK_LIMIT, justify
from repro.equiv.miter import build_miter
from repro.errors import AtpgAbort, NetlistError
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import SimState, random_patterns

EQUAL = "equal"
NOT_EQUAL = "not-equal"
UNKNOWN = "unknown"


def _validate_interfaces(left: Netlist, right: Netlist) -> None:
    """Reject differing interface name *sets* up front, with the names.

    Every stage downstream (pattern dicts, BDD orders, the miter) matches
    signals by name, so a true mismatch would otherwise surface as a deep
    KeyError or a missing-pattern crash far from the cause.
    """
    mismatch = set(left.input_names) ^ set(right.input_names)
    if mismatch:
        raise NetlistError(
            "cannot compare netlists with different primary-input sets "
            f"(matching is by name, order-independent); only on one "
            f"side: {sorted(mismatch)}"
        )
    mismatch = set(left.outputs) ^ set(right.outputs)
    if mismatch:
        raise NetlistError(
            "cannot compare netlists with different primary-output sets "
            f"(matching is by name, order-independent); only on one "
            f"side: {sorted(mismatch)}"
        )


@dataclass
class EquivalenceResult:
    """Verdict plus evidence."""

    status: str  # EQUAL, NOT_EQUAL or UNKNOWN
    counterexample: Optional[dict[str, int]] = None  # PI name -> 0/1
    stage: str = ""  # "simulation" or "atpg"
    backtracks: int = 0

    @property
    def equal(self) -> bool:
        return self.status == EQUAL

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.equal


def _simulation_counterexample(
    left: Netlist, right: Netlist, num_patterns: int, seed: int
) -> Optional[dict[str, int]]:
    patterns = random_patterns(left.input_names, num_patterns, seed)
    sim_left = SimState(left, patterns)
    sim_right = SimState(right, patterns)
    for po in left.outputs:
        diff = sim_left.value(left.outputs[po].name) ^ sim_right.value(
            right.outputs[po].name
        )
        nz = np.nonzero(diff)[0]
        if nz.size:
            word = int(nz[0])
            bit = (int(diff[word])).bit_length() - 1
            index = word * 64 + bit
            return {
                name: int((int(patterns[name][word]) >> bit) & 1)
                for name in left.input_names
            }
    return None


def _bdd_verdict(
    left: Netlist, right: Netlist, node_limit: int
) -> Optional[EquivalenceResult]:
    """Exact comparison through global BDDs; None when they blow up."""
    from repro.logic.bdd import BddSizeError
    from repro.netlist.bdds import netlist_bdds

    order = list(left.input_names)
    try:
        manager, left_nodes = netlist_bdds(left, node_limit=node_limit)
        manager, right_nodes = netlist_bdds(
            right, manager=manager, input_order=order
        )
        for po in left.outputs:
            l_node = left_nodes[left.outputs[po].name]
            r_node = right_nodes[right.outputs[po].name]
            if l_node != r_node:
                diff = manager.apply_xor(l_node, r_node)
                # Extract one distinguishing minterm by BDD descent.
                cex = {name: 0 for name in order}
                node = diff
                while node > 1:
                    var = manager.var_of(node)
                    if manager.low_of(node) != 0:
                        node = manager.low_of(node)
                    else:
                        cex[order[var]] = 1
                        node = manager.high_of(node)
                return EquivalenceResult(NOT_EQUAL, cex, stage="bdd")
    except BddSizeError:
        return None
    return EquivalenceResult(EQUAL, stage="bdd")


#: Above this many gates, try the BDD comparison before the ATPG search —
#: at that size one justification pass already costs more than typical
#: whole-circuit BDDs (the search stays as the fallback when BDDs blow up).
BDD_FIRST_GATE_THRESHOLD = 80


def check_equivalent(
    left: Netlist,
    right: Netlist,
    num_patterns: int = 2048,
    seed: int = 99,
    backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
    bdd_node_limit: int = 200_000,
) -> EquivalenceResult:
    """Decide combinational equivalence of two netlists.

    Interfaces are matched **by name**: the operands may list their primary
    inputs and outputs in different orders (declaration order is a storage
    artifact, not semantics), and every stage — simulation patterns, BDD
    variable order, the miter — honors that.  Differing name *sets* raise
    :class:`~repro.errors.NetlistError` instead of producing a verdict.
    """
    _validate_interfaces(left, right)
    if left.input_names and num_patterns:
        cex = _simulation_counterexample(left, right, num_patterns, seed)
        if cex is not None:
            return EquivalenceResult(NOT_EQUAL, cex, stage="simulation")
    if (
        bdd_node_limit > 0
        and left.num_gates() + right.num_gates() > BDD_FIRST_GATE_THRESHOLD
    ):
        verdict = _bdd_verdict(left, right, bdd_node_limit)
        if verdict is not None:
            return verdict
    miter, out = build_miter(left, right)
    # Stage the ATPG budget: most decisions need few backtracks, and when
    # the search stalls the BDD fallback usually resolves instantly (XOR
    # chains).  Only when BDDs blow up too is the full budget spent.
    quick_limit = min(backtrack_limit, 2000) if bdd_node_limit > 0 else backtrack_limit
    try:
        result = justify(miter, out, 1, quick_limit)
    except AtpgAbort:
        if bdd_node_limit > 0:
            verdict = _bdd_verdict(left, right, bdd_node_limit)
            if verdict is not None:
                return verdict
        if quick_limit < backtrack_limit:
            try:
                result = justify(miter, out, 1, backtrack_limit)
            except AtpgAbort:
                return EquivalenceResult(UNKNOWN, stage="atpg")
        else:
            return EquivalenceResult(UNKNOWN, stage="atpg")
    if result.testable:
        # Complete the partial assignment deterministically with zeros.
        cex = {name: result.assignment.get(name, 0) for name in left.input_names}
        return EquivalenceResult(
            NOT_EQUAL, cex, stage="atpg", backtracks=result.backtracks
        )
    return EquivalenceResult(EQUAL, stage="atpg", backtracks=result.backtracks)
