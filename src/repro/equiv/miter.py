"""Miter construction.

A miter of two netlists with identical primary-input and primary-output
name sets: both circuits share the inputs, each output pair feeds an XOR,
and an OR tree collects the XORs into the single output ``miter``.  The
miter output can be 1 for some input vector iff the circuits differ.

The compare logic uses the cheapest XOR/XNOR-based cells in the library;
any library accepted by :meth:`Library.validate` plus an XOR gate works.
When the library lacks XOR, the comparison is synthesised from AND/OR/INV.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.library.cell import Library
from repro.logic.truthtable import TruthTable
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import topological_order

_XOR2 = TruthTable(2, 0b0110)
_OR2 = TruthTable(2, 0b1110)
_AND2 = TruthTable(2, 0b1000)
_NOR2 = TruthTable(2, 0b0001)
_NAND2 = TruthTable(2, 0b0111)


def _cheapest(library: Library, function: TruthTable):
    best = None
    for cell in library.cells_with_inputs(function.nvars):
        if cell.function == function and (best is None or cell.area < best.area):
            best = cell
    return best


def _add_binary(miter: Netlist, library: Library, function: TruthTable, a: Gate, b: Gate) -> Gate:
    cell = _cheapest(library, function)
    if cell is not None:
        return miter.add_gate(cell, [a, b], name=miter.fresh_name("cmp"))
    if function == _XOR2:
        # a^b = (a+b) * !(a*b), built from whatever primitives exist.
        or_ab = _add_binary(miter, library, _OR2, a, b)
        nand_ab = _add_nand(miter, library, a, b)
        return _add_binary(miter, library, _AND2, or_ab, nand_ab)
    if function == _OR2:
        nor = _cheapest(library, _NOR2)
        if nor is not None:
            g = miter.add_gate(nor, [a, b], name=miter.fresh_name("cmp"))
            return miter.add_gate(
                library.inverter(), [g], name=miter.fresh_name("cmp")
            )
        # a+b = !(!a * !b)
        na = miter.add_gate(library.inverter(), [a], name=miter.fresh_name("cmp"))
        nb = miter.add_gate(library.inverter(), [b], name=miter.fresh_name("cmp"))
        return _add_nand(miter, library, na, nb)
    if function == _AND2:
        nand = _add_nand(miter, library, a, b)
        return miter.add_gate(
            library.inverter(), [nand], name=miter.fresh_name("cmp")
        )
    raise NetlistError(f"cannot synthesise comparator function 0x{function.bits:x}")


def _add_nand(miter: Netlist, library: Library, a: Gate, b: Gate) -> Gate:
    cell = _cheapest(library, _NAND2)
    if cell is not None:
        return miter.add_gate(cell, [a, b], name=miter.fresh_name("cmp"))
    and_cell = _cheapest(library, _AND2)
    if and_cell is None:
        raise NetlistError("library lacks both NAND2 and AND2")
    g = miter.add_gate(and_cell, [a, b], name=miter.fresh_name("cmp"))
    return miter.add_gate(library.inverter(), [g], name=miter.fresh_name("cmp"))


def build_miter(
    left: Netlist, right: Netlist, name: str = "miter"
) -> tuple[Netlist, Gate]:
    """Join two netlists into a miter; returns (netlist, output gate).

    Both operands must agree on primary-input and primary-output names.
    The operands are not modified.
    """
    if set(left.input_names) != set(right.input_names):
        raise NetlistError("miter operands have different input sets")
    if set(left.outputs) != set(right.outputs):
        raise NetlistError("miter operands have different output sets")
    library = left.library or right.library
    if library is None:
        raise NetlistError("miter construction needs a cell library")

    miter = Netlist(name, library)
    for pi in left.input_names:
        miter.add_input(pi)

    def import_netlist(source: Netlist, prefix: str) -> dict[str, Gate]:
        mapping: dict[int, Gate] = {}
        for pi in source.input_names:
            mapping[id(source.gates[pi])] = miter.gates[pi]
        for gate in topological_order(source):
            if gate.is_input:
                continue
            fanins = [mapping[id(f)] for f in gate.fanins]
            mapping[id(gate)] = miter.add_gate(
                gate.cell, fanins, name=miter.fresh_name(prefix)
            )
        return {
            po: mapping[id(driver)] for po, driver in source.outputs.items()
        }

    left_outs = import_netlist(left, "l")
    right_outs = import_netlist(right, "r")

    xors: list[Gate] = []
    for po in sorted(left.outputs):
        xors.append(
            _add_binary(miter, library, _XOR2, left_outs[po], right_outs[po])
        )
    # OR-tree reduction to the single miter output.
    level = xors
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(_add_binary(miter, library, _OR2, level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    out = level[0]
    miter.set_output("miter", out)
    return miter, out
