"""Command-line interface: ``python -m repro <command>`` or ``powder``.

Commands:

- ``table1`` / ``table2`` / ``figure6`` — regenerate the paper's tables and
  figure over the benchmark suite (``--full`` for the whole registry),
- ``synth`` — synthesize a ``.pla`` or logic ``.blif`` to a mapped netlist,
- ``optimize`` — run POWDER on a mapped BLIF netlist (``--objective
  power|area|delay``, ``--delay-slack``, ``--trace out.json`` telemetry,
  Verilog export),
- ``trace`` — inspect (``show``) and compare (``diff``) the JSON run
  traces written by ``optimize --trace``; ``diff`` exits nonzero on any
  deterministic-field divergence,
- ``verify`` — equivalence-check two mapped BLIFs,
- ``atpg`` — fault coverage and redundancy report,
- ``glitch`` — glitch-aware power analysis,
- ``stats`` — netlist metrics and cell mix,
- ``lint`` — rule-based findings on a mapped BLIF (``--format
  text|json``, ``--fail-on <severity>``, rule selection/suppression by
  stable ID, ``--explain <rule-id>``, ``--facts`` for the proof-backed
  S-series),
- ``analyze`` — the static fact base itself: proven constants,
  unobservable cones, phase chains, SAT-confirmed equivalence classes
  (``--check-soundness`` re-proves every fact independently),
- ``fuzz`` — differential fuzzing of the optimizer: generate seeded random
  mapped netlists, optimize, verify equivalence three independent ways,
  check metamorphic properties, and shrink failures to reproducers
  (``--shrink``, ``--corpus-dir``, ``--replay``, ``--self-test``),
- ``bench-list`` — list the benchmark registry.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.pla import parse_pla_file
from repro.bench.suite import DEFAULT_SUITE, SUITE
from repro.experiments.common import ExperimentConfig
from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, table2_from_runs
from repro.library.genlib import parse_genlib_file
from repro.library.standard import standard_library
from repro.netlist.blif import parse_blif_file, write_blif
from repro.synth.flow import SynthesisOptions, synthesize
from repro.synth.mapper import MapOptions
from repro.transform.optimizer import OptimizeOptions


def _load_library(args):
    """The genlib library named by ``--library``, or the built-in one."""
    if getattr(args, "library", None):
        return parse_genlib_file(args.library)
    return standard_library()


def _load_mapped_netlist(args, attribute: str = "netlist"):
    """Shared BLIF-loading + library-binding path for every subcommand."""
    library = _load_library(args)
    return parse_blif_file(getattr(args, attribute), library), library


def _optimizer_option_kwargs(args) -> dict:
    """The optimizer-configuration subset shared by ``optimize``,
    ``pipeline run``, and ``fuzz --bench`` (one prologue, one behaviour)."""
    return dict(
        objective=getattr(args, "objective", "power"),
        repeat=getattr(args, "repeat", 25),
        num_patterns=args.patterns,
        max_rounds=getattr(args, "max_rounds", 20),
        max_moves=args.max_moves,
        delay_slack_percent=args.delay_slack,
        sanitize=getattr(args, "sanitize", False),
        windowed=getattr(args, "windowed", False),
        jobs=getattr(args, "jobs", 1),
        window_size=getattr(args, "window_size", 80),
        window_radius=getattr(args, "window_radius", 3),
    )


def _build_pipeline_from_args(args, spec=None):
    """One shared load/optimize prologue: netlist, options, tracer, passes.

    ``spec=None`` selects the default pipeline for the options (what
    ``power_optimize`` runs); a spec string builds the stages through the
    pass registry.
    """
    from repro.pipeline import build_pipeline, default_pipeline

    netlist, _library = _load_mapped_netlist(args)
    tracer = None
    if getattr(args, "trace", None):
        from repro.telemetry import Tracer

        tracer = Tracer()
    options = OptimizeOptions(trace=tracer, **_optimizer_option_kwargs(args))
    passes = build_pipeline(spec) if spec else default_pipeline(options)
    return netlist, options, tracer, passes


def _add_window_arguments(parser: argparse.ArgumentParser) -> None:
    """The windowed-optimization flags shared by ``optimize`` and ``fuzz``."""
    parser.add_argument(
        "--windowed", action="store_true",
        help="partition into TFI/TFO windows, optimize each on a "
        "multiprocessing pool, and merge non-conflicting moves "
        "(for netlists too large for whole-netlist candidate rounds)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="windowed mode: pool worker count (1 = run windows inline; "
        "default 1)",
    )
    parser.add_argument(
        "--window-size", type=int, default=80, metavar="GATES",
        help="windowed mode: max logic gates per window (default 80)",
    )
    parser.add_argument(
        "--window-radius", type=int, default=3, metavar="STEPS",
        help="windowed mode: extraction radius in fanin+fanout steps "
        "(default 3)",
    )


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--patterns", type=int, default=2048,
        help="random patterns for probability estimation (default 2048)",
    )
    parser.add_argument(
        "--repeat", type=int, default=25,
        help="substitutions per candidate round (default 25)",
    )
    parser.add_argument(
        "--max-rounds", type=int, default=20,
        help="candidate-generation rounds cap (default 20)",
    )
    parser.add_argument(
        "--max-moves", type=int, default=None,
        help="hard cap on substitutions per circuit (default unlimited)",
    )
    parser.add_argument(
        "--circuits", nargs="*", default=None,
        help="benchmark subset (default: the paper suite)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run every registry circuit, including the large synthetic "
        "PLAs (slow)",
    )


def _config_from(args) -> ExperimentConfig:
    return ExperimentConfig(
        num_patterns=args.patterns,
        repeat=args.repeat,
        max_rounds=args.max_rounds,
        max_moves=args.max_moves,
    )


def _circuits_from(args):
    if args.circuits:
        return args.circuits
    if getattr(args, "full", False):
        return list(SUITE)
    return None


def _cmd_table1(args) -> int:
    config = _config_from(args)
    print(f"Running Table 1 on {args.circuits or list(DEFAULT_SUITE)} ...")
    result = run_table1(_circuits_from(args), config, progress=True)
    print()
    print(format_table1(result))
    return 0


def _cmd_table2(args) -> int:
    config = _config_from(args)
    print("Running Table 2 (unconstrained move logs) ...")
    table1 = run_table1(_circuits_from(args), config, progress=True)
    print()
    print(format_table2(table2_from_runs(table1.runs)))
    return 0


def _cmd_figure6(args) -> int:
    config = _config_from(args)
    print("Running Figure 6 trade-off sweep ...")
    result = run_figure6(_circuits_from(args), config=config, progress=True)
    print()
    print(format_figure6(result))
    return 0


def _write_optimized_outputs(args, netlist, result) -> None:
    """Trace/BLIF/Verilog emission shared by ``optimize`` and ``pipeline``."""
    if getattr(args, "trace", None) and result is not None:
        from repro.telemetry import write_trace

        write_trace(result.trace, args.trace)
        print(f"run trace written to {args.trace}")
    if getattr(args, "output", None):
        Path(args.output).write_text(write_blif(netlist))
        print(f"optimized netlist written to {args.output}")
    if getattr(args, "verilog", None):
        from repro.netlist.verilog import write_verilog

        Path(args.verilog).write_text(write_verilog(netlist))
        print(f"structural Verilog written to {args.verilog}")


def _cmd_optimize(args) -> int:
    from repro.pipeline import OptimizationContext, PassManager

    netlist, options, _tracer, passes = _build_pipeline_from_args(args)
    outcome = PassManager().run(OptimizationContext(netlist, options), passes)
    result = outcome.optimize_result
    print(result.summary())
    _write_optimized_outputs(args, netlist, result)
    return 0


def _cmd_pipeline_run(args) -> int:
    from repro.errors import PipelineError
    from repro.pipeline import (
        OptimizationContext,
        PassManager,
        available_passes,
    )

    if args.list_passes:
        print(f"{'name':10s} description")
        for entry in available_passes():
            print(f"{entry.name:10s} {entry.description}")
            if entry.parameters:
                print(f"{'':10s}   parameters: {entry.parameters}")
        return 0
    if args.netlist is None:
        print("error: a mapped BLIF input is required (or --list-passes)")
        return 2
    try:
        netlist, options, _tracer, passes = _build_pipeline_from_args(
            args, spec=args.spec
        )
    except PipelineError as error:
        print(f"error: invalid pipeline spec: {error}")
        return 2
    print(f"pipeline: {'; '.join(stage.spec() for stage in passes)}")
    manager = PassManager(verbose=True)
    outcome = manager.run(OptimizationContext(netlist, options), passes)
    print(outcome.summary())
    result = outcome.optimize_result
    if result is not None:
        print(result.summary())
    _write_optimized_outputs(args, outcome.netlist, result)
    return 0


def _cmd_synth(args) -> int:
    library = _load_library(args)
    source = Path(args.pla)
    options = SynthesisOptions(map_options=MapOptions(mode=args.mode))
    if source.suffix == ".blif":
        from repro.synth.blif_logic import synthesize_logic_blif

        netlist = synthesize_logic_blif(
            source.read_text(), library, options, name=source.stem
        )
    else:
        pla = parse_pla_file(source)
        netlist = synthesize(
            pla.input_names,
            pla.on,
            library,
            dont_cares=pla.dc or None,
            options=options,
            name=pla.name,
        )
    text = write_blif(netlist)
    if args.output:
        Path(args.output).write_text(text)
        print(
            f"{netlist.num_gates()} gates, area {netlist.total_area():.0f} "
            f"-> {args.output}"
        )
    else:
        print(text, end="")
    return 0


def _retarget_metrics(netlist, patterns: int) -> dict:
    from repro.power.estimate import PowerEstimator
    from repro.power.probability import SimulationProbability
    from repro.timing.analysis import TimingAnalysis

    estimator = PowerEstimator(
        netlist,
        SimulationProbability(netlist, num_patterns=patterns, seed=3),
    )
    return {
        "gates": netlist.num_gates(),
        "area": netlist.total_area(),
        "power": estimator.total(),
        "delay": TimingAnalysis(netlist).circuit_delay,
    }


def _cmd_retarget(args) -> int:
    from repro.fuzz.oracle import check_equivalence_tiers
    from repro.library.genlib import parse_genlib_file as _parse_genlib
    from repro.synth.bdd_resynth import bdd_resynthesize
    from repro.synth.resynth import resynthesize

    netlist, _library = _load_mapped_netlist(args)
    target = _parse_genlib(args.to)
    target.validate()
    map_options = MapOptions(mode=args.mode)
    if args.bdd:
        remapped = bdd_resynthesize(
            netlist, library=target, map_options=map_options
        )
    else:
        remapped = resynthesize(netlist, library=target, options=map_options)

    before = _retarget_metrics(netlist, args.patterns)
    after = _retarget_metrics(remapped, args.patterns)
    print(
        f"retarget {netlist.name!r}: "
        f"{_library.name} ({len(_library)} cells) -> "
        f"{target.name} ({len(target)} cells)"
    )
    for label, row in (("before", before), ("after", after)):
        print(
            f"  {label:6s} gates {row['gates']:4d}  "
            f"area {row['area']:8.1f}  power {row['power']:8.4f}  "
            f"delay {row['delay']:7.3f}"
        )

    if args.output:
        Path(args.output).write_text(write_blif(remapped))
        print(f"retargeted netlist written to {args.output}")

    if args.no_verify:
        return 0
    report = check_equivalence_tiers(
        netlist, remapped, num_patterns=args.patterns, seed=99
    )
    verdicts = ", ".join(
        f"{tier}={verdict}" for tier, verdict in sorted(report.verdicts.items())
    )
    print(f"equivalence: {'equal' if report.equal else 'NOT EQUAL'} "
          f"({verdicts})")
    if not report.equal:
        if report.counterexample:
            print("counterexample:", report.counterexample)
        return 1
    return 0


def _cmd_verify(args) -> int:
    from repro.equiv.checker import check_equivalent

    library = _load_library(args)
    left = parse_blif_file(args.left, library)
    right = parse_blif_file(args.right, library)
    result = check_equivalent(left, right)
    print(f"equivalence: {result.status} (decided by {result.stage})")
    if result.counterexample:
        print("counterexample:", result.counterexample)
    return 0 if result.equal else 1


def _cmd_atpg(args) -> int:
    from repro.atpg.fault import all_faults
    from repro.atpg.faultsim import fault_coverage, undetected_faults
    from repro.atpg.redundancy import classify_fault
    from repro.netlist.simulate import SimState, random_patterns

    netlist, _library = _load_mapped_netlist(args)
    faults = all_faults(netlist)
    sim = SimState(
        netlist, random_patterns(netlist.input_names, args.patterns, seed=11)
    )
    coverage = fault_coverage(sim, faults)
    print(
        f"{len(faults)} stuck-at faults, random-pattern coverage "
        f"({args.patterns} patterns): {coverage:.1%}"
    )
    leftovers = undetected_faults(sim, faults)
    print(f"{len(leftovers)} undetected faults; classifying with PODEM:")
    for fault in leftovers:
        print(f"  {str(fault):24s} {classify_fault(netlist, fault)}")
    return 0


def _cmd_glitch(args) -> int:
    from repro.power.glitch import analyze_glitches

    netlist, _library = _load_mapped_netlist(args)
    result = analyze_glitches(netlist, num_pairs=args.pairs)
    print(
        f"zero-delay power : {result.zero_delay_power:10.4f}\n"
        f"timed power      : {result.timed_power:10.4f}\n"
        f"glitch share     : {result.glitch_fraction:.1%} "
        f"(paper's expectation: ~20%)"
    )
    print("worst glitching signals:")
    for name, surplus in result.worst_glitchers(8):
        print(f"  {name:16s} +{surplus:.3f} transitions/cycle")
    return 0


def _cmd_stats(args) -> int:
    from repro.power.estimate import PowerEstimator
    from repro.power.probability import SimulationProbability
    from repro.timing.analysis import TimingAnalysis
    from repro.transform.dedupe import count_duplicate_gates

    netlist, _library = _load_mapped_netlist(args)
    estimator = PowerEstimator(
        netlist,
        SimulationProbability(netlist, num_patterns=args.patterns, seed=3),
    )
    timing = TimingAnalysis(netlist)
    print(f"netlist {netlist.name!r}:")
    print(f"  inputs/outputs : {len(netlist.input_names)} / {len(netlist.outputs)}")
    print(f"  gates          : {netlist.num_gates()}")
    print(f"  area           : {netlist.total_area():.0f}")
    print(f"  power (sum CE) : {estimator.total():.4f}")
    print(f"  delay          : {timing.circuit_delay:.3f}")
    print(f"  duplicate gates: {count_duplicate_gates(netlist)}")
    mix: dict[str, int] = {}
    for gate in netlist.logic_gates():
        mix[gate.cell.name] = mix.get(gate.cell.name, 0) + 1
    print("  cell mix       : " + ", ".join(
        f"{name}x{count}" for name, count in sorted(mix.items())
    ))
    print("  top power contributors:")
    for name, ce in estimator.report().top_contributors(8):
        print(f"    {name:16s} C*E = {ce:.4f}")
    return 0


def _split_rule_ids(values):
    """Flatten repeatable, comma-separated ``--select``/``--ignore`` args."""
    if not values:
        return None
    ids = [part.strip() for v in values for part in v.split(",")]
    return [rule_id for rule_id in ids if rule_id] or None


def _cmd_lint(args) -> int:
    from repro.errors import LintError
    from repro.lint import Severity, get_rule, lint_netlist, rule_catalog
    from repro.power.probability import SimulationProbability

    if args.list_rules:
        print(f"{'id':5s} {'severity':8s} {'category':9s}  description")
        for rule_id, severity, category, title in rule_catalog():
            print(f"{rule_id:5s} {severity:8s} {category:9s}  {title}")
        return 0
    if args.explain:
        import inspect

        try:
            rule = get_rule(args.explain)
        except LintError as error:
            print(f"error: {error}")
            return 2
        print(f"{rule.id}: {rule.title}")
        print(f"severity: {rule.severity}   category: {rule.category}")
        doc = type(rule).__doc__
        print()
        print(inspect.cleandoc(doc) if doc else "(no documentation)")
        return 0
    if args.netlist is None:
        print(
            "error: a mapped BLIF input is required "
            "(or --list-rules / --explain)"
        )
        return 2
    netlist, _library = _load_mapped_netlist(args)
    probabilities = None
    if not args.no_probabilities:
        engine = SimulationProbability(
            netlist, num_patterns=args.patterns, seed=3
        )
        probabilities = {
            name: engine.probability(name) for name in netlist.gates
        }
    facts = None
    if args.facts:
        from repro.analysis import AnalysisSuite

        facts = AnalysisSuite(netlist).facts
    try:
        report = lint_netlist(
            netlist,
            select=_split_rule_ids(args.select),
            ignore=_split_rule_ids(args.ignore),
            probabilities=probabilities,
            facts=facts,
        )
    except LintError as error:  # unknown rule ID in --select/--ignore
        print(f"error: {error}")
        return 2
    if args.format == "json":
        print(report.format_json())
    else:
        print(report.format_text())
    threshold = Severity.from_name(args.fail_on)
    return 1 if report.at_least(threshold) else 0


def _cmd_analyze(args) -> int:
    from repro.analysis import AnalysisSuite
    from repro.analysis.soundness import check_soundness

    netlist, _library = _load_mapped_netlist(args)
    suite = AnalysisSuite(netlist, num_patterns=args.patterns, seed=args.seed)
    facts = suite.facts
    soundness = None
    if args.check_soundness:
        soundness = check_soundness(netlist, facts)
    if args.format == "json":
        import json

        payload = facts.to_dict()
        if soundness is not None:
            payload["soundness"] = soundness.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        print(facts.format_text())
        if soundness is not None:
            print()
            print(soundness.format_text())
    return 1 if soundness is not None and not soundness.ok else 0


def _cmd_fuzz(args) -> int:
    from repro.bench.suite import FUZZ_SUITE
    from repro.fuzz import (
        FuzzOptions,
        cell_swap_mutator,
        replay_corpus,
        run_bench_cases,
        run_fuzz,
    )

    shapes = _split_rule_ids(args.shapes)
    # The optimizer-facing subset comes from the same prologue the
    # optimize/pipeline commands use, so the three stay in sync.
    shared = _optimizer_option_kwargs(args)
    options = FuzzOptions(
        seed=args.seed,
        count=args.count,
        min_inputs=args.min_inputs,
        max_inputs=args.max_inputs,
        min_gates=args.min_gates,
        max_gates=args.max_gates,
        shapes=tuple(shapes) if shapes else FuzzOptions.shapes,
        num_patterns=shared["num_patterns"],
        max_moves=shared["max_moves"],
        delay_slack_percent=shared["delay_slack_percent"],
        objective=shared["objective"],
        shrink=args.shrink or args.corpus_dir is not None,
        corpus_dir=Path(args.corpus_dir) if args.corpus_dir else None,
        check_rerun=not args.quick,
        check_engine_identity=not args.quick,
        check_pipeline_identity=not args.quick,
        mutator=cell_swap_mutator if args.self_test else None,
        windowed=shared["windowed"],
        jobs=shared["jobs"],
        window_size=shared["window_size"],
        window_radius=shared["window_radius"],
        library=(
            parse_genlib_file(args.library)
            if getattr(args, "library", None)
            else None
        ),
    )
    if args.replay:
        report = replay_corpus(Path(args.replay), options)
        if not report.cases:
            print(f"no .blif reproducers under {args.replay}")
            return 0
    elif args.bench:
        names = list(FUZZ_SUITE) if args.bench == ["all"] else args.bench
        report = run_bench_cases(names, options)
    else:
        report = run_fuzz(options, progress=lambda case: print(
            f"  {'ok  ' if case.ok else 'FAIL'} {case.name} "
            f"({case.gates} gates, {case.moves} moves)",
            flush=True,
        ))
    print(report.summary())
    if args.self_test:
        caught = all(not case.ok for case in report.cases)
        print(
            "self-test: injected cell-swap corruption "
            + ("caught in every case" if caught else "MISSED in some case")
        )
        return 0 if caught else 1
    return 0 if report.ok else 1


def _cmd_trace_show(args) -> int:
    from repro.errors import TelemetryError
    from repro.telemetry import format_trace, read_trace

    try:
        trace = read_trace(args.trace)
    except TelemetryError as error:
        print(f"error: {error}")
        return 1
    limit = None if args.moves < 0 else args.moves
    print(format_trace(trace, max_moves=limit))
    return 0


def _cmd_trace_diff(args) -> int:
    from repro.errors import TelemetryError
    from repro.telemetry import compare_traces, read_trace

    try:
        left = read_trace(args.left)
        right = read_trace(args.right)
    except TelemetryError as error:
        print(f"error: {error}")
        return 1
    diff = compare_traces(left, right, tolerance=args.tolerance)
    print(diff.format())
    return 0 if diff.ok else 1


def _cmd_serve(args) -> int:
    import asyncio
    import sys

    from repro.serve import PowderServer, ServerConfig

    def log(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_entries=args.cache_size,
            max_request_bytes=args.max_request_bytes,
            default_timeout=args.job_timeout,
            max_timeout=args.max_timeout,
            max_queue=args.max_queue,
            max_retries=args.max_retries,
            allow_remote_shutdown=not args.no_remote_shutdown,
            log=None if args.quiet else log,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    server = PowderServer(config)
    try:
        asyncio.run(server.run(install_signal_handlers=True))
    except KeyboardInterrupt:  # pragma: no cover — signal handler races
        pass
    return 0


def _cmd_bench_list(_args) -> int:
    print(f"{'name':10s} {'default':>7s} {'synthetic':>9s}  description")
    for name, spec in SUITE.items():
        print(
            f"{name:10s} {'yes' if spec.default else '':>7s} "
            f"{'yes' if spec.synthetic else '':>9s}  {spec.description}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="powder",
        description=(
            "POWDER reproduction: power reduction after technology mapping "
            "by ATPG-based structural transformations (DAC 1996)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func in (
        ("table1", _cmd_table1),
        ("table2", _cmd_table2),
        ("figure6", _cmd_figure6),
    ):
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        _add_config_arguments(p)
        p.set_defaults(func=func)

    p = sub.add_parser("optimize", help="run POWDER on a mapped BLIF file")
    p.add_argument("netlist", help="mapped BLIF input")
    p.add_argument("--library", help="genlib file (default: built-in)")
    p.add_argument("--output", "-o", help="write optimized BLIF here")
    p.add_argument("--verilog", help="also write structural Verilog here")
    p.add_argument("--objective", choices=("power", "area", "delay"),
                   default="power",
                   help="what each substitution must improve (default power)")
    p.add_argument("--delay-slack", type=float, default=None,
                   help="delay constraint as %% over initial (e.g. 0)")
    p.add_argument("--patterns", type=int, default=2048)
    p.add_argument("--repeat", type=int, default=25)
    p.add_argument("--max-rounds", type=int, default=20)
    p.add_argument("--max-moves", type=int, default=None)
    p.add_argument(
        "--sanitize", action="store_true",
        help="validate every incremental structure after each move "
        "(slow; raises on the first diverging move)",
    )
    p.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record per-round/per-move telemetry and write the JSON "
        "run trace here (inspect with 'powder trace show')",
    )
    _add_window_arguments(p)
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser(
        "pipeline",
        help="compose and run optimization pass pipelines "
        "(e.g. --spec 'dedupe; powder(repeat=25); sweep')",
    )
    psub = p.add_subparsers(dest="pipeline_command", required=True)
    pr = psub.add_parser("run", help="run a pass pipeline on a mapped BLIF")
    pr.add_argument(
        "netlist", nargs="?", default=None, help="mapped BLIF input"
    )
    pr.add_argument(
        "--spec", default="powder", metavar="SPEC",
        help="pipeline spec: 'pass; pass(key=value, ...); ...' "
        "(default 'powder'; see --list-passes)",
    )
    pr.add_argument("--library", help="genlib file (default: built-in)")
    pr.add_argument("--output", "-o", help="write the final BLIF here")
    pr.add_argument("--verilog", help="also write structural Verilog here")
    pr.add_argument("--objective", choices=("power", "area", "delay"),
                    default="power",
                    help="default objective for powder stages "
                    "(stage parameters override)")
    pr.add_argument("--delay-slack", type=float, default=None,
                    help="delay constraint as %% over initial (e.g. 0)")
    pr.add_argument("--patterns", type=int, default=2048)
    pr.add_argument("--repeat", type=int, default=25)
    pr.add_argument("--max-rounds", type=int, default=20)
    pr.add_argument("--max-moves", type=int, default=None)
    pr.add_argument(
        "--sanitize", action="store_true",
        help="per-move validation inside powder stages (slow)",
    )
    pr.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write the last powder stage's JSON run trace here",
    )
    pr.add_argument(
        "--list-passes", action="store_true",
        help="print the registered pass catalog and exit",
    )
    pr.set_defaults(func=_cmd_pipeline_run)

    p = sub.add_parser(
        "synth", help="synthesize a .pla or logic .blif to a mapped netlist"
    )
    p.add_argument("pla", help="espresso .pla or .names-style .blif input")
    p.add_argument("--library", help="genlib file (default: built-in)")
    p.add_argument("--mode", choices=("area", "power", "delay"), default="power")
    p.add_argument("--output", "-o", help="write mapped BLIF here")
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("verify", help="check equivalence of two mapped BLIFs")
    p.add_argument("left")
    p.add_argument("right")
    p.add_argument("--library", help="genlib file (default: built-in)")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "retarget",
        help="cross-map a netlist onto a different genlib library",
    )
    p.add_argument("netlist", help="mapped BLIF input")
    p.add_argument(
        "--to", required=True, metavar="GENLIB",
        help="target genlib file to map onto",
    )
    p.add_argument(
        "--library", help="source genlib file (default: built-in)"
    )
    p.add_argument(
        "--mode", choices=("area", "power", "delay"), default="power",
        help="mapping cost function (default power)",
    )
    p.add_argument(
        "--bdd", action="store_true",
        help="resynthesize through probability-sifted output BDDs "
        "instead of the structural unmap",
    )
    p.add_argument(
        "--patterns", type=int, default=1024,
        help="random patterns for metrics and the oracle (default 1024)",
    )
    p.add_argument("--output", "-o", help="write retargeted BLIF here")
    p.add_argument(
        "--no-verify", action="store_true",
        help="skip the differential-oracle equivalence check",
    )
    p.set_defaults(func=_cmd_retarget)

    p = sub.add_parser("atpg", help="fault coverage and redundancy report")
    p.add_argument("netlist", help="mapped BLIF input")
    p.add_argument("--library", help="genlib file (default: built-in)")
    p.add_argument("--patterns", type=int, default=1024)
    p.set_defaults(func=_cmd_atpg)

    p = sub.add_parser("glitch", help="glitch-aware power analysis")
    p.add_argument("netlist", help="mapped BLIF input")
    p.add_argument("--library", help="genlib file (default: built-in)")
    p.add_argument("--pairs", type=int, default=192)
    p.set_defaults(func=_cmd_glitch)

    p = sub.add_parser("stats", help="report netlist metrics and cell mix")
    p.add_argument("netlist", help="mapped BLIF input")
    p.add_argument("--library", help="genlib file (default: built-in)")
    p.add_argument("--patterns", type=int, default=2048)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "lint", help="static analysis: collect all rule findings on a BLIF"
    )
    p.add_argument(
        "netlist", nargs="?", default=None, help="mapped BLIF input"
    )
    p.add_argument("--library", help="genlib file (default: built-in)")
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    p.add_argument(
        "--fail-on", choices=("error", "warning", "info"), default="error",
        help="exit nonzero when a finding at or above this severity "
        "exists (default error)",
    )
    p.add_argument(
        "--select", action="append", default=None, metavar="IDS",
        help="run only these rule IDs (comma-separated, repeatable)",
    )
    p.add_argument(
        "--ignore", action="append", default=None, metavar="IDS",
        help="suppress these rule IDs (comma-separated, repeatable)",
    )
    p.add_argument(
        "--patterns", type=int, default=2048,
        help="random patterns for the probability rules (default 2048)",
    )
    p.add_argument(
        "--no-probabilities", action="store_true",
        help="skip probability estimation (disables the P0xx rules)",
    )
    p.add_argument(
        "--facts", action="store_true",
        help="run the analysis suite first and enable the proof-backed "
        "S0xx rules",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    p.add_argument(
        "--explain", default=None, metavar="RULE_ID",
        help="print one rule's documentation and severity, then exit",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="static fact base: proven constants, unobservable cones, "
        "phase chains, and equivalence classes",
    )
    p.add_argument("netlist", help="mapped BLIF input")
    p.add_argument("--library", help="genlib file (default: built-in)")
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    p.add_argument(
        "--patterns", type=int, default=256,
        help="simulation patterns seeding the analyses, multiple of 64 "
        "(default 256)",
    )
    p.add_argument(
        "--seed", type=int, default=11,
        help="pattern seed (default 11)",
    )
    p.add_argument(
        "--check-soundness", action="store_true",
        help="re-derive every fact by exhaustive simulation or a fresh "
        "SAT instance; exit 1 if any fact is unsound",
    )
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the optimizer (generate, optimize, "
        "verify three ways, shrink failures)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; case i uses seed+i (default 0)")
    p.add_argument("--count", type=int, default=20,
                   help="number of generated cases (default 20)")
    p.add_argument("--min-gates", type=int, default=6)
    p.add_argument("--max-gates", type=int, default=24)
    p.add_argument("--min-inputs", type=int, default=3)
    p.add_argument("--max-inputs", type=int, default=8)
    p.add_argument(
        "--shapes", action="append", default=None, metavar="NAMES",
        help="circuit shapes to rotate through (comma-separated, "
        "repeatable; default: random, reconvergent, high_fanout, "
        "inverter_chain)",
    )
    p.add_argument("--patterns", type=int, default=256,
                   help="random patterns per case, multiple of 64 "
                   "(default 256)")
    p.add_argument("--library",
                   help="genlib file to generate/replay against "
                   "(default: built-in)")
    p.add_argument("--max-moves", type=int, default=None)
    p.add_argument("--delay-slack", type=float, default=None,
                   help="also impose a delay constraint (%% over initial)")
    p.add_argument(
        "--shrink", action="store_true",
        help="delta-debug failing cases to minimal reproducers",
    )
    p.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="write shrunk reproducers here as replayable BLIF "
        "(implies --shrink)",
    )
    p.add_argument(
        "--replay", default=None, metavar="DIR",
        help="re-verify every .blif reproducer in DIR instead of "
        "generating",
    )
    p.add_argument(
        "--bench", nargs="+", default=None, metavar="NAME",
        help="verify registry benchmark circuits instead of generated "
        "ones ('all' = the FUZZ_SUITE subset)",
    )
    p.add_argument(
        "--quick", action="store_true",
        help="skip the properties that re-run the optimizer "
        "(idempotent-rerun, engine-identity, pipeline-identity)",
    )
    p.add_argument(
        "--self-test", action="store_true",
        help="inject a cell-swap corruption after each optimization and "
        "require the oracle to catch it (exit 0 = every case caught)",
    )
    _add_window_arguments(p)
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "trace",
        help="inspect and compare optimizer run traces "
        "(written by 'optimize --trace')",
    )
    tsub = p.add_subparsers(dest="trace_command", required=True)

    t = tsub.add_parser("show", help="render a run trace")
    t.add_argument("trace", help="trace JSON file")
    t.add_argument(
        "--moves", type=int, default=20,
        help="move-table rows to print (default 20; -1 for all)",
    )
    t.set_defaults(func=_cmd_trace_show)

    t = tsub.add_parser(
        "diff",
        help="compare the deterministic fields of two run traces "
        "(exit 1 on any divergence; wall-times are ignored)",
    )
    t.add_argument("left")
    t.add_argument("right")
    t.add_argument(
        "--tolerance", type=float, default=0.0,
        help="absolute tolerance for float fields (default 0: exact)",
    )
    t.set_defaults(func=_cmd_trace_diff)

    p = sub.add_parser(
        "serve",
        help="run the long-lived optimization service (HTTP/JSON)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8787,
                   help="TCP port; 0 picks an ephemeral port (default 8787)")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent optimizer processes (default 2)")
    p.add_argument("--cache-size", type=int, default=256,
                   help="completed-result LRU entries (default 256)")
    p.add_argument("--max-request-bytes", type=int, default=8 * 1024 * 1024,
                   help="request body cap; larger bodies get 413")
    p.add_argument("--job-timeout", type=float, default=300.0,
                   help="default per-job wall-clock budget in seconds")
    p.add_argument("--max-timeout", type=float, default=3600.0,
                   help="cap on client-requested per-job timeouts")
    p.add_argument("--max-queue", type=int, default=1024,
                   help="pending-execution bound; beyond it submissions "
                        "get 429")
    p.add_argument("--max-retries", type=int, default=1,
                   help="worker re-runs granted after a crash (default 1)")
    p.add_argument("--no-remote-shutdown", action="store_true",
                   help="disable POST /shutdown (signals only)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-request log lines on stderr")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("bench-list", help="list the benchmark registry")
    p.set_defaults(func=_cmd_bench_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
