"""Multi-valued logic evaluation of library cells.

3-valued domain: ``0``, ``1``, ``X`` (unknown).  A cell evaluates to a binary
value only when every completion of its unknown inputs agrees; otherwise X.
Evaluation is exact (it enumerates completions on the cell's ≤ handful of
inputs) and memoised per (cell function, input tuple), so repeated PODEM
implication passes are cheap.

5-valued D-calculus values are pairs of 3-valued values — the good-circuit
and faulty-circuit components.  ``D = (1, 0)``, ``D̄ = (0, 1)``; the classic
symbols are just views of the pair.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.library.cell import Cell

# 3-valued constants.
ZERO = 0
ONE = 1
X = 2

_eval_cache: dict[tuple[int, int, tuple[int, ...]], int] = {}


def eval3(cell: Cell, inputs: Sequence[int]) -> int:
    """3-valued evaluation of a cell."""
    key = (cell.function.nvars, cell.function.bits, tuple(inputs))
    cached = _eval_cache.get(key)
    if cached is not None:
        return cached
    table = cell.function
    unknown = [i for i, v in enumerate(inputs) if v == X]
    base = 0
    for i, v in enumerate(inputs):
        if v == ONE:
            base |= 1 << i
    if not unknown:
        result = table.value(base)
    else:
        seen0 = seen1 = False
        for completion in range(1 << len(unknown)):
            minterm = base
            for j, var in enumerate(unknown):
                if (completion >> j) & 1:
                    minterm |= 1 << var
            if table.value(minterm):
                seen1 = True
            else:
                seen0 = True
            if seen0 and seen1:
                break
        result = X if (seen0 and seen1) else (ONE if seen1 else ZERO)
    _eval_cache[key] = result
    return result


def can_output(cell: Cell, inputs: Sequence[int], target: int) -> bool:
    """True if some completion of the X inputs makes the cell output ``target``."""
    value = eval3(cell, inputs)
    return value == target or value == X


def pin_settings_allowing(
    cell: Cell, inputs: Sequence[int], pin: int, target: int
) -> list[int]:
    """Binary values for ``pin`` that keep output ``target`` achievable.

    ``inputs[pin]`` must currently be X.  Used by PODEM's backtrace to decide
    which value to request on the chosen fanin.
    """
    settings = []
    for candidate in (ZERO, ONE):
        trial = list(inputs)
        trial[pin] = candidate
        if can_output(cell, trial, target):
            settings.append(candidate)
    return settings


# ----------------------------------------------------------------------
# 5-valued pairs (good, faulty)
# ----------------------------------------------------------------------
def make5(good: int, faulty: int) -> tuple[int, int]:
    return (good, faulty)


def is_d_or_dbar(value: tuple[int, int]) -> bool:
    """True for D (1/0) or D̄ (0/1): a propagated fault effect."""
    good, faulty = value
    return good != faulty and good != X and faulty != X


def eval5(cell: Cell, inputs: Sequence[tuple[int, int]]) -> tuple[int, int]:
    """Component-wise 3-valued evaluation of the (good, faulty) pair."""
    good = eval3(cell, [v[0] for v in inputs])
    faulty = eval3(cell, [v[1] for v in inputs])
    return (good, faulty)


def symbol5(value: tuple[int, int]) -> str:
    """Human-readable D-calculus symbol for a 5-valued pair."""
    good, faulty = value
    if good == faulty:
        return {ZERO: "0", ONE: "1", X: "X"}[good]
    if good == ONE and faulty == ZERO:
        return "D"
    if good == ZERO and faulty == ONE:
        return "D'"
    return f"({good},{faulty})"
