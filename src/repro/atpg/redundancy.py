"""Redundancy identification.

A stuck-at fault that no input vector can detect is *redundant*: the circuit
function does not depend on the faulted line's correct value, so the line
carries a don't-care that structural transformations can exploit.  This is
exactly the link between ATPG and permissible transformations exploited by
the paper's references [1, 2, 4, 5].

:func:`is_redundant` wraps PODEM with the paper's abort semantics: an
aborted search proves nothing, and callers must treat it as "not shown
redundant".
"""

from __future__ import annotations

from repro.atpg.fault import StuckAtFault
from repro.atpg.podem import DEFAULT_BACKTRACK_LIMIT, Podem
from repro.errors import AtpgAbort
from repro.netlist.netlist import Netlist

REDUNDANT = "redundant"
TESTABLE = "testable"
ABORTED = "aborted"


def classify_fault(
    netlist: Netlist,
    fault: StuckAtFault,
    backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
) -> str:
    """One of :data:`REDUNDANT`, :data:`TESTABLE`, :data:`ABORTED`."""
    try:
        result = Podem(netlist, fault, backtrack_limit).run()
    except AtpgAbort:
        return ABORTED
    return TESTABLE if result.testable else REDUNDANT


def is_redundant(
    netlist: Netlist,
    fault: StuckAtFault,
    backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
) -> bool:
    """True only when PODEM *proves* the fault untestable."""
    return classify_fault(netlist, fault, backtrack_limit) == REDUNDANT


def redundant_faults(
    netlist: Netlist,
    faults,
    backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
) -> list[StuckAtFault]:
    """The subset of ``faults`` proven redundant."""
    return [
        fault
        for fault in faults
        if classify_fault(netlist, fault, backtrack_limit) == REDUNDANT
    ]
