"""ATPG: automatic test pattern generation for stuck-at faults.

This package is the paper's enabling technology — permissible substitutions
are identified by test generation (§3.2, refs [2, 5]).  It provides:

- :mod:`~repro.atpg.values` — 3- and 5-valued logic evaluation of library
  cells (the D-calculus),
- :mod:`~repro.atpg.fault` — stuck-at faults on stems and branches,
- :mod:`~repro.atpg.faultsim` — bit-parallel parallel-pattern fault
  simulation,
- :mod:`~repro.atpg.podem` — a PODEM test generator with backtrack limit and
  a fault-free justification mode (used for the permissibility oracle),
- :mod:`~repro.atpg.redundancy` — redundancy identification built on PODEM.
"""

from repro.atpg.fault import StuckAtFault, all_stem_faults, all_faults
from repro.atpg.faultsim import fault_simulate, detected_mask, fault_coverage
from repro.atpg.podem import Podem, PodemResult, justify
from repro.atpg.redundancy import is_redundant

__all__ = [
    "StuckAtFault",
    "all_stem_faults",
    "all_faults",
    "fault_simulate",
    "detected_mask",
    "fault_coverage",
    "Podem",
    "PodemResult",
    "justify",
    "is_redundant",
]
