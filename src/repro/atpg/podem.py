"""PODEM test generation and circuit-SAT justification.

Two search problems share the machinery here:

- :class:`Podem` — find a test for a stuck-at fault (5-valued D-calculus,
  objective/backtrace/implication, D-frontier with X-path check), or prove
  the fault untestable (= redundant), or abort at a backtrack limit.
- :func:`justify` — fault-free search for an input assignment driving one
  stem to a target value.  This is what the permissibility oracle runs on
  the miter: the substitution is permissible iff the miter output cannot be
  justified to 1.

Both searches make decisions only at primary inputs (PODEM's defining
trait), run full multi-valued implication after each decision, and count
every decision flip as a backtrack against the limit.  Exceeding the limit
raises :class:`~repro.errors.AtpgAbort` — callers treat an abort as "not
proven", exactly like the paper's ``check_candidate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.atpg.fault import StuckAtFault
from repro.atpg.values import (
    ONE,
    X,
    ZERO,
    eval3,
    eval5,
    is_d_or_dbar,
    pin_settings_allowing,
)
from repro.errors import AtpgAbort, AtpgError
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import topological_order, transitive_fanout

#: Default decision-flip budget before the search aborts.
DEFAULT_BACKTRACK_LIMIT = 20000

SAT = "SAT"
UNSAT = "UNSAT"


@dataclass
class PodemResult:
    """Outcome of a PODEM or justification run."""

    status: str  # SAT or UNSAT (aborts raise AtpgAbort instead)
    assignment: dict[str, int] = field(default_factory=dict)  # PI name -> 0/1
    backtracks: int = 0

    @property
    def testable(self) -> bool:
        return self.status == SAT


def _po_depths(netlist: Netlist) -> dict[str, int]:
    """Minimum gate distance from each stem to a primary output."""
    depths: dict[str, int] = {}
    for gate in reversed(topological_order(netlist)):
        best = 0 if gate.po_names else None
        for sink, _pin in gate.fanouts:
            d = depths.get(sink.name)
            if d is not None and (best is None or d + 1 < best):
                best = d + 1
        if best is not None:
            depths[gate.name] = best
    return depths


class _SearchBase:
    """Shared decision-stack search over primary-input assignments."""

    def __init__(self, netlist: Netlist, backtrack_limit: int):
        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self.order = topological_order(netlist)
        self.po_depth = _po_depths(netlist)
        self.pi_values: dict[str, int] = {
            name: X for name in netlist.input_names
        }
        # (pi name, current value, exhausted both polarities?)
        self.decisions: list[tuple[str, int, bool]] = []
        self.backtracks = 0

    def _decide(self, pi: str, value: int) -> None:
        self.pi_values[pi] = value
        self.decisions.append((pi, value, False))

    def _backtrack(self) -> bool:
        """Undo decisions until one can be flipped; False when exhausted."""
        while self.decisions:
            pi, value, flipped = self.decisions.pop()
            if flipped:
                self.pi_values[pi] = X
                continue
            self.backtracks += 1
            if self.backtracks > self.backtrack_limit:
                raise AtpgAbort(
                    f"backtrack limit {self.backtrack_limit} exceeded"
                )
            flipped_value = 1 - value
            self.pi_values[pi] = flipped_value
            self.decisions.append((pi, flipped_value, True))
            return True
        return False

    def _assignment(self) -> dict[str, int]:
        return {
            name: v for name, v in self.pi_values.items() if v != X
        }


class Podem(_SearchBase):
    """PODEM for one stuck-at fault."""

    def __init__(
        self,
        netlist: Netlist,
        fault: StuckAtFault,
        backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
    ):
        super().__init__(netlist, backtrack_limit)
        self.fault = fault
        self.stem, self.branch = fault.resolve(netlist)
        self.values: dict[str, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Implication
    # ------------------------------------------------------------------
    def _simulate(self) -> None:
        values: dict[str, tuple[int, int]] = {}
        fault = self.fault
        for gate in self.order:
            if gate.is_input:
                v = self.pi_values[gate.name]
                pair = (v, v)
            else:
                fanin_pairs = []
                for pin, fanin in enumerate(gate.fanins):
                    pair_in = values[fanin.name]
                    if (
                        self.branch is not None
                        and self.branch[0] is gate
                        and self.branch[1] == pin
                    ):
                        pair_in = (pair_in[0], fault.value)
                    fanin_pairs.append(pair_in)
                pair = eval5(gate.cell, fanin_pairs)
            if self.branch is None and gate is self.stem:
                pair = (pair[0], fault.value)
            values[gate.name] = pair
        self.values = values

    # ------------------------------------------------------------------
    # Analysis of the implied state
    # ------------------------------------------------------------------
    def _test_found(self) -> bool:
        return any(
            is_d_or_dbar(self.values[driver.name])
            for driver in self.netlist.outputs.values()
        )

    def _activation_value(self) -> int:
        """Good value at the fault site."""
        if self.branch is None:
            return self.values[self.stem.name][0]
        return self.values[self.stem.name][0]

    def _activation_conflict(self) -> bool:
        good = self._activation_value()
        return good != X and good == self.fault.value

    def _d_frontier(self) -> list[Gate]:
        frontier = []
        for gate in self.order:
            if gate.is_input:
                continue
            out = self.values[gate.name]
            if is_d_or_dbar(out):
                continue
            if out[0] != X and out[1] != X:
                continue  # fixed equal pair: effect killed here
            has_d_input = False
            for pin, fanin in enumerate(gate.fanins):
                pair_in = self.values[fanin.name]
                if (
                    self.branch is not None
                    and self.branch[0] is gate
                    and self.branch[1] == pin
                ):
                    pair_in = (pair_in[0], self.fault.value)
                if is_d_or_dbar(pair_in):
                    has_d_input = True
                    break
            if has_d_input:
                frontier.append(gate)
        return frontier

    def _fault_effect_sites(self) -> list[Gate]:
        """Gates whose output currently carries D/D̄ (plus the fault site)."""
        sites = [
            g
            for g in self.order
            if not g.is_input and is_d_or_dbar(self.values[g.name])
        ]
        # The faulty stem itself once activated.
        if is_d_or_dbar(self.values[self.stem.name]):
            sites.append(self.stem)
        return sites

    def _x_path_exists(self, frontier: list[Gate]) -> bool:
        """Some frontier gate reaches a PO through not-yet-blocked gates."""
        target_ids = set()
        stack = list(frontier)
        seen = set()
        while stack:
            gate = stack.pop()
            if id(gate) in seen:
                continue
            seen.add(id(gate))
            if gate.po_names:
                return True
            for sink, _pin in gate.fanouts:
                out = self.values[sink.name]
                blocked = (
                    out[0] != X and out[1] != X and not is_d_or_dbar(out)
                )
                if not blocked:
                    stack.append(sink)
            target_ids.add(id(gate))
        return False

    # ------------------------------------------------------------------
    # Objective and backtrace
    # ------------------------------------------------------------------
    def _propagation_objective(
        self, frontier: list[Gate]
    ) -> Optional[tuple[Gate, int]]:
        """Heuristic objective: drive a frontier gate toward propagation.

        May return None without implying a conflict — the caller then falls
        back to a free-PI decision (pair-encoded X values can hide the
        undetermined part in the faulty component, where backtrace cannot
        follow).
        """
        gate = min(
            frontier, key=lambda g: self.po_depth.get(g.name, 1 << 30)
        )
        pairs = []
        for pin, fanin in enumerate(gate.fanins):
            pair_in = self.values[fanin.name]
            if (
                self.branch is not None
                and self.branch[0] is gate
                and self.branch[1] == pin
            ):
                pair_in = (pair_in[0], self.fault.value)
            pairs.append(pair_in)
        for pin, fanin in enumerate(gate.fanins):
            pair = pairs[pin]
            if is_d_or_dbar(pair) or pair[0] != X:
                continue
            # Pick the value that lets the outputs differ between machines.
            for candidate in (ONE, ZERO):
                goods = [p[0] for p in pairs]
                faults = [p[1] for p in pairs]
                goods[pin] = candidate
                faults[pin] = candidate
                g_out = eval3(gate.cell, goods)
                f_out = eval3(gate.cell, faults)
                differ_possible = not (
                    g_out != X and f_out != X and g_out == f_out
                )
                if differ_possible:
                    return (fanin, candidate)
        return None

    def _free_pi_near(self, gates: list[Gate]) -> Optional[tuple[str, int]]:
        """An unassigned PI from the fanin cones of ``gates`` (or any)."""
        seen: set[int] = set()
        stack = list(gates)
        while stack:
            gate = stack.pop()
            if id(gate) in seen:
                continue
            seen.add(id(gate))
            if gate.is_input:
                if self.pi_values[gate.name] == X:
                    return (gate.name, ONE)
                continue
            stack.extend(gate.fanins)
        for name in self.netlist.input_names:
            if self.pi_values[name] == X:
                return (name, ONE)
        return None

    def _backtrace(self, gate: Gate, value: int) -> Optional[tuple[str, int]]:
        """Walk an objective back to an unassigned primary input."""
        current, target = gate, value
        for _ in range(len(self.netlist.gates) + 1):
            if current.is_input:
                if self.pi_values[current.name] != X:
                    return None
                return (current.name, target)
            goods = []
            for fanin in current.fanins:
                goods.append(self.values[fanin.name][0])
            chosen = None
            for pin, fanin in enumerate(current.fanins):
                if goods[pin] != X:
                    continue
                settings = pin_settings_allowing(
                    current.cell, goods, pin, target
                )
                if settings:
                    chosen = (fanin, settings[0])
                    break
            if chosen is None:
                return None
            current, target = chosen
        raise AtpgError("backtrace exceeded gate count (cycle?)")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> PodemResult:
        while True:
            self._simulate()
            if self._test_found():
                return PodemResult(SAT, self._assignment(), self.backtracks)
            conflict = False
            objective: Optional[tuple[Gate, int]] = None
            frontier: list[Gate] = []
            if self._activation_conflict():
                conflict = True
            elif self._activation_value() == X:
                objective = (self.stem, 1 - self.fault.value)
            else:
                frontier = self._d_frontier()
                if not frontier or not self._x_path_exists(frontier):
                    conflict = True  # effect provably killed: sound prune
                else:
                    objective = self._propagation_objective(frontier)
            if not conflict:
                step = self._backtrace(*objective) if objective else None
                if step is None:
                    # Heuristics failed (objective unreachable through good
                    # values): fall back to any relevant free PI.  This
                    # keeps the search complete — only provable dead-ends
                    # above are treated as conflicts.
                    near = frontier or [self.stem]
                    step = self._free_pi_near(near)
                if step is None:
                    conflict = True  # all PIs assigned, still no test
                else:
                    self._decide(*step)
                    continue
            if not self._backtrack():
                return PodemResult(UNSAT, {}, self.backtracks)


class _Justifier:
    """Fault-free 3-valued search driving one stem to a target value.

    Unlike :class:`Podem`, the justifier simulates *incrementally*: each
    primary-input decision re-evaluates only that input's transitive fanout
    (changes recorded on an undo trail, restored on backtracking).  On the
    optimizer's miters this is the difference between O(decisions × gates)
    and O(decisions × affected-cone) — roughly two orders of magnitude.
    """

    def __init__(
        self,
        netlist: Netlist,
        target: Gate,
        target_value: int,
        backtrack_limit: int,
    ):
        self.netlist = netlist
        self.target = target
        self.target_value = target_value
        self.backtrack_limit = backtrack_limit
        self.backtracks = 0
        self.pi_values: dict[str, int] = {
            name: X for name in netlist.input_names
        }
        #: per-PI transitive fanout, topological order (lazy).
        self._tfo_cache: dict[str, list[Gate]] = {}
        # Initial all-X implication pass.
        self.values: dict[str, int] = {}
        for gate in topological_order(netlist):
            if gate.is_input:
                self.values[gate.name] = X
            else:
                self.values[gate.name] = eval3(
                    gate.cell, [self.values[f.name] for f in gate.fanins]
                )
        #: decision stack entries: [pi name, value, tried_both, undo list]
        self.decisions: list[list] = []

    # ------------------------------------------------------------------
    def _tfo_of(self, pi_name: str) -> list[Gate]:
        cached = self._tfo_cache.get(pi_name)
        if cached is None:
            cached = transitive_fanout(
                self.netlist, [self.netlist.gates[pi_name]]
            )
            self._tfo_cache[pi_name] = cached
        return cached

    def _apply_pi(self, pi_name: str, value: int) -> list[tuple[str, int]]:
        """Set a PI and propagate through its TFO; returns the undo list."""
        undo = [(pi_name, self.pi_values[pi_name], self.values[pi_name])]
        self.pi_values[pi_name] = value
        self.values[pi_name] = value
        for gate in self._tfo_of(pi_name):
            new = eval3(
                gate.cell, [self.values[f.name] for f in gate.fanins]
            )
            old = self.values[gate.name]
            if new != old:
                undo.append((gate.name, None, old))
                self.values[gate.name] = new
        return undo

    def _revert(self, undo: list) -> None:
        for name, pi_old, value_old in reversed(undo):
            if pi_old is not None or name in self.pi_values:
                self.pi_values[name] = pi_old if pi_old is not None else X
            self.values[name] = value_old

    def _decide(self, pi_name: str, value: int) -> None:
        undo = self._apply_pi(pi_name, value)
        self.decisions.append([pi_name, value, False, undo])

    def _backtrack(self) -> bool:
        while self.decisions:
            entry = self.decisions[-1]
            pi_name, value, tried_both, undo = entry
            self._revert(undo)
            if not tried_both:
                self.backtracks += 1
                if self.backtracks > self.backtrack_limit:
                    raise AtpgAbort(
                        f"backtrack limit {self.backtrack_limit} exceeded"
                    )
                entry[1] = 1 - value
                entry[2] = True
                entry[3] = self._apply_pi(pi_name, 1 - value)
                return True
            self.decisions.pop()
        return False

    def _assignment(self) -> dict[str, int]:
        return {
            name: v for name, v in self.pi_values.items() if v != X
        }

    def _backtrace(self) -> Optional[tuple[str, int]]:
        current, target = self.target, self.target_value
        for _ in range(len(self.netlist.gates) + 1):
            if current.is_input:
                if self.pi_values[current.name] != X:
                    return None
                return (current.name, target)
            goods = [self.values[f.name] for f in current.fanins]
            chosen = None
            for pin, fanin in enumerate(current.fanins):
                if goods[pin] != X:
                    continue
                settings = pin_settings_allowing(
                    current.cell, goods, pin, target
                )
                if settings:
                    chosen = (fanin, settings[0])
                    break
            if chosen is None:
                return None
            current, target = chosen
        raise AtpgError("backtrace exceeded gate count (cycle?)")

    def run(self) -> PodemResult:
        while True:
            value = self.values[self.target.name]
            if value == self.target_value:
                return PodemResult(SAT, self._assignment(), self.backtracks)
            conflict = value != X
            if not conflict:
                step = self._backtrace()
                if step is None:
                    conflict = True
                else:
                    self._decide(*step)
                    continue
            if not self._backtrack():
                return PodemResult(UNSAT, {}, self.backtracks)


def justify(
    netlist: Netlist,
    gate: Gate,
    value: int,
    backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
) -> PodemResult:
    """Search for an input vector setting ``gate``'s stem to ``value``.

    Returns SAT with a (partial) PI assignment, UNSAT when no vector exists,
    or raises :class:`AtpgAbort` past the backtrack limit.
    """
    if value not in (0, 1):
        raise AtpgError(f"justification target must be 0/1, got {value}")
    return _Justifier(netlist, gate, value, backtrack_limit).run()
