"""Bit-parallel (parallel-pattern) stuck-at fault simulation.

For each fault the faulty machine is re-simulated only on the fault site's
transitive fanout, word-parallel across all patterns of a
:class:`~repro.netlist.simulate.SimState`.  A fault is detected on pattern
*p* when some primary output differs between good and faulty machine.

Used three ways in this system: classic fault-coverage evaluation, cheap
redundancy filtering (a fault no random pattern detects is a redundancy
*candidate*), and the candidate-generation statistics of the optimizer.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.atpg.fault import StuckAtFault
from repro.kernels.words import popcount
from repro.netlist.simulate import SimState, evaluate_cell
from repro.netlist.traverse import transitive_fanout


def detected_mask(sim: SimState, fault: StuckAtFault) -> np.ndarray:
    """Bit mask of patterns on which the fault is detected at some PO."""
    netlist = sim.netlist
    stem, branch = fault.resolve(netlist)
    stuck = (
        np.full(sim.nwords, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        if fault.value
        else np.zeros(sim.nwords, dtype=np.uint64)
    )
    overlay: dict[str, np.ndarray] = {}
    if branch is None:
        if np.array_equal(stuck, sim.value(stem.name)):
            return np.zeros(sim.nwords, dtype=np.uint64)
        overlay[stem.name] = stuck
        roots = [stem]
    else:
        sink, pin = branch
        fanin_words = [
            stuck if i == pin else sim.value(f.name)
            for i, f in enumerate(sink.fanins)
        ]
        faulty_sink = evaluate_cell(sink.cell, fanin_words, sim.nwords)
        if np.array_equal(faulty_sink, sim.value(sink.name)):
            return np.zeros(sim.nwords, dtype=np.uint64)
        overlay[sink.name] = faulty_sink
        roots = [sink]
    for gate in transitive_fanout(netlist, roots):
        fanin_words = [
            overlay.get(f.name, sim.value(f.name)) for f in gate.fanins
        ]
        new = evaluate_cell(gate.cell, fanin_words, sim.nwords)
        if not np.array_equal(new, sim.value(gate.name)):
            overlay[gate.name] = new
    mask = np.zeros(sim.nwords, dtype=np.uint64)
    for driver in netlist.outputs.values():
        faulty = overlay.get(driver.name)
        if faulty is not None:
            mask |= faulty ^ sim.value(driver.name)
    return mask


def fault_simulate(
    sim: SimState, faults: Iterable[StuckAtFault]
) -> dict[StuckAtFault, int]:
    """Detection count per fault over the pattern set."""
    return {fault: popcount(detected_mask(sim, fault)) for fault in faults}


def fault_coverage(sim: SimState, faults: Sequence[StuckAtFault]) -> float:
    """Fraction of the fault list detected by at least one pattern."""
    if not faults:
        return 1.0
    detected = sum(
        1 for fault in faults if popcount(detected_mask(sim, fault)) > 0
    )
    return detected / len(faults)


def undetected_faults(
    sim: SimState, faults: Iterable[StuckAtFault]
) -> list[StuckAtFault]:
    """Faults no pattern in the set detects — redundancy candidates."""
    return [
        fault
        for fault in faults
        if popcount(detected_mask(sim, fault)) == 0
    ]
