"""Stuck-at fault model on stems and branches.

A fault fixes either a gate's stem output (``branch is None``) or a single
fanout branch — identified by its sink gate and pin index — to a constant.
Branch faults matter because the paper's substitutions operate on individual
branches; a stem and its branches are distinct fault (and substitution)
sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import NetlistError
from repro.netlist.netlist import Gate, Netlist


@dataclass(frozen=True)
class StuckAtFault:
    """Stuck-at-``value`` fault at a stem or branch."""

    gate_name: str  # the driving (stem) gate
    value: int  # 0 or 1
    branch: Optional[tuple[str, int]] = None  # (sink gate name, pin index)

    def __post_init__(self):
        if self.value not in (0, 1):
            raise NetlistError(f"stuck-at value must be 0/1, got {self.value}")

    @property
    def is_stem(self) -> bool:
        return self.branch is None

    def site_str(self) -> str:
        if self.branch is None:
            return self.gate_name
        sink, pin = self.branch
        return f"{self.gate_name}->{sink}.{pin}"

    def __str__(self) -> str:
        return f"{self.site_str()}/sa{self.value}"

    def resolve(self, netlist: Netlist) -> tuple[Gate, Optional[tuple[Gate, int]]]:
        """Map names to live gate objects, validating the site exists."""
        stem = netlist.gate(self.gate_name)
        if self.branch is None:
            return stem, None
        sink_name, pin = self.branch
        sink = netlist.gate(sink_name)
        if pin >= len(sink.fanins) or sink.fanins[pin] is not stem:
            raise NetlistError(f"fault site {self.site_str()} is stale")
        return stem, (sink, pin)


def all_stem_faults(netlist: Netlist) -> list[StuckAtFault]:
    """Both polarities of stuck-at faults on every stem."""
    faults = []
    for gate in netlist.gates.values():
        for value in (0, 1):
            faults.append(StuckAtFault(gate.name, value))
    return faults


def all_faults(netlist: Netlist, include_branches: bool = True) -> list[StuckAtFault]:
    """Stem faults plus (optionally) faults on every multi-fanout branch."""
    faults = all_stem_faults(netlist)
    if include_branches:
        for gate in netlist.gates.values():
            if gate.fanout_count() <= 1:
                continue  # single-branch stems: branch fault == stem fault
            for sink, pin in gate.fanouts:
                for value in (0, 1):
                    faults.append(
                        StuckAtFault(gate.name, value, branch=(sink.name, pin))
                    )
    return faults
