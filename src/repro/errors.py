"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one type at the API boundary.  Subsystems raise the most specific
subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LogicError(ReproError):
    """Invalid Boolean-function operation (bad support, arity mismatch...)."""


class ParseError(ReproError):
    """Malformed input text (genlib, BLIF, PLA, expression...).

    Attributes
    ----------
    line:
        1-based line number of the offending input, when known.
    """

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class LibraryError(ReproError):
    """Inconsistent cell library (missing inverter, bad pin data...).

    Attributes
    ----------
    line:
        1-based line number of the offending genlib input, when the
        inconsistency was detected while parsing a library file.
    """

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class NetlistError(ReproError):
    """Structurally invalid netlist operation (cycle, dangling pin...)."""


class MappingError(ReproError):
    """Technology mapping could not cover the subject graph."""


class AtpgError(ReproError):
    """Internal failure of the test-generation engine."""


class AtpgAbort(AtpgError):
    """The ATPG search exceeded its backtrack limit.

    Mirrors the paper's ``check_candidate`` semantics: an aborted ATPG run
    means the substitution is treated as not permissible.
    """


class TransformError(ReproError):
    """A structural transformation could not be applied."""


class TimingError(ReproError):
    """Timing analysis failure (unconstrained graph, negative load...)."""


class TelemetryError(ReproError):
    """Invalid run-trace data (unreadable file, schema violation...)."""


class PipelineError(ReproError):
    """Invalid pass-pipeline configuration (unknown pass or analysis,
    malformed pipeline spec...).

    Attributes
    ----------
    position:
        0-based character offset into the pipeline-spec text where the
        problem was detected, when one applies.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"column {position}: {message}"
        super().__init__(message)
        self.position = position


class ServeError(ReproError):
    """Invalid request or server-side failure in the ``powder serve``
    optimization service.

    Attributes
    ----------
    code:
        Short machine-readable error code (``bad-blif``, ``bad-options``,
        ``queue-full``...), mirrored into the structured JSON error body.
    status:
        The HTTP status the service maps this error to (4xx for request
        problems, 5xx for server faults).
    """

    def __init__(self, message: str, code: str = "bad-request",
                 status: int = 400):
        super().__init__(message)
        self.code = code
        self.status = status


class LintError(ReproError):
    """A static-analysis failure surfaced as an exception.

    Raised for invalid lint configuration (unknown rule ID, bad severity)
    and by the transformation sanitizer when a finding of error severity
    survives.  Diagnostics always carry a stable rule ID so suppressions
    keep working across rule renames.

    Attributes
    ----------
    rule_id:
        Stable ID of the rule behind the finding, when one applies.
    report:
        The full :class:`repro.lint.LintReport`, when one was produced.
    """

    def __init__(self, message: str, rule_id: str | None = None, report=None):
        super().__init__(message)
        self.rule_id = rule_id
        self.report = report
