"""Job canonicalization: wire payload → validated, hashable job spec.

Deduplication is only sound if "identical submission" is a syntactic
property, so every accepted job is normalised before it is keyed:

- the BLIF text is parsed against the server library and re-emitted by
  :func:`~repro.netlist.blif.write_blif`, giving one canonical text per
  netlist regardless of comment placement, line wrapping, or cover-row
  order in the submission,
- the pipeline spec (when given) round-trips through
  :func:`~repro.pipeline.spec.parse_pipeline_spec` /
  :func:`~repro.pipeline.spec.format_pipeline_spec`, so ``powder( repeat=5 )``
  and ``powder(repeat=5)`` are the same job,
- the options dictionary becomes a full
  :class:`~repro.transform.optimizer.OptimizeOptions` (defaults filled,
  unknown knobs rejected) and is serialized back with
  :meth:`~repro.transform.optimizer.OptimizeOptions.canonical_json`.

The cache key is the SHA-256 over those three canonical texts; two
submissions share a key iff the optimizer would do byte-identical work
for both.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import PipelineError, ReproError, ServeError
from repro.library.standard import standard_library
from repro.netlist.blif import parse_blif, write_blif
from repro.transform.optimizer import OptimizeOptions

_LIBRARY = None


def server_library():
    """The one cell library the service optimizes against (built-in)."""
    global _LIBRARY
    if _LIBRARY is None:
        _LIBRARY = standard_library()
    return _LIBRARY


@dataclass(frozen=True)
class JobSpec:
    """One canonicalized optimization job (the unit of dedup)."""

    #: Canonical BLIF text (parse → re-emit of the submission).
    blif: str
    #: Canonical pipeline spec, or ``None`` for the default pipeline of
    #: the options (what :func:`repro.transform.optimizer.power_optimize`
    #: runs).
    spec: Optional[str]
    #: Canonical JSON of the full :class:`OptimizeOptions`.
    options_json: str
    #: SHA-256 hex digest over the three canonical texts.
    key: str


def _require(condition: bool, message: str, code: str) -> None:
    if not condition:
        raise ServeError(message, code=code, status=400)


def canonical_spec(text: str) -> str:
    """Round-trip a pipeline spec to its canonical formatting."""
    from repro.pipeline.spec import format_pipeline_spec, parse_pipeline_spec

    try:
        return format_pipeline_spec(parse_pipeline_spec(text))
    except PipelineError as error:
        raise ServeError(f"invalid pipeline spec: {error}",
                         code="bad-spec", status=400) from error


def canonicalize_options(options: Optional[dict]) -> OptimizeOptions:
    """Validated :class:`OptimizeOptions` from a wire dictionary."""
    _require(options is None or isinstance(options, dict),
             "'options' must be a JSON object", "bad-options")
    try:
        return OptimizeOptions.from_dict(dict(options or {}))
    except (ValueError, TypeError, ReproError) as error:
        raise ServeError(f"invalid options: {error}",
                         code="bad-options", status=400) from error


def canonicalize_job(payload: dict) -> JobSpec:
    """Validate one submission payload into a keyed :class:`JobSpec`.

    Raises :class:`~repro.errors.ServeError` (→ structured 400) on any
    malformed part; nothing about a rejected submission reaches the
    queue or a worker.
    """
    _require(isinstance(payload, dict), "submission must be a JSON object",
             "bad-request")
    blif = payload.get("blif")
    _require(isinstance(blif, str) and blif.strip() != "",
             "'blif' must be a non-empty string of BLIF text", "bad-blif")

    options = canonicalize_options(payload.get("options"))
    if options.trace is not None:  # defensive: wire options never carry one
        raise ServeError("options cannot carry a tracer",
                         code="bad-options", status=400)

    spec = payload.get("spec")
    _require(spec is None or isinstance(spec, str),
             "'spec' must be a pipeline-spec string", "bad-spec")
    spec_text = canonical_spec(spec) if spec is not None else None
    if spec_text is not None:
        # Fail unknown pass names at submission, not inside a worker.
        from repro.pipeline import build_pipeline

        try:
            build_pipeline(spec_text)
        except PipelineError as error:
            raise ServeError(f"invalid pipeline spec: {error}",
                             code="bad-spec", status=400) from error

    try:
        netlist = parse_blif(blif, server_library())
    except ReproError as error:
        raise ServeError(f"invalid BLIF: {error}",
                         code="bad-blif", status=400) from error
    canonical_blif = write_blif(netlist)

    options_json = options.canonical_json()
    digest = hashlib.sha256()
    for part in (canonical_blif, spec_text or "", options_json):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return JobSpec(
        blif=canonical_blif,
        spec=spec_text,
        options_json=options_json,
        key=digest.hexdigest(),
    )
