"""Run a :class:`~repro.serve.server.PowderServer` on a background thread.

The server is pure asyncio; tests, benchmarks, and embedding callers
often want it alongside blocking code.  :class:`ServerThread` runs the
event loop on a daemon thread, exposes the bound ephemeral port, and
tears the service down through the same graceful-drain path the CLI
uses:

    with ServerThread(ServerConfig(workers=2)) as handle:
        client = handle.client()
        ...
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.errors import ServeError
from repro.serve.client import ServeClient
from repro.serve.server import PowderServer, ServerConfig


class ServerThread:
    """A server on its own thread + event loop; context-manageable."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.server: Optional[PowderServer] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise ServeError("server thread already started",
                             code="already-started", status=500)
        self._thread = threading.Thread(
            target=self._thread_main, name="powder-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServeError("server failed to start within 30s",
                             code="startup-timeout", status=500)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 — surface to start()
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        server = PowderServer(self.config)
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001
            self._startup_error = error
            self._ready.set()
            return
        self.server = server
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await server.wait_closed()

    # ------------------------------------------------------------------
    def client(self, timeout: float = 30.0) -> ServeClient:
        if self.port is None:
            raise ServeError("server is not running", code="not-running",
                             status=500)
        return ServeClient(self.config.host, self.port, timeout=timeout)

    def stop(self, drain: bool = True, join_timeout: float = 60.0) -> None:
        """Trigger a graceful shutdown and join the thread (idempotent)."""
        thread, loop, server = self._thread, self._loop, self.server
        if thread is None or not thread.is_alive():
            return
        if loop is not None and server is not None:
            try:
                loop.call_soon_threadsafe(server.request_shutdown, drain)
            except RuntimeError:
                pass  # loop already closed
        thread.join(join_timeout)
        if thread.is_alive():  # pragma: no cover — drain never hangs
            raise ServeError("server thread did not stop",
                             code="shutdown-timeout", status=500)

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
