"""Job and execution records for the optimization service.

A *job* is one accepted submission: it has an ID, a state machine, an
event log, and eventually a result or error.  An *execution* is one
actual optimizer run; duplicate submissions (same canonical
:class:`~repro.serve.jobspec.JobSpec` key) **attach** to the pending
execution instead of spawning another run, so N identical requests cost
one worker slot and complete together with byte-identical results.

States::

    queued ──> running ──> done
       │          │   └──> failed
       │          ├──────> timeout
       └──────────┴──────> cancelled

``done``/``failed``/``timeout``/``cancelled`` are terminal.  Cancelling
one attached job detaches it immediately; the underlying execution is
only cancelled once *every* attached job has been cancelled, so one
impatient client can never kill a coalesced neighbour's run.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.serve.jobspec import JobSpec

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TIMEOUT = "timeout"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, TIMEOUT})


@dataclass
class Job:
    """One accepted submission."""

    id: str
    key: str
    priority: int
    timeout: float
    #: True when this submission attached to an already-pending execution.
    coalesced: bool = False
    #: True when the result came straight from the completed-result LRU.
    cached: bool = False
    state: str = QUEUED
    #: Progress events in arrival order (state changes + optimizer rounds).
    events: list = field(default_factory=list)
    #: Canonical result JSON text once ``done`` (byte-stable).
    result_json: Optional[str] = None
    #: Structured error once ``failed``/``timeout``/``cancelled``.
    error: Optional[dict] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Woken on every appended event (single-loop use only).
    new_event: asyncio.Event = field(default_factory=asyncio.Event)
    #: Set exactly once, when the job reaches a terminal state.
    done_event: asyncio.Event = field(default_factory=asyncio.Event)
    #: The execution this job is attached to (``None`` once it was served
    #: straight from the cache).
    execution: Optional["Execution"] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def add_event(self, event: dict) -> None:
        self.events.append(event)
        self.new_event.set()

    def set_state(self, state: str, clock: float) -> None:
        """Advance the state machine, logging the transition as an event."""
        self.state = state
        if state == RUNNING:
            self.started_at = clock
        elif state in TERMINAL_STATES:
            self.finished_at = clock
        self.add_event({"type": "state", "status": state})
        if state in TERMINAL_STATES:
            self.done_event.set()


@dataclass
class Execution:
    """One optimizer run; the unit the queue and worker pool deal in."""

    spec: JobSpec
    jobs: list[Job] = field(default_factory=list)
    #: Signals a *running* worker attempt to stop (checked between pipe
    #: polls on the parent side; the child process is terminated).
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: Deadline input: seconds granted to the run (primary job's budget).
    timeout: float = 300.0
    #: Worker attempts consumed (crash retries increment this).
    attempts: int = 0
    running: bool = False

    @property
    def key(self) -> str:
        return self.spec.key

    def live_jobs(self) -> list[Job]:
        return [job for job in self.jobs if not job.terminal]

    @property
    def abandoned(self) -> bool:
        """True when every attached job is already terminal (all
        cancelled): the run has no audience left."""
        return not self.live_jobs()
