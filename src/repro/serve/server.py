"""The long-running optimization service behind ``powder serve``.

One asyncio event loop owns all bookkeeping (jobs, queue, cache,
metrics); optimizer work happens in forked worker processes driven from
a bounded thread pool, so the loop stays responsive no matter what a job
does.  The moving parts:

- **Submission** (``POST /jobs``): the payload is canonicalized off-loop
  (:mod:`repro.serve.jobspec`), then either served from the completed-
  result LRU (``cached: true``), attached to an in-flight execution with
  the same key (``coalesced: true``), or enqueued as a new execution on
  the priority queue.  A full queue answers 429, a draining server 503 —
  backpressure is explicit, never a hang.
- **Worker pool**: ``workers`` consumer tasks pull executions in
  (priority, arrival) order and run them via
  :func:`repro.serve.worker.run_attempt` — one ``fork`` process per
  attempt with a monotonic deadline, a cancellation flag, and a bounded
  crash-retry budget.
- **Progress** (``GET /jobs/<id>/events``): per-round PR-4 telemetry
  events stream as NDJSON the moment the worker reports them, ending
  with the terminal state event.
- **Observability** (``GET /metrics``): queue depth, per-state job
  tallies, cache hit rate, and per-phase latencies, built on the
  :class:`repro.telemetry.Metrics` registry.
- **Lint-as-a-service** (``POST /lint``): the PR-2 rule registry over a
  submitted BLIF, structured findings back.
- **Graceful shutdown** (``POST /shutdown``, SIGINT/SIGTERM): stop
  accepting, drain every accepted job to a terminal state, then close.

Nothing a client sends can kill a worker slot: malformed requests are
rejected before queueing with structured 4xx bodies, deterministic
optimizer failures are reported as job errors, and worker crashes are
retried within budget, then surfaced as structured failures.
"""

from __future__ import annotations

import asyncio
import functools
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import LintError, ReproError, ServeError
from repro.serve.cache import ResultCache
from repro.serve.http import (
    HttpError,
    Request,
    error_body,
    read_request,
    response_bytes,
    stream_header_bytes,
)
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TIMEOUT,
    Execution,
    Job,
)
from repro.serve.jobspec import canonicalize_job, server_library
from repro.serve.stats import LatencyWindow
from repro.serve.worker import run_attempt
from repro.telemetry import Metrics
from repro.telemetry.trace import deterministic_json


@dataclass
class ServerConfig:
    """Tunables of one :class:`PowderServer` instance."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``server.port``).
    port: int = 0
    #: Concurrent worker processes (and the queue-consumer task count).
    workers: int = 2
    #: Completed-result LRU capacity (entries).
    cache_entries: int = 256
    #: Hard cap on request bodies; beyond it the service answers 413.
    max_request_bytes: int = 8 * 1024 * 1024
    #: Job timeout when the submission does not name one (seconds).
    default_timeout: float = 300.0
    #: Upper clamp on client-requested timeouts (seconds).
    max_timeout: float = 3600.0
    #: Queue-depth bound; submissions beyond it answer 429.
    max_queue: int = 1024
    #: Worker re-runs granted after a crash (not after deterministic
    #: errors, timeouts, or cancellations).
    max_retries: int = 1
    #: Parent-side pipe poll interval (cancellation/timeout latency).
    poll_interval: float = 0.05
    #: Terminal jobs retained for polling before the oldest are pruned.
    max_jobs_retained: int = 10000
    #: Whether ``POST /shutdown`` is honoured (the CLI keeps it on; flip
    #: off for deployments where only signals may stop the service).
    allow_remote_shutdown: bool = True
    #: Optional sink for one-line request/lifecycle logs.
    log: Optional[Callable[[str], None]] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.default_timeout <= 0 or self.max_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


class PowderServer:
    """The asyncio HTTP service; create, ``await start()``, serve."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self.metrics = Metrics()
        self.cache = ResultCache(self.config.cache_entries)
        self.jobs: dict[str, Job] = {}
        #: Pending (queued or running) executions by canonical job key —
        #: the coalescing targets.  Entries leave on completion, so later
        #: duplicates hit the LRU instead.
        self._executions: dict[str, Execution] = {}
        self.queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = 0
        self._job_seq = 0
        self._accepting = True
        self._shutting_down = False
        self._shutdown_done = asyncio.Event()
        self._shutdown_task: Optional[asyncio.Task] = None
        self._worker_tasks: list[asyncio.Task] = []
        self._running_count = 0
        self._latencies = LatencyWindow()
        self._worker_pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="powder-serve-worker",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the queue consumers."""
        # Warm the library once in-process so neither request handling
        # nor forked workers pay the genlib parse.
        server_library()
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=64 * 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        for index in range(self.config.workers):
            self._worker_tasks.append(
                asyncio.create_task(
                    self._worker_loop(), name=f"powder-worker-{index}"
                )
            )
        self._log(
            f"listening on http://{self.config.host}:{self.port} "
            f"({self.config.workers} workers, "
            f"cache {self.config.cache_entries} entries)"
        )

    async def run(self, install_signal_handlers: bool = False) -> None:
        """Start and serve until a shutdown completes."""
        await self.start()
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except NotImplementedError:  # pragma: no cover — non-unix
                    pass
        await self._shutdown_done.wait()

    def request_shutdown(self, drain: bool = True) -> None:
        """Schedule a graceful shutdown (idempotent; loop-thread only)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown(drain=drain)
            )

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, settle every accepted job, close the socket.

        With ``drain`` (the default) queued and running executions run to
        completion — an accepted job is never lost.  Without it, pending
        work is cancelled to a terminal ``cancelled`` state instead; it
        still is never silently dropped.
        """
        if self._shutting_down:
            await self._shutdown_done.wait()
            return
        self._shutting_down = True
        self._accepting = False
        self._log(
            f"shutdown requested (drain={drain}): "
            f"{self.queue.qsize()} queued, {self._running_count} running"
        )
        if not drain:
            now = time.monotonic()
            # Walk jobs, not the coalescing map: use_cache=False runs are
            # deliberately absent from it but must still be cancelled.
            for job in list(self.jobs.values()):
                if job.terminal:
                    continue
                if job.execution is not None:
                    job.execution.cancel_event.set()
                job.error = {
                    "code": "shutdown",
                    "message": "server shut down before the job ran",
                }
                job.set_state(CANCELLED, now)
                self.metrics.increment("jobs_cancelled")
        await self.queue.join()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._worker_pool.shutdown(wait=True)
        self._log("shutdown complete")
        self._shutdown_done.set()

    async def wait_closed(self) -> None:
        await self._shutdown_done.wait()

    def _log(self, message: str) -> None:
        if self.config.log is not None:
            self.config.log(f"[powder-serve] {message}")

    # ------------------------------------------------------------------
    # Queue consumers
    # ------------------------------------------------------------------
    async def _worker_loop(self) -> None:
        while True:
            _priority, _seq, execution = await self.queue.get()
            try:
                if execution.abandoned:
                    # Every attached job was cancelled while queued.
                    if self._executions.get(execution.key) is execution:
                        del self._executions[execution.key]
                    continue
                await self._run_execution(execution)
            except Exception as error:  # pragma: no cover — last resort
                self._log(f"internal scheduler error: {error!r}")
                self._fail_execution_jobs(execution, {
                    "code": "internal",
                    "message": f"scheduler failure: {error}",
                })
            finally:
                self.queue.task_done()

    async def _run_execution(self, execution: Execution) -> None:
        loop = asyncio.get_running_loop()
        now = time.monotonic()
        execution.running = True
        self._running_count += 1
        for job in execution.live_jobs():
            self.metrics.timer("phase.queue_wait").add(now - job.submitted_at)
            job.set_state(RUNNING, now)

        def publish(event: dict) -> None:
            loop.call_soon_threadsafe(self._publish_event, execution, event)

        start = time.monotonic()
        deadline = start + execution.timeout
        try:
            while True:
                execution.attempts += 1
                outcome = await loop.run_in_executor(
                    self._worker_pool,
                    functools.partial(
                        run_attempt,
                        execution.spec,
                        deadline=deadline,
                        cancel_event=execution.cancel_event,
                        publish=publish,
                        poll_interval=self.config.poll_interval,
                    ),
                )
                if (
                    outcome.status == "crashed"
                    and execution.attempts <= self.config.max_retries
                    and not execution.cancel_event.is_set()
                ):
                    self.metrics.increment("worker_retries")
                    self._log(
                        f"worker crash on {execution.key[:12]} "
                        f"(attempt {execution.attempts}); retrying"
                    )
                    continue
                break
        finally:
            execution.running = False
            self._running_count -= 1
        self.metrics.timer("phase.run").add(time.monotonic() - start)
        self._finish_execution(execution, outcome)

    def _publish_event(self, execution: Execution, event: dict) -> None:
        self.metrics.increment("progress_events")
        for job in execution.live_jobs():
            job.add_event(event)

    def _finish_execution(self, execution: Execution, outcome) -> None:
        now = time.monotonic()
        if self._executions.get(execution.key) is execution:
            del self._executions[execution.key]
        if outcome.status == "result":
            text = deterministic_json(outcome.payload)
            self.cache.put(execution.key, text)
            for job in execution.live_jobs():
                job.result_json = text
                job.set_state(DONE, now)
                self.metrics.increment("jobs_completed")
                total = now - job.submitted_at
                self.metrics.timer("phase.total").add(total)
                self._latencies.record(total)
        elif outcome.status == "timeout":
            for job in execution.live_jobs():
                job.error = {
                    "code": "timeout",
                    "message": (
                        f"job exceeded its {execution.timeout:.1f}s budget"
                    ),
                }
                job.set_state(TIMEOUT, now)
                self.metrics.increment("jobs_timeout")
        elif outcome.status == "cancelled":
            for job in execution.live_jobs():
                job.error = {"code": "cancelled",
                             "message": "cancelled by client"}
                job.set_state(CANCELLED, now)
                self.metrics.increment("jobs_cancelled")
        else:  # "error" (deterministic) or "crashed" (budget exhausted)
            if outcome.status == "crashed":
                self.metrics.increment("worker_crashes")
            self._fail_execution_jobs(execution, outcome.error)

    def _fail_execution_jobs(self, execution: Execution,
                             error: Optional[dict]) -> None:
        now = time.monotonic()
        for job in execution.live_jobs():
            job.error = error or {"code": "internal", "message": "unknown"}
            job.set_state(FAILED, now)
            self.metrics.increment("jobs_failed")

    # ------------------------------------------------------------------
    # Job bookkeeping
    # ------------------------------------------------------------------
    def _new_job(self, key: str, priority: int, timeout: float,
                 cached: bool = False, coalesced: bool = False) -> Job:
        self._job_seq += 1
        job = Job(
            id=f"j{self._job_seq}",
            key=key,
            priority=priority,
            timeout=timeout,
            cached=cached,
            coalesced=coalesced,
            submitted_at=time.monotonic(),
        )
        job.add_event({"type": "state", "status": QUEUED})
        self.jobs[job.id] = job
        self.metrics.increment("jobs_submitted")
        self._prune_jobs()
        return job

    def _prune_jobs(self) -> None:
        overflow = len(self.jobs) - self.config.max_jobs_retained
        if overflow <= 0:
            return
        for job_id in [
            job_id for job_id, job in self.jobs.items() if job.terminal
        ][:overflow]:
            del self.jobs[job_id]

    def _job_view(self, job: Job, include_result: bool = True) -> dict:
        view: dict = {
            "job_id": job.id,
            "status": job.state,
            "cached": job.cached,
            "coalesced": job.coalesced,
            "priority": job.priority,
            "key": job.key,
            "events": len(job.events),
        }
        if job.error is not None:
            view["error"] = job.error
        if include_result and job.result_json is not None:
            view["result"] = json.loads(job.result_json)
        return view

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        status = 500
        path = "-"
        start = time.monotonic()
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader, self.config.max_request_bytes),
                    timeout=30.0,
                )
            except asyncio.TimeoutError:
                raise HttpError("timed out reading the request",
                                code="request-timeout", status=408)
            if request is None:
                return
            path = f"{request.method} {request.path}"
            self.metrics.increment("http_requests")
            handled = await self._dispatch(request, writer)
            if handled is None:  # the handler streamed its own response
                status = 200
                return
            status, body, content_type = handled
            if 400 <= status < 500:
                self.metrics.increment("http_4xx")
            elif status >= 500:
                self.metrics.increment("http_5xx")
            writer.write(response_bytes(status, body, content_type))
            await writer.drain()
        except ServeError as error:
            status = error.status
            self.metrics.increment(
                "http_4xx" if status < 500 else "http_5xx"
            )
            try:
                writer.write(response_bytes(
                    status, error_body(error.code, str(error))
                ))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError):
            status = 0  # client went away mid-response
        except Exception as error:  # noqa: BLE001 — survive anything
            status = 500
            self.metrics.increment("http_5xx")
            self._log(f"internal error on {path}: {error!r}")
            try:
                writer.write(response_bytes(500, error_body(
                    "internal", f"{type(error).__name__}: {error}"
                )))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            elapsed_ms = (time.monotonic() - start) * 1e3
            if path != "-":
                self._log(f"{path} -> {status} ({elapsed_ms:.1f} ms)")
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request, writer):
        """Route one request; ``None`` means the handler streamed."""
        method, path = request.method, request.path
        if path == "/healthz":
            self._expect(method, "GET")
            return 200, deterministic_json({
                "status": "ok",
                "accepting": self._accepting,
            }).encode(), "application/json"
        if path == "/metrics":
            self._expect(method, "GET")
            return 200, deterministic_json(
                self._metrics_view()
            ).encode(), "application/json"
        if path == "/jobs":
            if method == "POST":
                return await self._handle_submit(request)
            self._expect(method, "GET")
            views = [
                self._job_view(job, include_result=False)
                for job in self.jobs.values()
            ]
            state = request.query.get("state")
            if state:
                views = [view for view in views if view["status"] == state]
            return 200, deterministic_json(
                {"jobs": views}
            ).encode(), "application/json"
        if path.startswith("/jobs/"):
            parts = path[len("/jobs/"):].split("/")
            job = self.jobs.get(parts[0])
            if job is None:
                raise HttpError(f"no such job {parts[0]!r}",
                                code="not-found", status=404)
            if len(parts) == 1:
                if method == "DELETE":
                    return self._handle_cancel(job)
                self._expect(method, "GET")
                return 200, deterministic_json(
                    self._job_view(job)
                ).encode(), "application/json"
            if len(parts) == 2 and parts[1] == "result":
                self._expect(method, "GET")
                if job.result_json is None:
                    raise HttpError(
                        f"job {job.id} is {job.state}, not done",
                        code="not-done", status=409,
                    )
                return 200, job.result_json.encode(), "application/json"
            if len(parts) == 2 and parts[1] == "events":
                self._expect(method, "GET")
                await self._stream_events(job, writer)
                return None
            raise HttpError(f"unknown job endpoint {path!r}",
                            code="not-found", status=404)
        if path == "/lint":
            self._expect(method, "POST")
            return await self._handle_lint(request)
        if path == "/shutdown":
            self._expect(method, "POST")
            if not self.config.allow_remote_shutdown:
                raise HttpError("remote shutdown is disabled",
                                code="forbidden", status=405)
            drain = True
            if request.body:
                drain = bool(request.json().get("drain", True))
            self.request_shutdown(drain=drain)
            return 202, deterministic_json({
                "status": "draining" if drain else "stopping",
            }).encode(), "application/json"
        raise HttpError(f"no such endpoint {path!r}",
                        code="not-found", status=404)

    @staticmethod
    def _expect(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(f"use {expected} on this endpoint",
                            code="method-not-allowed", status=405)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_submit(self, request: Request):
        payload = request.json()
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise HttpError("'priority' must be an integer",
                            code="bad-request", status=400)
        timeout = payload.get("timeout", self.config.default_timeout)
        if isinstance(timeout, bool) or not isinstance(
            timeout, (int, float)
        ) or timeout <= 0:
            raise HttpError("'timeout' must be a positive number of seconds",
                            code="bad-request", status=400)
        timeout = min(float(timeout), self.config.max_timeout)
        use_cache = payload.get("use_cache", True)
        if not isinstance(use_cache, bool):
            raise HttpError("'use_cache' must be a boolean",
                            code="bad-request", status=400)

        loop = asyncio.get_running_loop()
        # Canonicalization parses the BLIF — keep it off the event loop.
        spec = await loop.run_in_executor(
            None, canonicalize_job, payload
        )

        if use_cache:
            cached_text = self.cache.get(spec.key)
            if cached_text is not None:
                job = self._new_job(spec.key, priority, timeout, cached=True)
                job.result_json = cached_text
                job.set_state(DONE, time.monotonic())
                self.metrics.increment("jobs_completed")
                return 200, deterministic_json(
                    self._submit_view(job)
                ).encode(), "application/json"
            execution = self._executions.get(spec.key)
            if execution is not None and not execution.abandoned:
                job = self._new_job(
                    spec.key, priority, timeout, coalesced=True
                )
                job.execution = execution
                execution.jobs.append(job)
                if execution.running:
                    job.set_state(RUNNING, time.monotonic())
                self.metrics.increment("jobs_coalesced")
                return 202, deterministic_json(
                    self._submit_view(job)
                ).encode(), "application/json"

        if not self._accepting:
            raise HttpError("server is draining; not accepting jobs",
                            code="shutting-down", status=503)
        if self.queue.qsize() >= self.config.max_queue:
            self.metrics.increment("rejected_backpressure")
            raise HttpError(
                f"job queue is full ({self.config.max_queue} pending)",
                code="queue-full", status=429,
            )
        job = self._new_job(spec.key, priority, timeout)
        execution = Execution(spec=spec, jobs=[job], timeout=timeout)
        job.execution = execution
        # First submission of a key becomes the coalescing target; a
        # use_cache=False duplicate runs privately and must not steal it.
        if spec.key not in self._executions:
            self._executions[spec.key] = execution
        self._seq += 1
        self.queue.put_nowait((-priority, self._seq, execution))
        return 202, deterministic_json(
            self._submit_view(job)
        ).encode(), "application/json"

    def _submit_view(self, job: Job) -> dict:
        return {
            "job_id": job.id,
            "status": job.state,
            "cached": job.cached,
            "coalesced": job.coalesced,
            "key": job.key,
        }

    def _handle_cancel(self, job: Job):
        if not job.terminal:
            job.error = {"code": "cancelled",
                         "message": "cancelled by client"}
            job.set_state(CANCELLED, time.monotonic())
            self.metrics.increment("jobs_cancelled")
            execution = job.execution
            if execution is not None and execution.abandoned:
                # Last attached job gone: stop the run (or let the queue
                # consumer skip it if it has not started yet).
                execution.cancel_event.set()
                if self._executions.get(execution.key) is execution \
                        and not execution.running:
                    del self._executions[execution.key]
        return 200, deterministic_json(
            self._job_view(job)
        ).encode(), "application/json"

    async def _handle_lint(self, request: Request):
        payload = request.json()
        blif = payload.get("blif")
        if not isinstance(blif, str) or not blif.strip():
            raise HttpError("'blif' must be a non-empty string",
                            code="bad-blif", status=400)
        for key in ("select", "ignore"):
            value = payload.get(key)
            if value is not None and (
                not isinstance(value, list)
                or not all(isinstance(item, str) for item in value)
            ):
                raise HttpError(f"'{key}' must be a list of rule IDs",
                                code="bad-request", status=400)
        patterns = payload.get("patterns", 1024)
        if isinstance(patterns, bool) or not isinstance(patterns, int) \
                or patterns < 0:
            raise HttpError("'patterns' must be a non-negative integer",
                            code="bad-request", status=400)

        def run_lint() -> dict:
            from repro.lint import lint_netlist
            from repro.netlist.blif import parse_blif

            try:
                netlist = parse_blif(blif, server_library())
            except ReproError as error:
                raise ServeError(f"invalid BLIF: {error}",
                                 code="bad-blif", status=400) from error
            probabilities = None
            if patterns:
                from repro.power.probability import SimulationProbability

                engine = SimulationProbability(
                    netlist, num_patterns=max(64, patterns), seed=3
                )
                probabilities = {
                    name: engine.probability(name)
                    for name in netlist.gates
                }
            try:
                report = lint_netlist(
                    netlist,
                    select=payload.get("select"),
                    ignore=payload.get("ignore"),
                    probabilities=probabilities,
                )
            except LintError as error:
                raise ServeError(str(error), code="bad-rules",
                                 status=400) from error
            worst = report.worst()
            return {
                "netlist": report.netlist_name,
                "worst": str(worst) if worst is not None else None,
                "counts": report.counts(),
                "diagnostics": [d.to_dict() for d in report.diagnostics],
            }

        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(None, run_lint)
        except ServeError as error:
            raise HttpError(str(error), code=error.code,
                            status=error.status) from error
        self.metrics.increment("lint_requests")
        return 200, deterministic_json(result).encode(), "application/json"

    async def _stream_events(self, job: Job, writer) -> None:
        """NDJSON progress feed: replay, then live until terminal."""
        self.metrics.increment("event_streams")
        writer.write(stream_header_bytes(200))
        index = 0
        while True:
            while index < len(job.events):
                line = json.dumps(job.events[index], sort_keys=True) + "\n"
                writer.write(line.encode("utf-8"))
                index += 1
            await writer.drain()
            if job.terminal and index >= len(job.events):
                return
            job.new_event.clear()
            try:
                await asyncio.wait_for(job.new_event.wait(), timeout=15.0)
            except asyncio.TimeoutError:
                # Heartbeat: keeps the pipe warm and detects dead peers.
                writer.write(b'{"type":"ping"}\n')
                await writer.drain()

    # ------------------------------------------------------------------
    def _metrics_view(self) -> dict:
        by_state: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "accepting": self._accepting,
            "queue_depth": self.queue.qsize(),
            "running": self._running_count,
            "workers": self.config.workers,
            "jobs": {"tracked": len(self.jobs), "by_state": by_state},
            "cache": self.cache.stats(),
            "counters": self.metrics.counters(),
            "timers": self.metrics.timers(),
            "latency": self._latencies.summary(),
        }
