"""A small blocking HTTP client for the optimization service.

Stdlib-only (``http.client``); one connection per request except the
events feed, which holds its connection open and yields NDJSON progress
events as the server emits them.  This is what the integration tests,
the load generator, and ``benchmarks/bench_serve.py`` drive; it is also
a reasonable starting point for real clients.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, Optional

from repro.errors import ServeError


class ServeClientError(ServeError):
    """A non-2xx response, carrying the structured error body."""

    def __init__(self, status: int, payload: dict):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        code = error.get("code", "error")
        message = error.get("message", f"HTTP {status}")
        super().__init__(message, code=code, status=status)
        self.payload = payload


class ServeClient:
    """Talk to one ``powder serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            return response.status, data
        finally:
            connection.close()

    def _json(self, method: str, path: str,
              body: Optional[dict] = None) -> dict:
        status, data = self._request(method, path, body)
        try:
            payload = json.loads(data) if data else {}
        except json.JSONDecodeError:
            payload = {"error": {"code": "bad-response",
                                 "message": data[:200].decode("latin-1")}}
        if status >= 400:
            raise ServeClientError(status, payload)
        return payload

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> dict:
        return self._json("GET", "/metrics")

    def submit(self, blif: str, spec: Optional[str] = None,
               options: Optional[dict] = None, priority: int = 0,
               timeout: Optional[float] = None,
               use_cache: bool = True) -> dict:
        """Submit one optimization job; the acceptance view back."""
        payload: dict = {"blif": blif, "use_cache": use_cache}
        if spec is not None:
            payload["spec"] = spec
        if options is not None:
            payload["options"] = options
        if priority:
            payload["priority"] = priority
        if timeout is not None:
            payload["timeout"] = timeout
        return self._json("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None) -> list[dict]:
        path = "/jobs" + (f"?state={state}" if state else "")
        return self._json("GET", path)["jobs"]

    def result_bytes(self, job_id: str) -> bytes:
        """The canonical result JSON exactly as the server stores it."""
        status, data = self._request("GET", f"/jobs/{job_id}/result")
        if status >= 400:
            raise ServeClientError(
                status, json.loads(data) if data else {}
            )
        return data

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job is terminal; its final view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["status"] in ("done", "failed", "cancelled", "timeout"):
                return view
            if time.monotonic() >= deadline:
                raise ServeClientError(408, {"error": {
                    "code": "client-timeout",
                    "message": (
                        f"job {job_id} still {view['status']} after "
                        f"{timeout:.1f}s"
                    ),
                }})
            time.sleep(poll)

    def events(self, job_id: str,
               include_pings: bool = False) -> Iterator[dict]:
        """Stream progress events until the job's terminal state event."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status >= 400:
                data = response.read()
                raise ServeClientError(
                    response.status, json.loads(data) if data else {}
                )
            while True:
                line = response.readline()
                if not line:
                    return
                event = json.loads(line)
                if event.get("type") == "ping" and not include_pings:
                    continue
                yield event
        finally:
            connection.close()

    def lint(self, blif: str, select: Optional[list] = None,
             ignore: Optional[list] = None, patterns: int = 1024) -> dict:
        payload: dict = {"blif": blif, "patterns": patterns}
        if select is not None:
            payload["select"] = select
        if ignore is not None:
            payload["ignore"] = ignore
        return self._json("POST", "/lint", payload)

    def shutdown(self, drain: bool = True) -> dict:
        return self._json("POST", "/shutdown", {"drain": drain})

    # ------------------------------------------------------------------
    def run(self, blif: str, spec: Optional[str] = None,
            options: Optional[dict] = None, timeout: float = 120.0) -> dict:
        """Submit and wait; the completed job view (raises on failure)."""
        accepted = self.submit(blif, spec=spec, options=options)
        view = self.wait(accepted["job_id"], timeout=timeout)
        if view["status"] != "done":
            raise ServeClientError(500, {"error": view.get("error", {
                "code": view["status"],
                "message": f"job finished {view['status']}",
            })})
        return view
