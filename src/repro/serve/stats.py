"""Small latency statistics shared by ``/metrics`` and the load generator."""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending-sorted sequence.

    Nearest-rank with linear interpolation; 0.0 for an empty sequence so
    callers can report "no data yet" without branching.
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return float(
        sorted_values[lower] * (1.0 - fraction)
        + sorted_values[upper] * fraction
    )


def latency_summary(values: Iterable[float]) -> dict:
    """count/mean/p50/p95/p99/max over a collection of seconds."""
    data = sorted(float(v) for v in values)
    if not data:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0}
    return {
        "count": len(data),
        "mean": sum(data) / len(data),
        "p50": percentile(data, 0.50),
        "p95": percentile(data, 0.95),
        "p99": percentile(data, 0.99),
        "max": data[-1],
    }


class LatencyWindow:
    """A bounded window of recent durations for live percentile reporting."""

    def __init__(self, maxlen: int = 1024):
        self._values: deque = deque(maxlen=maxlen)

    def record(self, seconds: float) -> None:
        self._values.append(float(seconds))

    def summary(self) -> dict:
        return latency_summary(self._values)

    def __len__(self) -> int:
        return len(self._values)
