"""Load generation against a running ``powder serve`` instance.

Drives a seeded mix of optimization jobs — a bounded pool of distinct
generated circuits (:mod:`repro.fuzz` generator), so a configurable
fraction of submissions are exact duplicates that exercise the dedup
cache and in-flight coalescing — in one of two standard modes:

- **closed loop**: ``clients`` workers, each submit → wait → repeat;
  concurrency is fixed, arrival rate adapts to service speed,
- **open loop**: submissions arrive on a fixed Poisson-free schedule of
  ``rate`` jobs/second regardless of completions; a waiter pool collects
  results.  This is the mode that shows queueing behaviour under
  overload.

The :class:`LoadGenReport` carries everything ``benchmarks/BENCH_serve.json``
publishes: throughput, p50/p95/p99 end-to-end latency (overall and split
cold vs cache-hit), cache hit rate, per-status tallies, and the server's
own ``/metrics`` snapshot.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ServeError
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.stats import latency_summary

_MIX_SHAPES = ("random", "reconvergent", "high_fanout", "inverter_chain")


@dataclass
class LoadGenConfig:
    """One load-generation campaign."""

    host: str = "127.0.0.1"
    port: int = 8787
    #: ``closed`` (fixed concurrency) or ``open`` (fixed arrival rate).
    mode: str = "closed"
    #: Concurrent client workers (closed loop) / result waiters (open).
    clients: int = 4
    #: Open loop: target arrival rate, jobs per second.
    rate: float = 4.0
    #: Campaign length in seconds (submission window; waits run longer).
    duration: float = 10.0
    seed: int = 0
    #: Distinct circuits in the mix; submissions draw uniformly from the
    #: pool, so smaller pools mean more duplicate submissions.
    unique_circuits: int = 6
    min_inputs: int = 4
    max_inputs: int = 6
    min_gates: int = 8
    max_gates: int = 16
    #: Optimizer knobs for every job (kept small: service-latency tests
    #: measure the service, not the optimizer).
    patterns: int = 64
    repeat: int = 5
    max_rounds: int = 3
    #: Optional pipeline spec submitted with every job.
    spec: Optional[str] = None
    #: Per-job server-side timeout.
    job_timeout: float = 120.0
    #: Client-side wait budget per job.
    wait_timeout: float = 180.0

    def __post_init__(self):
        if self.mode not in ("closed", "open"):
            raise ServeError(f"unknown load mode {self.mode!r}",
                             code="bad-config", status=400)
        if self.clients < 1 or self.unique_circuits < 1:
            raise ServeError("clients and unique_circuits must be >= 1",
                             code="bad-config", status=400)
        if self.duration <= 0 or self.rate <= 0:
            raise ServeError("duration and rate must be positive",
                             code="bad-config", status=400)


@dataclass
class RequestRecord:
    """One submission's fate, as the client saw it."""

    ok: bool
    status: str  # terminal job state, or "http-error"/"client-timeout"
    latency: float
    cached: bool = False
    coalesced: bool = False
    http_status: Optional[int] = None


@dataclass
class LoadGenReport:
    """Aggregated campaign outcome."""

    config: dict
    submitted: int
    completed: int
    failed: int
    cancelled: int
    timeouts: int
    http_errors: int
    server_5xx: int
    cache_hits: int
    coalesced: int
    elapsed_seconds: float
    throughput_jobs_per_sec: float
    latency: dict
    latency_cold: dict
    latency_cached: dict
    server_metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "timeouts": self.timeouts,
            "http_errors": self.http_errors,
            "server_5xx": self.server_5xx,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "cache_hit_rate": (
                self.cache_hits / self.submitted if self.submitted else 0.0
            ),
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_jobs_per_sec": self.throughput_jobs_per_sec,
            "latency": self.latency,
            "latency_cold": self.latency_cold,
            "latency_cached": self.latency_cached,
            "server_metrics": self.server_metrics,
        }

    def ok(self, require_cache_hits: bool = False,
           max_5xx: int = 0) -> bool:
        """The CI gate: everything submitted settled cleanly."""
        if self.server_5xx > max_5xx:
            return False
        if self.failed or self.timeouts or self.http_errors:
            return False
        if require_cache_hits and self.cache_hits == 0:
            return False
        return self.completed == self.submitted


def build_circuit_pool(config: LoadGenConfig) -> list[str]:
    """The seeded BLIF texts submissions draw from (deterministic)."""
    from repro.fuzz.generator import GeneratorConfig, random_mapped_netlist
    from repro.netlist.blif import write_blif

    pool = []
    for index in range(config.unique_circuits):
        generated = random_mapped_netlist(GeneratorConfig(
            seed=config.seed * 1009 + index,
            shape=_MIX_SHAPES[index % len(_MIX_SHAPES)],
            min_inputs=config.min_inputs,
            max_inputs=config.max_inputs,
            min_gates=config.min_gates,
            max_gates=config.max_gates,
        ))
        pool.append(write_blif(generated))
    return pool


def _job_options(config: LoadGenConfig) -> dict:
    return {
        "num_patterns": config.patterns,
        "repeat": config.repeat,
        "max_rounds": config.max_rounds,
    }


def _run_one(client: ServeClient, blif: str, config: LoadGenConfig,
             records: list, lock: threading.Lock) -> None:
    start = time.monotonic()
    try:
        accepted = client.submit(
            blif,
            spec=config.spec,
            options=_job_options(config),
            timeout=config.job_timeout,
        )
        view = (
            accepted
            if accepted["status"] == "done"
            else client.wait(
                accepted["job_id"], timeout=config.wait_timeout
            )
        )
        record = RequestRecord(
            ok=view["status"] == "done",
            status=view["status"],
            latency=time.monotonic() - start,
            cached=bool(accepted.get("cached")),
            coalesced=bool(accepted.get("coalesced")),
        )
    except ServeClientError as error:
        record = RequestRecord(
            ok=False,
            status=(
                "client-timeout" if error.code == "client-timeout"
                else "http-error"
            ),
            latency=time.monotonic() - start,
            http_status=error.status,
        )
    except OSError:
        record = RequestRecord(
            ok=False, status="http-error",
            latency=time.monotonic() - start, http_status=None,
        )
    with lock:
        records.append(record)


def run_load(config: LoadGenConfig) -> LoadGenReport:
    """Run one campaign against a live server; the aggregated report."""
    pool = build_circuit_pool(config)
    records: list[RequestRecord] = []
    lock = threading.Lock()
    client = ServeClient(config.host, config.port,
                         timeout=max(30.0, config.wait_timeout))
    client.health()  # fail fast when nothing is listening

    start = time.monotonic()
    deadline = start + config.duration
    if config.mode == "closed":
        def closed_loop(worker_index: int) -> None:
            rng = random.Random(config.seed * 7919 + worker_index)
            worker_client = ServeClient(
                config.host, config.port,
                timeout=max(30.0, config.wait_timeout),
            )
            while time.monotonic() < deadline:
                blif = pool[rng.randrange(len(pool))]
                _run_one(worker_client, blif, config, records, lock)

        threads = [
            threading.Thread(target=closed_loop, args=(index,), daemon=True)
            for index in range(config.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:  # open loop: fixed arrival schedule, pooled waiters
        import queue as queue_module

        pending: "queue_module.Queue" = queue_module.Queue()
        done = threading.Event()

        def waiter() -> None:
            while True:
                item = pending.get()
                if item is None:
                    return
                _run_one(client, item, config, records, lock)

        waiters = [
            threading.Thread(target=waiter, daemon=True)
            for _ in range(config.clients)
        ]
        for thread in waiters:
            thread.start()
        rng = random.Random(config.seed * 7919)
        interval = 1.0 / config.rate
        next_arrival = start
        while next_arrival < deadline:
            delay = next_arrival - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            pending.put(pool[rng.randrange(len(pool))])
            next_arrival += interval
        for _ in waiters:
            pending.put(None)
        for thread in waiters:
            thread.join()
        done.set()
    elapsed = time.monotonic() - start

    completed = sum(1 for r in records if r.status == "done")
    latencies = [r.latency for r in records if r.ok]
    cold = [
        r.latency for r in records
        if r.ok and not r.cached and not r.coalesced
    ]
    warm = [r.latency for r in records if r.ok and r.cached]
    try:
        server_metrics = client.metrics()
    except (ServeClientError, OSError):
        server_metrics = {}
    return LoadGenReport(
        config={
            key: value for key, value in vars(config).items()
            if not key.startswith("_")
        },
        submitted=len(records),
        completed=completed,
        failed=sum(1 for r in records if r.status == "failed"),
        cancelled=sum(1 for r in records if r.status == "cancelled"),
        timeouts=sum(
            1 for r in records
            if r.status in ("timeout", "client-timeout")
        ),
        http_errors=sum(1 for r in records if r.status == "http-error"),
        server_5xx=sum(
            1 for r in records
            if r.http_status is not None and r.http_status >= 500
        ),
        cache_hits=sum(1 for r in records if r.cached),
        coalesced=sum(1 for r in records if r.coalesced),
        elapsed_seconds=elapsed,
        throughput_jobs_per_sec=completed / elapsed if elapsed else 0.0,
        latency=latency_summary(latencies),
        latency_cold=latency_summary(cold),
        latency_cached=latency_summary(warm),
        server_metrics=server_metrics,
    )
