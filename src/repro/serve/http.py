"""Minimal HTTP/1.1 request/response primitives on asyncio streams.

The service speaks a deliberately small slice of HTTP: one request per
connection (``Connection: close``), bodies delimited by ``Content-Length``,
responses either fully buffered or close-delimited streams (the NDJSON
progress feed).  Keeping the parser here — a hundred lines of stdlib code —
is what lets ``powder serve`` run with zero dependencies beyond ``asyncio``.

Request hygiene is enforced at this layer so handler code never sees a
malformed message: oversized request lines, header blocks, or bodies are
rejected with the proper 4xx before a byte of BLIF is parsed, and every
error travels as a structured JSON body ``{"error": {"code", "message"}}``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ServeError

#: Hard caps on the request envelope (the body cap is configurable on the
#: server; these two protect the parser itself).
MAX_REQUEST_LINE_BYTES = 8192
MAX_HEADER_COUNT = 64

STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ServeError):
    """A request the HTTP layer or a handler refuses, with its status."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The body parsed as a JSON object; structured 400 on failure."""
        if not self.body:
            raise HttpError("request body must be a JSON object",
                            code="bad-json", status=400)
        try:
            data = json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            # UnicodeDecodeError: json sniffs UTF-16/32 on leading NULs.
            raise HttpError(f"malformed JSON body: {error}",
                            code="bad-json", status=400) from error
        if not isinstance(data, dict):
            raise HttpError("request body must be a JSON object",
                            code="bad-json", status=400)
        return data


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Request | None:
    """Parse one request; ``None`` on a clean EOF before any bytes.

    Raises :class:`HttpError` for anything malformed or over limits; the
    caller maps that to a structured 4xx and closes the connection.
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as error:
        raise HttpError("request line too long", code="bad-request",
                        status=400) from error
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE_BYTES:
        raise HttpError("request line too long", code="bad-request",
                        status=400)
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError("malformed request line", code="bad-request",
                        status=400)
    method, target, _version = parts

    headers: dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as error:
            raise HttpError("header line too long", code="bad-request",
                            status=400) from error
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError("too many headers", code="bad-request",
                            status=400)
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep or not name.strip():
            raise HttpError(f"malformed header line {text!r}",
                            code="bad-request", status=400)
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError("chunked request bodies are not supported",
                        code="bad-request", status=400)
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as error:
            raise HttpError("invalid Content-Length", code="bad-request",
                            status=400) from error
        if length < 0:
            raise HttpError("invalid Content-Length", code="bad-request",
                            status=400)
        if length > max_body_bytes:
            raise HttpError(
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
                code="too-large", status=413,
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise HttpError("request body shorter than Content-Length",
                            code="bad-request", status=400) from error

    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """A full buffered HTTP/1.1 response, connection-close."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def stream_header_bytes(
    status: int, content_type: str = "application/x-ndjson"
) -> bytes:
    """Headers for a close-delimited streaming response (no length)."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")


def error_body(code: str, message: str) -> bytes:
    """The structured JSON error body every failure path shares."""
    return json.dumps(
        {"error": {"code": code, "message": message}}, sort_keys=True
    ).encode("utf-8")
