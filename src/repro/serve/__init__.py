"""Long-running optimization service (``powder serve``).

Stdlib-only asyncio HTTP/JSON service around the optimizer: a bounded
worker pool fed by a priority queue, per-job timeouts and cancellation,
canonical netlist-hash deduplication (completed-result LRU plus
in-flight coalescing), streamed per-round telemetry, lint-as-a-service,
and a ``/metrics`` endpoint.  See ``ALGORITHMS.md`` §20 for design.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    TIMEOUT,
    Execution,
    Job,
)
from repro.serve.jobspec import JobSpec, canonicalize_job, server_library
from repro.serve.loadgen import (
    LoadGenConfig,
    LoadGenReport,
    build_circuit_pool,
    run_load,
)
from repro.serve.runner import ServerThread
from repro.serve.server import PowderServer, ServerConfig
from repro.serve.worker import (
    AttemptOutcome,
    StreamingTracer,
    execute_jobspec,
    run_attempt,
)

__all__ = [
    "AttemptOutcome",
    "CANCELLED",
    "DONE",
    "Execution",
    "FAILED",
    "Job",
    "JobSpec",
    "LoadGenConfig",
    "LoadGenReport",
    "PowderServer",
    "QUEUED",
    "RUNNING",
    "ResultCache",
    "ServeClient",
    "ServeClientError",
    "ServerConfig",
    "ServerThread",
    "StreamingTracer",
    "TERMINAL_STATES",
    "TIMEOUT",
    "build_circuit_pool",
    "canonicalize_job",
    "execute_jobspec",
    "run_attempt",
    "run_load",
    "server_library",
]
