"""The completed-result LRU: canonical result JSON keyed by job key.

Values are the byte-stable canonical JSON *text* of the result payload
(:func:`repro.telemetry.deterministic_json` output), not parsed objects —
a cache hit hands back exactly the bytes the original run produced, so a
duplicate submission is bit-identical to its solo run by construction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class ResultCache:
    """A bounded least-recently-used map of job key → result JSON text."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[str]:
        """The cached result text, refreshing recency; counts hit/miss."""
        text = self._entries.get(key)
        if text is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return text

    def peek(self, key: str) -> Optional[str]:
        """Like :meth:`get` but without touching recency or counters."""
        return self._entries.get(key)

    def put(self, key: str, text: str) -> None:
        """Insert (or refresh) an entry, evicting the oldest beyond cap."""
        if self.max_entries == 0:
            return
        self._entries[key] = text
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }
