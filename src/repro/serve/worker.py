"""Worker-side job execution: one forked process per attempt.

Each execution runs in its own ``fork`` process so the service gets real
preemption for free: a timeout or cancellation terminates the child, and
a worker crash (whatever the cause) can never take the server down — the
parent sees the pipe close without a final message and retries within
its budget.

The child streams progress over a ``multiprocessing.Pipe``:

- ``{"type": "round", ...}`` — one per finished optimizer round, carrying
  the PR-4 :class:`~repro.telemetry.RoundTrace` fields (pool size, per-
  class candidate counts, shortlist evaluations, moves, rejections),
- ``{"type": "result", "payload": {...}}`` — the canonical result,
- ``{"type": "error", "error": {...}}`` — a structured, *deterministic*
  failure (no retry: the same input would fail the same way).

:func:`execute_jobspec` is the exact code path the child runs, exposed
in-process for the byte-identity tests: serving a job must equal calling
:func:`repro.transform.optimizer.power_optimize` yourself.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ReproError
from repro.serve.jobspec import JobSpec, server_library
from repro.telemetry.tracer import Tracer

#: Fallback cap on how long the parent waits for a terminated child to
#: be reaped before escalating from SIGTERM to SIGKILL.
_REAP_SECONDS = 5.0


class StreamingTracer(Tracer):
    """A PR-4 tracer that additionally emits each finished round."""

    def __init__(self, emit: Callable[[dict], None]):
        super().__init__()
        self._emit = emit

    def end_round(self) -> None:
        finished = self._round
        super().end_round()
        if finished is not None:
            self._emit({
                "type": "round",
                "index": finished.index,
                "pool_size": finished.pool_size,
                "candidates_by_class": dict(finished.candidates_by_class),
                "shortlist_evaluations": finished.shortlist_evaluations,
                "moves_applied": finished.moves_applied,
                "rejections": dict(finished.rejections),
            })


def execute_jobspec(
    spec: JobSpec, emit: Optional[Callable[[dict], None]] = None
) -> dict:
    """Run one canonical job to completion; the canonical result dict.

    Identical to what an in-process
    :func:`~repro.transform.optimizer.power_optimize` (or explicit
    pipeline run) produces for the same inputs: the tracer is read-only,
    so streaming progress never changes a move.
    """
    from repro.netlist.blif import parse_blif, write_blif
    from repro.pipeline import (
        OptimizationContext,
        PassManager,
        build_pipeline,
        default_pipeline,
    )
    from repro.transform.optimizer import OptimizeOptions

    netlist = parse_blif(spec.blif, server_library())
    options = OptimizeOptions.from_dict(json.loads(spec.options_json))
    if emit is not None and not options.windowed:
        options.trace = StreamingTracer(emit)
    passes = (
        build_pipeline(spec.spec) if spec.spec is not None
        else default_pipeline(options)
    )
    outcome = PassManager().run(OptimizationContext(netlist, options), passes)
    result = outcome.optimize_result

    payload: dict = {
        "netlist": outcome.netlist.name,
        "blif": write_blif(outcome.netlist),
        "spec": spec.spec,
    }
    if result is not None:
        payload["summary"] = {
            "initial_power": result.initial_power,
            "final_power": result.final_power,
            "initial_area": result.initial_area,
            "final_area": result.final_area,
            "initial_delay": result.initial_delay,
            "final_delay": result.final_delay,
            "moves": len(result.moves),
            "rounds": result.rounds,
            "rejected_delay": result.rejected_delay,
            "rejected_not_permissible": result.rejected_not_permissible,
            "rejected_aborted": result.rejected_aborted,
            "rejected_stale": result.rejected_stale,
        }
    return payload


def _child_main(conn, spec: JobSpec) -> None:
    """Entry point of the forked worker process."""
    try:
        payload = execute_jobspec(spec, emit=conn.send)
        conn.send({"type": "result", "payload": payload})
    except ReproError as error:
        conn.send({"type": "error", "error": {
            "code": type(error).__name__, "message": str(error),
        }})
    except Exception as error:  # noqa: BLE001 — the boundary of a process
        conn.send({"type": "error", "error": {
            "code": "internal",
            "message": f"{type(error).__name__}: {error}",
        }})
    finally:
        try:
            conn.close()
        except OSError:
            pass


#: Indirection point so tests can inject crashing/slow workers without
#: any test-only branch in the production path.
spawn_target = _child_main


@dataclass
class AttemptOutcome:
    """What one worker attempt produced."""

    status: str  # "result" | "error" | "cancelled" | "timeout" | "crashed"
    payload: Optional[dict] = None
    error: Optional[dict] = None


def _kill(process) -> None:
    if process.is_alive():
        process.terminate()
        process.join(_REAP_SECONDS)
    if process.is_alive():  # pragma: no cover — SIGTERM always suffices here
        process.kill()
        process.join(_REAP_SECONDS)


def run_attempt(
    spec: JobSpec,
    *,
    deadline: float,
    cancel_event,
    publish: Callable[[dict], None],
    poll_interval: float = 0.05,
) -> AttemptOutcome:
    """Run one forked attempt to a verdict (blocking; executor-thread side).

    Polls the event pipe at ``poll_interval``, checking the cancellation
    flag and the monotonic ``deadline`` between polls; on either, the
    child is terminated.  A pipe that closes without a final ``result``/
    ``error`` message is a worker crash.
    """
    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=spawn_target, args=(child_conn, spec), daemon=True
    )
    process.start()
    child_conn.close()

    final: Optional[dict] = None
    try:
        while final is None:
            if cancel_event.is_set():
                _kill(process)
                return AttemptOutcome("cancelled")
            if time.monotonic() >= deadline:
                _kill(process)
                return AttemptOutcome("timeout")
            try:
                has_data = parent_conn.poll(poll_interval)
            except (EOFError, OSError):
                break
            if has_data:
                try:
                    event = parent_conn.recv()
                except (EOFError, OSError):
                    break
                if event.get("type") in ("result", "error"):
                    final = event
                else:
                    publish(event)
            elif not process.is_alive():
                # Child exited: drain anything still buffered in the pipe.
                try:
                    while final is None and parent_conn.poll(0):
                        event = parent_conn.recv()
                        if event.get("type") in ("result", "error"):
                            final = event
                        else:
                            publish(event)
                except (EOFError, OSError):
                    pass
                break
    finally:
        try:
            parent_conn.close()
        except OSError:
            pass
        process.join(_REAP_SECONDS)
        if process.is_alive():  # pragma: no cover — defensive reap
            _kill(process)

    if final is not None and final["type"] == "result":
        return AttemptOutcome("result", payload=final["payload"])
    if final is not None and final["type"] == "error":
        return AttemptOutcome("error", error=final["error"])
    return AttemptOutcome("crashed", error={
        "code": "worker-crash",
        "message": (
            f"worker exited with code {process.exitcode} before "
            "producing a result"
        ),
    })
