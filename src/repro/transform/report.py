"""Move logs and per-class statistics.

Every substitution the optimizer performs is recorded as a
:class:`MoveRecord` carrying both the *predicted* gain breakdown and the
*measured* power/area change.  :func:`class_statistics` aggregates records
into the per-class contributions reported in the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transform.gain import GainBreakdown
from repro.transform.substitution import IS2, IS3, OS2, OS3, Substitution

ALL_CLASSES = (OS2, IS2, OS3, IS3)


@dataclass
class MoveRecord:
    """One performed substitution."""

    substitution: Substitution
    predicted: GainBreakdown
    measured_power_gain: float  # estimator total before - after
    measured_area_delta: float  # netlist area after - before
    round_index: int
    circuit_delay_after: float

    @property
    def kind(self) -> str:
        return self.substitution.kind


@dataclass
class ClassStats:
    """Aggregated effect of one substitution class."""

    kind: str
    count: int = 0
    power_gain: float = 0.0
    area_delta: float = 0.0

    def power_share(self, total_gain: float) -> float:
        """Fraction of the overall power reduction due to this class."""
        if total_gain == 0:
            return 0.0
        return self.power_gain / total_gain

    def area_share(self, total_delta: float) -> float:
        """Fraction of the overall area change due to this class.

        The paper's Table 2 reports shares of the overall area *reduction*;
        classes that increase area get negative shares there (and can push
        another class past 100%).
        """
        if total_delta == 0:
            return 0.0
        return self.area_delta / total_delta


def class_statistics(moves: list[MoveRecord]) -> dict[str, ClassStats]:
    """Per-class totals over a move log (Table 2's raw data)."""
    stats = {kind: ClassStats(kind) for kind in ALL_CLASSES}
    for move in moves:
        entry = stats[move.kind]
        entry.count += 1
        entry.power_gain += move.measured_power_gain
        entry.area_delta += move.measured_area_delta
    return stats


def format_class_table(moves: list[MoveRecord]) -> str:
    """Human-readable Table-2-style summary of a move log."""
    stats = class_statistics(moves)
    total_gain = sum(s.power_gain for s in stats.values())
    total_area = sum(s.area_delta for s in stats.values())
    header = f"{'class':>6} {'moves':>6} {'power %':>9} {'area %':>9}"
    lines = [header, "-" * len(header)]
    for kind in ALL_CLASSES:
        s = stats[kind]
        power_pct = 100.0 * s.power_share(total_gain) if total_gain else 0.0
        # Express area as share of the total area *reduction* like Table 2
        # (reduction = -total_area when area shrank).
        area_pct = (
            100.0 * s.area_delta / total_area if total_area else 0.0
        )
        lines.append(
            f"{kind:>6} {s.count:>6d} {power_pct:>8.1f}% {area_pct:>8.1f}%"
        )
    return "\n".join(lines)
