"""The exact permissibility check (the paper's ``check_candidate``).

A substitution is permissible iff the modified circuit computes the same
primary-output functions as the original — equivalently, iff the global
function of the substituting signal lies in the permissible-function set of
the substituted signal (§3.2).  The check:

1. applies the substitution to a scratch copy,
2. runs the equivalence oracle (simulation counterexample hunt, then the
   ATPG justifier on the miter).

Return values follow the paper exactly: ``PERMISSIBLE`` only on a *proof*;
a counterexample yields ``NOT_PERMISSIBLE``; an ATPG abort also yields
``ABORTED`` and must be treated as not permissible by callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.atpg.podem import DEFAULT_BACKTRACK_LIMIT
from repro.equiv.checker import EQUAL, NOT_EQUAL, check_equivalent
from repro.errors import NetlistError, TransformError
from repro.netlist.netlist import Netlist
from repro.transform.substitution import Substitution, apply_to_copy

PERMISSIBLE = "permissible"
NOT_PERMISSIBLE = "not-permissible"
ABORTED = "aborted"


@dataclass
class PermissibilityResult:
    """Verdict of one check, with evidence."""

    status: str
    counterexample: Optional[dict[str, int]] = None
    stage: str = ""
    #: ATPG decisions spent by the deciding justification (0 when another
    #: stage decided); deterministic, so run traces may pin it.
    backtracks: int = 0

    @property
    def allowed(self) -> bool:
        """True only for proven-permissible moves (abort = not allowed)."""
        return self.status == PERMISSIBLE


def check_candidate(
    netlist: Netlist,
    substitution: Substitution,
    backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
    num_patterns: int = 512,
    seed: int = 7,
    bdd_node_limit: int = 200_000,
) -> PermissibilityResult:
    """Decide whether ``substitution`` preserves the netlist's I/O behaviour."""
    try:
        trial, _applied = apply_to_copy(netlist, substitution)
    except (TransformError, NetlistError):
        return PermissibilityResult(NOT_PERMISSIBLE, stage="apply")
    verdict = check_equivalent(
        netlist,
        trial,
        num_patterns=num_patterns,
        seed=seed,
        backtrack_limit=backtrack_limit,
        bdd_node_limit=bdd_node_limit,
    )
    if verdict.status == EQUAL:
        return PermissibilityResult(
            PERMISSIBLE, stage=verdict.stage, backtracks=verdict.backtracks
        )
    if verdict.status == NOT_EQUAL:
        return PermissibilityResult(
            NOT_PERMISSIBLE,
            verdict.counterexample,
            stage=verdict.stage,
            backtracks=verdict.backtracks,
        )
    return PermissibilityResult(
        ABORTED, stage=verdict.stage, backtracks=verdict.backtracks
    )
