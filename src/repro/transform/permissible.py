"""The exact permissibility check (the paper's ``check_candidate``).

A substitution is permissible iff the modified circuit computes the same
primary-output functions as the original — equivalently, iff the global
function of the substituting signal lies in the permissible-function set of
the substituted signal (§3.2).  The legacy check:

1. applies the substitution to a scratch copy,
2. runs the equivalence oracle (simulation counterexample hunt, then the
   ATPG justifier on the miter).

:class:`TriageChecker` is the fast front-end the optimizer uses by
default (``OptimizeOptions.permissibility="triage"``).  It decides the
same question without ever copying the netlist:

1. **Simulation triage** — the substituting signal's value word is forced
   over a cached fresh-pattern simulation of the *current* netlist and
   propagated through the fanout cone; any differing primary-output word
   yields an immediate counterexample (stage ``"sim"``),
2. **SAT proof** — survivors go to an incremental CDCL miter: the base
   Tseitin encoding of the current netlist is shared across candidates,
   only the substitution's fanout cone is duplicated against the
   substituting literal, and the per-candidate goal clause is activated
   through an assumption literal (stage ``"sat"``),
3. **Fallback** — a SAT budget exhaustion falls back to the legacy
   copy-and-compare oracle, so verdicts never get *weaker* than before.

Return values follow the paper exactly: ``PERMISSIBLE`` only on a *proof*;
a counterexample yields ``NOT_PERMISSIBLE``; an ATPG abort also yields
``ABORTED`` and must be treated as not permissible by callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.atpg.podem import DEFAULT_BACKTRACK_LIMIT
from repro.equiv.checker import EQUAL, NOT_EQUAL, check_equivalent
from repro.errors import NetlistError, TransformError
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import SimState, evaluate_cell, random_patterns
from repro.netlist.traverse import topological_order, transitive_fanout
from repro.sat.cnf import CnfFormula, cell_templates, tseitin_encode
from repro.sat.dpll import SAT as SAT_STATUS
from repro.sat.dpll import UNSAT as UNSAT_STATUS
from repro.sat.incremental import IncrementalSolver
from repro.transform.substitution import Substitution, apply_to_copy

PERMISSIBLE = "permissible"
NOT_PERMISSIBLE = "not-permissible"
ABORTED = "aborted"


@dataclass
class PermissibilityResult:
    """Verdict of one check, with evidence."""

    status: str
    counterexample: Optional[dict[str, int]] = None
    stage: str = ""
    #: ATPG decisions spent by the deciding justification (0 when another
    #: stage decided); deterministic, so run traces may pin it.
    backtracks: int = 0

    @property
    def allowed(self) -> bool:
        """True only for proven-permissible moves (abort = not allowed)."""
        return self.status == PERMISSIBLE


def check_candidate(
    netlist: Netlist,
    substitution: Substitution,
    backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
    num_patterns: int = 512,
    seed: int = 7,
    bdd_node_limit: int = 200_000,
) -> PermissibilityResult:
    """Decide whether ``substitution`` preserves the netlist's I/O behaviour."""
    try:
        trial, _applied = apply_to_copy(netlist, substitution)
    except (TransformError, NetlistError):
        return PermissibilityResult(NOT_PERMISSIBLE, stage="apply")
    verdict = check_equivalent(
        netlist,
        trial,
        num_patterns=num_patterns,
        seed=seed,
        backtrack_limit=backtrack_limit,
        bdd_node_limit=bdd_node_limit,
    )
    if verdict.status == EQUAL:
        return PermissibilityResult(
            PERMISSIBLE, stage=verdict.stage, backtracks=verdict.backtracks
        )
    if verdict.status == NOT_EQUAL:
        return PermissibilityResult(
            NOT_PERMISSIBLE,
            verdict.counterexample,
            stage=verdict.stage,
            backtracks=verdict.backtracks,
        )
    return PermissibilityResult(
        ABORTED, stage=verdict.stage, backtracks=verdict.backtracks
    )


class TriageChecker:
    """Simulation-first, SAT-second permissibility for one netlist.

    One instance serves every check against one (mutating) netlist: the
    fresh-pattern simulation state and the base CNF + CDCL solver are
    cached per structural state and rebuilt automatically after edits
    (validated against the identity of the netlist's cached topological
    order, the same coherence protocol as the packed simulation view).

    ``counters`` tallies triage effectiveness for telemetry:
    ``sim_kills`` (candidates rejected by the simulation stage),
    ``sat_calls`` / ``sat_proofs`` / ``sat_cex``, ``fallbacks`` (SAT
    budget exhausted, legacy oracle consulted), and — under the optimizer's
    ``permissibility="both"`` cross-check — ``podem_agree`` /
    ``podem_disagree``.
    """

    def __init__(
        self,
        netlist: Netlist,
        backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
        num_patterns: int = 512,
        seed: int = 7,
        conflict_limit: int = 20_000,
        bdd_node_limit: int = 200_000,
    ):
        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self.num_patterns = num_patterns
        self.seed = seed
        self.conflict_limit = conflict_limit
        self.bdd_node_limit = bdd_node_limit
        self.counters = {
            "sim_kills": 0,
            "sat_calls": 0,
            "sat_proofs": 0,
            "sat_cex": 0,
            "fallbacks": 0,
            "podem_agree": 0,
            "podem_disagree": 0,
        }
        self._sim_cache: Optional[tuple] = None
        self._sat_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Per-netlist-state caches
    # ------------------------------------------------------------------
    def _state_key(self):
        # The cached topo order is dropped on every structural edit, so
        # its list identity names the netlist's structural state.
        return topological_order(self.netlist)

    def _sim_state(self) -> SimState:
        key = self._state_key()
        if self._sim_cache is None or self._sim_cache[0] is not key:
            patterns = random_patterns(
                self.netlist.input_names, self.num_patterns, self.seed
            )
            self._sim_cache = (key, SimState(self.netlist, patterns))
        return self._sim_cache[1]

    def _sat_state(self) -> tuple[CnfFormula, IncrementalSolver]:
        key = self._state_key()
        if self._sat_cache is None or self._sat_cache[0] is not key:
            formula = tseitin_encode(self.netlist)
            self._sat_cache = (key, formula, IncrementalSolver(formula))
        return self._sat_cache[1], self._sat_cache[2]

    # ------------------------------------------------------------------
    def check(self, substitution: Substitution) -> PermissibilityResult:
        """Decide whether ``substitution`` preserves the I/O behaviour."""
        netlist = self.netlist
        if not substitution.validate_against(netlist):
            return PermissibilityResult(NOT_PERMISSIBLE, stage="apply")
        if (substitution.invert1 or substitution.invert2) and (
            netlist.library is None
        ):
            return PermissibilityResult(NOT_PERMISSIBLE, stage="apply")
        if (
            substitution.new_cell is not None
            and netlist.library[substitution.new_cell].num_inputs != 2
        ):
            return PermissibilityResult(NOT_PERMISSIBLE, stage="apply")
        if substitution.is_output_substitution():
            root = netlist.gate(substitution.target)
            affected = transitive_fanout(netlist, [root])
        else:
            root = netlist.gate(substitution.branch[0])
            affected = [root] + transitive_fanout(netlist, [root])
        # Rewiring a source inside its own fanout cone would create a
        # combinational cycle; ``apply`` rejects that, so must we.
        affected_names = {g.name for g in affected}
        if any(s in affected_names for s in substitution.source_names()):
            return PermissibilityResult(NOT_PERMISSIBLE, stage="apply")

        if netlist.input_names and self.num_patterns:
            cex = self._simulation_cex(substitution)
            if cex is not None:
                self.counters["sim_kills"] += 1
                return PermissibilityResult(NOT_PERMISSIBLE, cex, stage="sim")
        verdict = self._sat_verdict(substitution, affected)
        if verdict is not None:
            return verdict
        # SAT budget exhausted: fall back to the legacy staged oracle.
        self.counters["fallbacks"] += 1
        return check_candidate(
            netlist,
            substitution,
            backtrack_limit=self.backtrack_limit,
            num_patterns=self.num_patterns,
            seed=self.seed,
            bdd_node_limit=self.bdd_node_limit,
        )

    # ------------------------------------------------------------------
    # Stage 1: forced-overlay simulation on the current netlist
    # ------------------------------------------------------------------
    def _simulation_cex(
        self, substitution: Substitution
    ) -> Optional[dict[str, int]]:
        from repro.transform.gain import _new_signal_word

        netlist = self.netlist
        sim = self._sim_state()
        new_word = _new_signal_word(sim, netlist, substitution)
        if substitution.is_output_substitution():
            forced = {substitution.target: new_word}
        else:
            sink_name, pin = substitution.branch
            sink = netlist.gate(sink_name)
            fanin_words = [
                new_word if i == pin else sim.value(f.name)
                for i, f in enumerate(sink.fanins)
            ]
            forced = {
                sink.name: evaluate_cell(sink.cell, fanin_words, sim.nwords)
            }
        overlay = sim.propagate_forced(forced)
        for po in netlist.outputs:
            driver = netlist.outputs[po].name
            word = overlay.get(driver)
            if word is None:
                continue
            diff = word ^ sim.value(driver)
            nz = np.nonzero(diff)[0]
            if nz.size:
                index = int(nz[0])
                bit = int(diff[index]).bit_length() - 1
                return {
                    name: int((int(sim.values[name][index]) >> bit) & 1)
                    for name in netlist.input_names
                }
        return None

    # ------------------------------------------------------------------
    # Stage 2: incremental cone-duplicated SAT miter
    # ------------------------------------------------------------------
    def _new_signal_literal(
        self, formula: CnfFormula, solver: IncrementalSolver, substitution
    ) -> int:
        """CNF literal computing the substituting signal."""
        if substitution.is_constant:
            var = formula.new_var()
            solver.ensure_vars(formula.num_vars)
            solver.add_clause(var if substitution.constant else -var)
            return var
        literal = formula.var_of[substitution.source1]
        if substitution.invert1:
            literal = -literal
        if substitution.source2 is None:
            return literal
        literal2 = formula.var_of[substitution.source2]
        if substitution.invert2:
            literal2 = -literal2
        cell = self.netlist.library[substitution.new_cell]
        out = formula.new_var()
        solver.ensure_vars(formula.num_vars)
        _encode_function(solver, out, [literal, literal2], cell)
        return out

    def _sat_verdict(
        self, substitution: Substitution, affected: list
    ) -> Optional[PermissibilityResult]:
        """PERMISSIBLE / NOT_PERMISSIBLE, or None when the budget ran out.

        The miter shares the whole base encoding between the two sides:
        only the gates in ``affected`` (the fanout cone of the rewired
        point, in topological order) are duplicated, reading the
        substituting literal in place of the rewired fanin.  Exact in
        both directions — every side input is constrained by the base
        netlist's clauses, never left free.
        """
        netlist = self.netlist
        formula, solver = self._sat_state()
        var_of = formula.var_of
        new_literal = self._new_signal_literal(formula, solver, substitution)
        output_sub = substitution.is_output_substitution()
        target_name = substitution.target
        branch = substitution.branch
        copies: dict[str, int] = {}
        for gate in affected:
            literals = []
            for pin, fanin in enumerate(gate.fanins):
                copied = copies.get(fanin.name)
                if copied is not None:
                    literals.append(copied)
                elif output_sub and fanin.name == target_name:
                    literals.append(new_literal)
                elif (
                    not output_sub
                    and gate.name == branch[0]
                    and pin == branch[1]
                ):
                    literals.append(new_literal)
                else:
                    literals.append(var_of[fanin.name])
            out = formula.new_var()
            solver.ensure_vars(formula.num_vars)
            _encode_function(solver, out, literals, gate.cell)
            copies[gate.name] = out
        activation = formula.new_var()
        solver.ensure_vars(formula.num_vars)
        diff_vars = []
        for po in sorted(netlist.outputs):
            driver = netlist.outputs[po]
            new_side = copies.get(driver.name)
            if new_side is None and output_sub and driver.name == target_name:
                new_side = new_literal
            if new_side is None:
                continue  # this output's cone is untouched
            old_side = var_of[driver.name]
            diff = formula.new_var()
            solver.ensure_vars(formula.num_vars)
            solver.add_clause(-diff, old_side, new_side)
            solver.add_clause(-diff, -old_side, -new_side)
            solver.add_clause(diff, -old_side, new_side)
            solver.add_clause(diff, old_side, -new_side)
            diff_vars.append(diff)
        if not diff_vars:
            # No primary output depends on the rewired point.
            return PermissibilityResult(PERMISSIBLE, stage="sat")
        solver.add_clause(-activation, *diff_vars)
        self.counters["sat_calls"] += 1
        result = solver.solve([activation], conflict_limit=self.conflict_limit)
        if result.status == UNSAT_STATUS:
            self.counters["sat_proofs"] += 1
            return PermissibilityResult(
                PERMISSIBLE, stage="sat", backtracks=result.conflicts
            )
        if result.status == SAT_STATUS:
            self.counters["sat_cex"] += 1
            cex = {
                name: int(result.model.get(var_of[name], False))
                for name in netlist.input_names
            }
            return PermissibilityResult(
                NOT_PERMISSIBLE, cex, stage="sat", backtracks=result.conflicts
            )
        return None


def _encode_function(
    solver: IncrementalSolver, out: int, fanin_literals: list[int], cell
) -> None:
    """Clauses forcing ``out <-> cell(fanin_literals)`` (signed literals)."""
    onset, offset = cell_templates(cell)
    for cube in onset:
        clause = [out]
        for var, polarity in cube:
            literal = fanin_literals[var]
            clause.append(-literal if polarity else literal)
        solver.add_clause(*clause)
    for cube in offset:
        clause = [-out]
        for var, polarity in cube:
            literal = fanin_literals[var]
            clause.append(-literal if polarity else literal)
        solver.add_clause(*clause)
