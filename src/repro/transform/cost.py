"""Pluggable objective cost models for the optimization loop.

The paper's loop (Figure 5) accepts a substitution when it improves the
*objective* — power for POWDER itself, area for the redundancy
addition/removal engine of ref [2], delay for the clause-analysis engine
of ref [5].  Historically the optimizer branched on an ``objective``
string; each branch is now a :class:`CostModel` the loop calls through,
so new objectives plug in without touching the loop:

- :meth:`CostModel.score` — how much the candidate improves the
  objective on the *current* netlist (higher is better; ``-inf`` marks a
  candidate that can never apply),
- :meth:`CostModel.floor` — the minimum score the loop accepts (the
  paper stops at "no reduction").

``resolve_cost_model`` maps an ``OptimizeOptions.objective`` value — a
registered name or a :class:`CostModel` instance — to the model the
loop uses.  Third parties register new objectives with
:func:`register_cost_model`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import NetlistError, TransformError

if TYPE_CHECKING:  # pragma: no cover
    from repro.transform.candidates import Candidate
    from repro.transform.optimizer import PowerOptimizer


class CostModel:
    """One optimization objective, scored per candidate substitution."""

    #: Registry key and the value recorded in run traces.
    name: str = "?"

    def score(self, optimizer: "PowerOptimizer", candidate: "Candidate") -> float:
        """Objective improvement of ``candidate`` (> floor = acceptable)."""
        raise NotImplementedError

    def floor(self, optimizer: "PowerOptimizer") -> float:
        """Minimum accepted score: any strict improvement by default."""
        return 1e-9

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CostModel {self.name}>"


class PowerCost(CostModel):
    """The paper's objective: total estimated power gain (PG_A+PG_B+PG_C)."""

    name = "power"

    def score(self, optimizer: "PowerOptimizer", candidate: "Candidate") -> float:
        return candidate.gain.total

    def floor(self, optimizer: "PowerOptimizer") -> float:
        # min_gain, possibly lifted by §4.2's gain_threshold_fraction —
        # the optimizer owns the lifted value.
        return optimizer._gain_floor


class AreaCost(CostModel):
    """Ref [2]'s objective: cell-area reduction."""

    name = "area"

    def score(self, optimizer: "PowerOptimizer", candidate: "Candidate") -> float:
        return -candidate.gain.area_delta


class DelayCost(CostModel):
    """Ref [5]'s objective: circuit-delay reduction by exact trial STA.

    The quick gain figures cannot see timing, so every scored candidate
    pays one trial analysis: in-place ``what_if`` on the incremental
    engine, an apply-to-copy rebuild on the legacy paths.
    """

    name = "delay"

    def score(self, optimizer: "PowerOptimizer", candidate: "Candidate") -> float:
        from repro.timing.analysis import TimingAnalysis
        from repro.transform.substitution import apply_to_copy

        if optimizer.options.incremental:
            after = optimizer.timing.what_if(candidate.substitution)
            if after is None:
                return float("-inf")
            return optimizer.timing.circuit_delay - after
        try:
            trial, _applied = apply_to_copy(
                optimizer.netlist, candidate.substitution
            )
        except (TransformError, NetlistError):
            return float("-inf")
        return (
            TimingAnalysis(optimizer.netlist).circuit_delay
            - TimingAnalysis(trial).circuit_delay
        )


#: Registered objectives by name (``OptimizeOptions.objective`` values).
COST_MODELS: dict[str, type[CostModel]] = {}


def register_cost_model(model: type[CostModel]) -> type[CostModel]:
    """Register ``model`` under ``model.name`` (usable as a decorator)."""
    COST_MODELS[model.name] = model
    return model


for _model in (PowerCost, AreaCost, DelayCost):
    register_cost_model(_model)


def resolve_cost_model(objective) -> CostModel:
    """The :class:`CostModel` behind an ``objective`` option value.

    Accepts a registered name (``"power"``/``"area"``/``"delay"`` plus
    anything added via :func:`register_cost_model`) or a ready
    :class:`CostModel` instance.
    """
    if isinstance(objective, CostModel):
        return objective
    model = COST_MODELS.get(objective)
    if model is None:
        raise ValueError(
            f"unknown optimization objective {objective!r}; registered "
            f"objectives: {', '.join(sorted(COST_MODELS))}"
        )
    return model()
