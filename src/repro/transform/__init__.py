"""POWDER: power reduction by permissible structural transformations.

This package is the paper's contribution (§3):

- :mod:`~repro.transform.substitution` — the OS2/IS2/OS3/IS3 move model and
  its application to netlists,
- :mod:`~repro.transform.candidates` — simulation-filtered candidate
  generation (the fault-simulation-based technique of refs [2, 5]),
- :mod:`~repro.transform.permissible` — the exact ATPG permissibility check
  with abort semantics,
- :mod:`~repro.transform.gain` — the PG_A / PG_B / PG_C power-gain analysis
  (eqs. 2-5),
- :mod:`~repro.transform.optimizer` — the greedy ``power_optimize`` loop of
  Figure 5, with the delay-constraint handling of §3.4,
- :mod:`~repro.transform.report` — move logs and per-class statistics
  (the data behind Tables 1 and 2).
"""

from repro.transform.substitution import (
    Substitution,
    OS2,
    IS2,
    OS3,
    IS3,
    apply_substitution,
)
from repro.transform.candidates import CandidateOptions, generate_candidates
from repro.transform.permissible import check_candidate, PERMISSIBLE, NOT_PERMISSIBLE, ABORTED
from repro.transform.gain import GainBreakdown, quick_gain, full_gain
from repro.transform.optimizer import (
    OptimizeOptions,
    OptimizeResult,
    PowerOptimizer,
    power_optimize,
)
from repro.transform.report import MoveRecord, ClassStats, class_statistics
from repro.transform.windowed import (
    WindowedOptimizer,
    WindowMove,
    windowed_optimize,
)
from repro.transform.dedupe import count_duplicate_gates, merge_duplicate_gates
from repro.transform.clauses import (
    Clause,
    Literal,
    SignalRelation,
    find_clause_candidates,
    find_equivalent_signals,
    prove_clause,
)

__all__ = [
    "Substitution",
    "OS2",
    "IS2",
    "OS3",
    "IS3",
    "apply_substitution",
    "CandidateOptions",
    "generate_candidates",
    "check_candidate",
    "PERMISSIBLE",
    "NOT_PERMISSIBLE",
    "ABORTED",
    "GainBreakdown",
    "quick_gain",
    "full_gain",
    "OptimizeOptions",
    "OptimizeResult",
    "PowerOptimizer",
    "power_optimize",
    "MoveRecord",
    "ClassStats",
    "class_statistics",
    "WindowedOptimizer",
    "WindowMove",
    "windowed_optimize",
    "Clause",
    "Literal",
    "SignalRelation",
    "find_clause_candidates",
    "find_equivalent_signals",
    "prove_clause",
    "count_duplicate_gates",
    "merge_duplicate_gates",
]
