"""Valid-clause analysis (the machinery of the paper's reference [5]).

Rohfleisch/Wurth/Antreich relate permissible transformations to *valid
clauses*: a disjunction of signal literals that evaluates to 1 on every
input vector.  A valid 2-clause ``(l_a ∨ l_b)`` is an implication
``!l_a → l_b``; combinations of valid clauses yield permissible signal
substitutions (e.g. ``(a ∨ !b)`` and ``(!a ∨ b)`` valid together mean
``a ≡ b`` everywhere, so one can replace the other).

This module finds candidate clauses the way the paper does — cheap
bit-parallel simulation proposes, ATPG disposes:

- :func:`find_clause_candidates` — all 2-clauses no simulated pattern
  violates (vectorised over the stem matrix),
- :func:`prove_clause` — exact validity via PODEM justification of the
  clause's complement (UNSAT = valid), with the usual abort semantics,
- :func:`find_equivalent_signals` — proven signal equivalences /
  antivalences, the strongest substitution candidates.

The main optimizer reaches permissibility through the miter oracle instead
(one check per move); this module exposes the clause view for analysis and
for users building their own rewriting on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.atpg.podem import DEFAULT_BACKTRACK_LIMIT, justify
from repro.errors import AtpgAbort
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.simulate import SimState
from repro.netlist.traverse import topological_order

VALID = "valid"
INVALID = "invalid"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Literal:
    """A signal or its complement."""

    signal: str
    positive: bool = True

    def __str__(self) -> str:
        return self.signal if self.positive else f"!{self.signal}"


@dataclass(frozen=True)
class Clause:
    """A 2-literal disjunction ``(l_a ∨ l_b)``."""

    a: Literal
    b: Literal

    def __str__(self) -> str:
        return f"({self.a} + {self.b})"

    def as_implication(self) -> str:
        """Render as the equivalent implication."""
        lhs = Literal(self.a.signal, not self.a.positive)
        return f"{lhs} -> {self.b}"


def _literal_word(sim: SimState, literal: Literal) -> np.ndarray:
    word = sim.value(literal.signal)
    return word if literal.positive else ~word


def clause_holds_in_simulation(sim: SimState, clause: Clause) -> bool:
    """True when no simulated pattern violates the clause."""
    violation = ~(
        _literal_word(sim, clause.a) | _literal_word(sim, clause.b)
    )
    return not violation.any()


def find_clause_candidates(
    sim: SimState,
    signals: Optional[list[str]] = None,
    max_clauses: int = 10000,
    include_trivial: bool = False,
) -> list[Clause]:
    """All 2-clauses consistent with the simulated sample.

    *Trivial* clauses — those valid because one literal subsumes the other
    structurally (same signal twice) — are excluded by default.  The result
    is simulation evidence only; run :func:`prove_clause` on anything that
    matters.
    """
    netlist = sim.netlist
    names = signals if signals is not None else [
        g.name for g in topological_order(netlist)
    ]
    words = {name: sim.value(name) for name in names}
    found: list[Clause] = []
    for i, name_a in enumerate(names):
        wa = words[name_a]
        for name_b in names[i:]:
            if name_a == name_b and not include_trivial:
                continue
            wb = words[name_b]
            for pa in (True, False):
                la = wa if pa else ~wa
                for pb in (True, False):
                    lb = wb if pb else ~wb
                    if not (~(la | lb)).any():
                        found.append(
                            Clause(Literal(name_a, pa), Literal(name_b, pb))
                        )
                        if len(found) >= max_clauses:
                            return found
    return found


def _build_probe(
    netlist: Netlist, clause: Clause
) -> tuple[Netlist, Gate]:
    """Copy the netlist and add a probe = !l_a AND !l_b."""
    probe_netlist = netlist.copy(netlist.name + "_clause")
    library = probe_netlist.library
    inv = library.inverter()

    def literal_gate(literal: Literal) -> Gate:
        gate = probe_netlist.gate(literal.signal)
        if literal.positive:
            # Need the complement for the violation probe.
            return probe_netlist.add_gate(
                inv, [gate], name=probe_netlist.fresh_name("probe_inv")
            )
        return gate

    # violation = !l_a AND !l_b ; for a negative literal !x the complement
    # is x itself.
    not_a = literal_gate(clause.a)
    not_b = literal_gate(clause.b)
    and_cell = None
    for cell in library.cells_with_inputs(2):
        if cell.function.bits == 0b1000:
            and_cell = cell
            break
    if and_cell is not None:
        probe = probe_netlist.add_gate(
            and_cell, [not_a, not_b], name=probe_netlist.fresh_name("probe")
        )
    else:
        nand = next(
            cell
            for cell in library.cells_with_inputs(2)
            if cell.function.bits == 0b0111
        )
        inner = probe_netlist.add_gate(
            nand, [not_a, not_b], name=probe_netlist.fresh_name("probe")
        )
        probe = probe_netlist.add_gate(
            inv, [inner], name=probe_netlist.fresh_name("probe")
        )
    probe_netlist.set_output("clause_violation", probe)
    return probe_netlist, probe


def prove_clause(
    netlist: Netlist,
    clause: Clause,
    backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
) -> str:
    """Exact clause validity: VALID, INVALID, or UNKNOWN (ATPG abort)."""
    probe_netlist, probe = _build_probe(netlist, clause)
    try:
        result = justify(probe_netlist, probe, 1, backtrack_limit)
    except AtpgAbort:
        return UNKNOWN
    return INVALID if result.testable else VALID


@dataclass(frozen=True)
class SignalRelation:
    """A proven relation between two stems."""

    a: str
    b: str
    antivalent: bool  # False: a == b everywhere; True: a == !b

    def __str__(self) -> str:
        op = "==" if not self.antivalent else "== !"
        return f"{self.a} {op}{self.b}"


def find_equivalent_signals(
    netlist: Netlist,
    sim: SimState,
    backtrack_limit: int = DEFAULT_BACKTRACK_LIMIT,
    max_pairs: int = 200,
) -> list[SignalRelation]:
    """Proven global equivalences/antivalences between stems.

    These are the strongest OS2 candidates: substituting one side for the
    other is permissible *without* any don't-care argument.
    """
    order = [g.name for g in topological_order(netlist)]
    words = {name: sim.value(name) for name in order}
    relations: list[SignalRelation] = []
    checked = 0
    for i, name_a in enumerate(order):
        for name_b in order[i + 1 :]:
            if checked >= max_pairs:
                return relations
            equal = np.array_equal(words[name_a], words[name_b])
            anti = not equal and not (
                (words[name_a] ^ ~words[name_b])
            ).any()
            if not equal and not anti:
                continue
            checked += 1
            # a == b  <=>  (a + !b) and (!a + b) both valid.
            polarity = not anti
            c1 = Clause(
                Literal(name_a, True), Literal(name_b, not polarity)
            )
            c2 = Clause(
                Literal(name_a, False), Literal(name_b, polarity)
            )
            if (
                prove_clause(netlist, c1, backtrack_limit) == VALID
                and prove_clause(netlist, c2, backtrack_limit) == VALID
            ):
                relations.append(
                    SignalRelation(name_a, name_b, antivalent=anti)
                )
    return relations
