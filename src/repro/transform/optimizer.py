"""The POWDER optimization loop (Figure 5 of the paper).

``power_optimize(netlist, ...)`` performs a greedy sequence of permissible
substitutions, each reducing the estimated power, optionally under a delay
constraint:

1. ``power_estimate`` — build the estimator, storing all transition
   probabilities (§3.5),
2. ``get_candidate_substitutions`` — simulation-filtered candidates,
3. ``select_power_red_subst`` — pre-select by ``PG_A + PG_B`` (no
   re-estimation), re-estimate ``PG_C`` only for the short-list, pick the
   best total,
4. ``check_delay`` — discard moves that would break the constraint (§3.4),
5. ``check_candidate`` — exact ATPG permissibility; aborts count as
   rejection,
6. ``perform_substitution`` + ``power_estimate_update`` — apply and
   incrementally refresh the probabilities of the substituted signal's TFO.

The inner loop runs up to ``repeat`` substitutions per candidate round; the
outer loop regenerates candidates until no power-reducing substitution
remains (or a configured budget runs out).

Since the pass-pipeline refactor this module is the *engine* layer:

- shared analysis state (probability engine, estimator, delay
  constraint, STA, candidate workspace) lives in a
  :class:`repro.pipeline.OptimizationContext`; :class:`PowerOptimizer`
  reads it through the context, building lazily and maintaining it
  incrementally,
- the objective is a pluggable :class:`repro.transform.cost.CostModel`
  (``power``/``area``/``delay`` built in) instead of a string branch,
- :func:`power_optimize` is a thin wrapper over the default pass
  pipeline (``dedupe?; powder``) run by a
  :class:`repro.pipeline.PassManager` — bit-identical to driving the
  engine directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NetlistError, TransformError
from repro.netlist.netlist import Netlist
from repro.netlist.verify import check_netlist
from repro.timing.analysis import TimingAnalysis
from repro.timing.constraints import quick_delay_reject
from repro.transform.candidates import (
    Candidate,
    CandidateOptions,
    generate_candidates,
)
from repro.transform.cost import COST_MODELS, CostModel, resolve_cost_model
from repro.transform.gain import (
    GainBreakdown,
    full_gain,
    predict_dying_region,
)
from repro.transform.permissible import (
    ABORTED,
    NOT_PERMISSIBLE,
    PERMISSIBLE,
    check_candidate,
)
from repro.transform.report import MoveRecord, format_class_table
from repro.transform.substitution import (
    OS3,
    IS3,
    Substitution,
    apply_substitution,
    apply_to_copy,
)

#: Virtual equivalence-class root for proven-constant signals: a
#: constant-``v`` source normalises to (``_CONST_ROOT``, parity ``v``).
#: The NUL prefix keeps it disjoint from every legal gate name.
_CONST_ROOT = "\x00const"


@dataclass
class OptimizeOptions:
    """Configuration of one POWDER run."""

    #: What each substitution must improve: the name of a registered
    #: :class:`~repro.transform.cost.CostModel` or an instance.  "power"
    #: is the paper; "area" and "delay" reproduce the same
    #: ATPG-transformation engine in the roles of the paper's companion
    #: works (redundancy addition/removal for area [2], clause analysis
    #: for delay [5]).
    objective: str = "power"
    #: Substitutions applied per candidate-generation round (Figure 5).
    repeat: int = 25
    #: Absolute delay limit; ``None`` disables the timing check.
    delay_limit: Optional[float] = None
    #: Alternative: limit = initial delay × (1 + percent/100).
    delay_slack_percent: Optional[float] = None
    #: Candidate-generation knobs.
    candidates: CandidateOptions = field(default_factory=CandidateOptions)
    #: Random patterns for the probability engine.
    num_patterns: int = 2048
    seed: int = 2024
    #: Primary-input signal probabilities (name -> P(=1)); default 0.5.
    input_probs: Optional[dict] = None
    #: Lag-1 Markov input descriptions (name -> TemporalSpec).  When set,
    #: the optimizer measures activities with the temporal pair-simulation
    #: engine instead of assuming temporal independence.
    input_temporal_specs: Optional[dict] = None
    #: ATPG decision budget per permissibility check.
    backtrack_limit: int = 20000
    #: Permissibility engine: ``"triage"`` (simulation counterexamples on
    #: the live netlist first, then an incremental-SAT cone miter, with
    #: the legacy PODEM+BDD oracle as fallback on budget exhaustion),
    #: ``"podem"`` (the legacy staged oracle alone), or ``"both"`` (run
    #: both engines on every candidate, tally agreement in the triage
    #: counters, and raise on any hard disagreement — the cross-check
    #: mode for tests and bring-up).
    permissibility: str = "triage"
    #: Short-list size for the PG_C re-estimation during selection.
    preselect: int = 10
    #: Minimum accepted power gain (the paper stops at "no reduction").
    min_gain: float = 1e-9
    #: Early termination from §4.2: stop once a move's gain falls below
    #: this fraction of the *initial* power ("one could terminate the
    #: program when the power reduction by the current substitutions is
    #: below a threshold").  ``None`` disables it.
    gain_threshold_fraction: Optional[float] = None
    #: Hard caps to bound runtime on large circuits.
    max_moves: Optional[int] = None
    max_rounds: int = 50
    #: Use the incremental engine: persistent candidate workspace with the
    #: batched observability kernel, in-place STA updates after each move,
    #: and trial-delay checks without copying the netlist.  Produces the
    #: same move sequence as the legacy from-scratch paths; ``False``
    #: selects those paths (for A/B benchmarks and identity tests).
    incremental: bool = True
    #: Structural self-check after every move (slows things; for tests).
    #: With the incremental engine this also verifies the in-place STA
    #: against a from-scratch rebuild after every move.
    self_check: bool = False
    #: Diagnostics-grade superset of ``self_check``: after every move run
    #: the :mod:`repro.lint` rule pack and cross-check every incremental
    #: structure (simulation values, probabilities, STA, observability
    #: maps, pair tables) against from-scratch rebuilds, raising
    #: :class:`~repro.errors.LintError` with the offending move and rule
    #: ID on any divergence.  Read-only: the applied move sequence is
    #: bit-identical to an unsanitized run.
    sanitize: bool = False
    #: A :class:`repro.telemetry.Tracer` recording per-round and per-move
    #: events into a structured :class:`~repro.telemetry.RunTrace`
    #: (available as ``OptimizeResult.trace`` afterwards).  The tracer is
    #: strictly read-only, so a traced run applies exactly the moves an
    #: untraced run would; ``None`` (the default) records nothing and
    #: costs nothing.
    trace: Optional[object] = None
    #: Print one line per applied substitution (long-run progress).
    verbose: bool = False
    #: Merge structurally identical gates before optimizing (always
    #: permissible; keeps POWDER's budget for the interesting moves).  Off
    #: by default: the paper's protocol starts from the mapped netlist
    #: as-is.
    dedupe_first: bool = False
    #: Prune candidate work with the static fact base
    #: (:class:`repro.analysis.AnalysisSuite`, shared via the context's
    #: ``analysis`` slot): drop pool candidates sourced from proven-
    #: unobservable gates, and collapse pointwise-identical candidates
    #: during selection — equivalence-class twins and constant-source
    #: duplicates reuse the first twin's full-gain breakdown (same dying
    #: region required) instead of paying the PG_C overlay simulation
    #: again.  The collapse keeps chunk membership intact and reproduces
    #: the exact gain floats a fresh evaluation would compute, so the
    #: selected move sequence stays bit-identical to a prune-off run
    #: (the golden-trace identity suite pins this on the four bundled
    #: benchmarks).  Collapsing is disabled under a delay constraint,
    #: where equivalent signals may differ in arrival time.  Work-avoided
    #: tallies land in the telemetry counters (``prune_*``).
    analysis_prune: bool = False
    #: Windowed mode for large netlists: partition into radius-bounded
    #: TFI/TFO windows (:mod:`repro.partition`), optimize each window on
    #: a ``multiprocessing`` pool, and merge the non-conflicting move
    #: lists deterministically (:mod:`repro.transform.windowed`).
    #: Equivalence-preserving like the flat run; window-local *power*
    #: accounting is approximate (boundary inputs are sampled with the
    #: parent's marginal probabilities), so the final metrics are
    #: recomputed from scratch on the merged netlist.
    windowed: bool = False
    #: Windowed mode: maximum logic gates per window.
    window_size: int = 80
    #: Windowed mode: extraction radius (fanin+fanout steps from seed).
    window_radius: int = 3
    #: Windowed mode: pool worker count; 1 runs windows inline (no pool,
    #: same move sequence as a 1-worker pool).
    jobs: int = 1
    #: Windowed mode: prove input/output equivalence of the merged
    #: netlist against the pre-run netlist (slow; for tests and bring-up).
    window_verify: bool = False

    def __post_init__(self):
        """Reject configurations that would otherwise fail deep in the run."""
        if (
            not isinstance(self.objective, CostModel)
            and self.objective not in COST_MODELS
        ):
            raise ValueError(
                f"unknown optimization objective {self.objective!r}; "
                f"registered objectives: {', '.join(sorted(COST_MODELS))}"
            )
        if self.repeat < 0:
            raise ValueError(
                f"repeat must be non-negative, got {self.repeat}"
            )
        if self.preselect < 0:
            raise ValueError(
                f"preselect must be non-negative, got {self.preselect}"
            )
        if self.delay_limit is not None and self.delay_slack_percent is not None:
            raise ValueError(
                "delay_limit and delay_slack_percent are mutually "
                "exclusive; set at most one"
            )
        if self.permissibility not in ("triage", "podem", "both"):
            raise ValueError(
                f"unknown permissibility engine {self.permissibility!r}; "
                f"choose 'triage', 'podem', or 'both'"
            )
        if self.window_size < 1:
            raise ValueError(
                f"window_size must be positive, got {self.window_size}"
            )
        if self.window_radius < 1:
            raise ValueError(
                f"window_radius must be positive, got {self.window_radius}"
            )
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive, got {self.jobs}")
        if self.windowed:
            if self.delay_limit is not None or self.delay_slack_percent is not None:
                raise ValueError(
                    "windowed optimization does not support delay "
                    "constraints: window-local slack cannot see external "
                    "paths, so the constraint would not be enforced"
                )
            if self.input_temporal_specs:
                raise ValueError(
                    "windowed optimization does not support temporal input "
                    "specs: lag-1 correlations do not project onto window "
                    "boundaries"
                )
            if self.trace is not None:
                raise ValueError(
                    "windowed optimization does not support tracing: "
                    "per-window traces do not compose into one RunTrace"
                )

    # ------------------------------------------------------------------
    # Canonical JSON round-trip (the `powder serve` wire format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-representable form of every configuration field.

        The inverse of :meth:`from_dict`; ``from_dict(to_dict(o))``
        reproduces ``o`` exactly.  A :class:`~repro.transform.cost.CostModel`
        objective serializes as its registered name, ``candidates`` nests
        as a :meth:`CandidateOptions.to_dict` dictionary, and temporal
        input specs flatten to ``{"p1": ..., "activity": ...}`` records.
        ``trace`` is the one excluded field: a live tracer is run state,
        not configuration, so options carrying one refuse to serialize.
        """
        if self.trace is not None:
            raise ValueError(
                "options carrying a live tracer do not serialize; "
                "set trace=None and attach the tracer after from_dict"
            )
        from dataclasses import fields as _fields

        data: dict = {}
        for entry in _fields(self):
            if entry.name == "trace":
                continue
            value = getattr(self, entry.name)
            if entry.name == "objective":
                value = getattr(value, "name", value)
            elif entry.name == "candidates":
                value = value.to_dict()
            elif entry.name == "input_probs" and value is not None:
                value = {name: float(p) for name, p in value.items()}
            elif entry.name == "input_temporal_specs" and value is not None:
                value = {
                    name: {"p1": spec.p1, "activity": spec.activity}
                    for name, spec in value.items()
                }
            data[entry.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "OptimizeOptions":
        """Rebuild options from :meth:`to_dict` output.

        Unknown keys raise :class:`ValueError` (a mistyped knob must not
        silently fall back to its default), and the reconstructed options
        go through ``__post_init__`` validation like any other.
        """
        from dataclasses import fields as _fields

        if data.get("trace") is not None:
            raise ValueError("trace does not round-trip through JSON")
        known = {entry.name for entry in _fields(cls)} - {"trace"}
        unknown = sorted(set(data) - known - {"trace"})
        if unknown:
            raise ValueError(
                f"unknown OptimizeOptions field(s): {', '.join(unknown)}"
            )
        kwargs = {key: value for key, value in data.items() if key != "trace"}
        if "candidates" in kwargs:
            kwargs["candidates"] = CandidateOptions.from_dict(
                kwargs["candidates"]
            )
        if kwargs.get("input_temporal_specs") is not None:
            from repro.power.temporal import TemporalSpec

            kwargs["input_temporal_specs"] = {
                name: TemporalSpec(**spec)
                for name, spec in kwargs["input_temporal_specs"].items()
            }
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """Byte-stable canonical JSON of :meth:`to_dict` (cache keying)."""
        from repro.telemetry.trace import deterministic_json

        return deterministic_json(self.to_dict())


@dataclass
class OptimizeResult:
    """Everything the experiment harness needs about one run."""

    netlist: Netlist
    initial_power: float
    final_power: float
    initial_area: float
    final_area: float
    initial_delay: float
    final_delay: float
    moves: list[MoveRecord]
    rounds: int
    rejected_delay: int
    rejected_not_permissible: int
    rejected_aborted: int
    rejected_stale: int
    runtime_seconds: float
    delay_limit: Optional[float]
    #: Wall-clock seconds per loop phase (candidates / select / timing /
    #: atpg / apply).
    phase_seconds: dict = field(default_factory=dict)
    #: The finished :class:`~repro.telemetry.RunTrace` when the run was
    #: traced via ``OptimizeOptions(trace=...)``; ``None`` otherwise.
    trace: Optional[object] = None

    @property
    def power_reduction_percent(self) -> float:
        if self.initial_power == 0:
            return 0.0
        return 100.0 * (1.0 - self.final_power / self.initial_power)

    @property
    def area_reduction_percent(self) -> float:
        if self.initial_area == 0:
            return 0.0
        return 100.0 * (1.0 - self.final_area / self.initial_area)

    @property
    def delay_reduction_percent(self) -> float:
        if self.initial_delay == 0:
            return 0.0
        return 100.0 * (1.0 - self.final_delay / self.initial_delay)

    def summary(self) -> str:
        lines = [
            f"POWDER result for {self.netlist.name!r}:",
            f"  power : {self.initial_power:10.4f} -> {self.final_power:10.4f}"
            f"  ({self.power_reduction_percent:+.1f}% reduction)",
            f"  area  : {self.initial_area:10.1f} -> {self.final_area:10.1f}"
            f"  ({self.area_reduction_percent:+.1f}% reduction)",
            f"  delay : {self.initial_delay:10.3f} -> {self.final_delay:10.3f}",
            f"  moves : {len(self.moves)} in {self.rounds} rounds, "
            f"{self.runtime_seconds:.2f}s",
        ]
        if self.phase_seconds:
            parts = ", ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in self.phase_seconds.items()
            )
            lines.append(f"  phases: {parts}")
        if self.moves:
            lines.append(format_class_table(self.moves))
        return "\n".join(lines)


class PowerOptimizer:
    """Stateful POWDER run over one netlist (modified in place).

    The engine behind the pipeline's ``powder`` pass.  Shared analysis
    state (estimator, constraint, STA, candidate workspace) lives in an
    :class:`~repro.pipeline.OptimizationContext`: construct with
    ``PowerOptimizer(netlist, options)`` for a private context (the
    legacy direct entry point), or ``PowerOptimizer(context=ctx)`` to
    run over a pipeline's shared one.
    """

    def __init__(
        self,
        netlist: Optional[Netlist] = None,
        options: Optional[OptimizeOptions] = None,
        *,
        context=None,
    ):
        if context is None:
            if netlist is None:
                raise TypeError("pass a netlist or an OptimizationContext")
            from repro.pipeline.context import OptimizationContext

            context = OptimizationContext(netlist, options or OptimizeOptions())
        elif netlist is not None or options is not None:
            raise TypeError(
                "pass either (netlist, options) or a context, not both"
            )
        self.ctx = context
        self.netlist = context.netlist
        self.options = context.options
        opts = self.options
        self.cost_model = resolve_cost_model(opts.objective)
        self.deduped: list[tuple[str, str]] = []
        if opts.dedupe_first:
            if context.dedupe_pairs is None:
                from repro.transform.dedupe import merge_duplicate_gates

                context.dedupe_pairs = merge_duplicate_gates(self.netlist)
            self.deduped = list(context.dedupe_pairs)
        self.initial_delay = TimingAnalysis(self.netlist).circuit_delay
        self.moves: list[MoveRecord] = []
        self._gain_floor = opts.min_gain
        self.rejected_delay = 0
        self.rejected_not_permissible = 0
        self.rejected_aborted = 0
        self.rejected_stale = 0
        #: ``analysis_prune`` work avoided, by reason: pool candidates
        #: dropped over unobservable sources, and full-gain evaluations
        #: skipped by the selection-time collapse (constant-source twins
        #: and equivalence-class duplicates, tallied separately).
        self.prune_counters = {
            "constant_sources": 0,
            "unobservable_sources": 0,
            "equiv_duplicates": 0,
        }
        self._round = 0
        #: Telemetry hooks; every call site is guarded by ``is not None``
        #: so the untraced path (the default) pays nothing.
        self.tracer = opts.trace
        self.sanitizer = None
        if opts.sanitize:
            from repro.lint.sanitizer import TransformSanitizer

            self.sanitizer = TransformSanitizer(self)
        self.phase_seconds = {
            "candidates": 0.0,
            "select": 0.0,
            "timing": 0.0,
            "atpg": 0.0,
            "apply": 0.0,
        }

    # ------------------------------------------------------------------
    # Shared analyses (owned by the context, built on first use)
    # ------------------------------------------------------------------
    @property
    def estimator(self):
        """power_estimate(netlist): committed probabilities for all gates."""
        return self.ctx.estimator

    @property
    def constraint(self):
        return self.ctx.constraint

    @property
    def timing(self):
        return self.ctx.timing

    @property
    def _workspace(self):
        """The persistent candidate workspace, ``None`` until first built."""
        return self.ctx.peek("workspace")

    # ------------------------------------------------------------------
    # Figure-5 primitives
    # ------------------------------------------------------------------
    def get_candidate_substitutions(self) -> list[Candidate]:
        opts = self.options
        facts = None
        if opts.analysis_prune:
            facts = self.ctx.get("analysis").facts
        if not opts.incremental:
            pool = generate_candidates(self.estimator, opts.candidates)
        else:
            pool = self.ctx.workspace.generate(opts.candidates)
        if facts is not None:
            pool = self._prune_pool(pool, facts)
        return pool

    def _prune_pool(self, pool: list[Candidate], facts) -> list[Candidate]:
        """Drop candidates sourced from proven-unobservable gates.

        Runs *after* full generation (post-filter): masking sources
        before the per-target ``max_per_target`` / ``max_total``
        truncation would backfill new candidates into the pool and
        change the move sequence.  Every drop is counted.

        Unobservable sources are dead logic the substitution would wire
        back to life; proven-*constant* sources are deliberately NOT
        dropped here — a constant signal is a genuinely cheap driver the
        baseline loop happily selects, so they are collapsed during
        selection instead (one evaluation per constant value, see
        :meth:`_selection_tokens`).
        """
        counters = self.prune_counters
        unobservable = facts.unobservable_names()
        if not unobservable:
            return pool
        kept: list[Candidate] = []
        for candidate in pool:
            sub = candidate.substitution
            sources = [s for s in (sub.source1, sub.source2) if s]
            if any(s in unobservable for s in sources):
                counters["unobservable_sources"] += 1
                continue
            kept.append(candidate)
        return kept

    def _selection_tokens(self) -> Optional[dict]:
        """Current signal-identity tokens for selection-time collapsing.

        Equivalence-class tokens plus one virtual class for every
        proven-constant gate: a constant-``v`` source is pointwise
        ``<const> ^ v`` (``<const>`` being the all-zero virtual root),
        so *all* constant-source candidates of one shape share a single
        evaluation regardless of which constant gate they read.

        ``None`` unless ``analysis_prune`` is on and no delay constraint
        binds (equivalent signals may differ in arrival time).  Read per
        selection call: the suite refreshes incrementally after each
        applied move, and a token is only trusted for the *current*
        structural state.
        """
        if not self.options.analysis_prune or self.constraint is not None:
            return None
        facts = self.ctx.get("analysis").facts
        tokens = dict(facts.equiv_tokens())
        for name, value in facts.constant_values().items():
            tokens[name] = (_CONST_ROOT, value)
        return tokens

    @staticmethod
    def _twin_key(sub: Substitution, tokens: dict) -> Optional[tuple]:
        """Evaluation-sharing key: equal keys mean the substituting
        signals are pointwise-identical.

        Each source is normalised to (class representative, effective
        inversion): a parity-1 class member read uninverted equals the
        representative read inverted, so both collapse onto one key.
        ``None`` when no source carries a token — distinct candidates
        can then never collide (the key would pin the exact sources).
        """
        if sub.is_constant:
            return None
        token1 = tokens.get(sub.source1)
        token2 = tokens.get(sub.source2) if sub.source2 else None
        if token1 is None and token2 is None:
            return None
        root1, parity1 = token1 if token1 else (sub.source1, 0)
        eff1 = bool(sub.invert1) ^ bool(parity1)
        if sub.source2:
            root2, parity2 = token2 if token2 else (sub.source2, 0)
            eff2 = bool(sub.invert2) ^ bool(parity2)
        else:
            root2, eff2 = None, False
        return (
            sub.kind,
            sub.target,
            sub.branch,
            sub.new_cell,
            root1,
            eff1,
            root2,
            eff2,
        )

    def _objective_score(self, candidate: Candidate) -> float:
        """How much the configured objective improves (> floor = accept)."""
        return self.cost_model.score(self, candidate)

    def _objective_floor(self) -> float:
        return self.cost_model.floor(self)

    def select_power_red_subst(
        self, pool: list[Candidate]
    ) -> Optional[Candidate]:
        """Pick the best candidate by the objective from the pool's head.

        Examines candidates in quick-gain order, chunk by chunk: the first
        chunk whose best score clears the floor wins.  Examined losers are
        dropped from the pool, guaranteeing progress.

        With ``analysis_prune``, full-gain evaluations are shared between
        equivalence-class twins within this call (the netlist is fixed
        here, so a memoised breakdown stays exact): a twin reuses the
        evaluated breakdown only when its own dying region matches, the
        one place the source's *position* — not its value — enters the
        gain.  Chunk membership is untouched, and a reused breakdown
        reproduces the exact floats a fresh evaluation would produce, so
        selection is bit-identical to the unpruned loop.
        """
        opts = self.options
        tokens = self._selection_tokens()
        memo: dict[tuple, GainBreakdown] = {}
        while pool:
            chunk: list[tuple[int, Candidate]] = []
            index = 0
            while index < len(pool) and len(chunk) < opts.preselect:
                candidate = pool[index]
                if not candidate.substitution.validate_against(self.netlist):
                    self.rejected_stale += 1
                    if self.tracer is not None:
                        self.tracer.record_rejection("stale")
                    pool.pop(index)
                    continue
                chunk.append((index, candidate))
                index += 1
            if not chunk:
                return None
            if self.tracer is not None:
                self.tracer.record_shortlist(len(chunk))
            best: Optional[tuple[int, Candidate, float]] = None
            for position, candidate in chunk:
                try:
                    candidate.gain = self._evaluate_gain(
                        candidate.substitution, tokens, memo
                    )
                except TransformError:
                    self.rejected_stale += 1
                    if self.tracer is not None:
                        self.tracer.record_rejection("stale")
                    continue
                score = self._objective_score(candidate)
                if best is None or score > best[2]:
                    best = (position, candidate, score)
            if best is not None and best[2] > self._objective_floor():
                pool.pop(best[0])
                return best[1]
            # Nothing improving in this chunk: discard and move on.
            for position, _candidate in sorted(chunk, reverse=True):
                pool.pop(position)
        return None

    def _evaluate_gain(
        self,
        substitution: Substitution,
        tokens: Optional[dict],
        memo: dict,
    ) -> GainBreakdown:
        """``full_gain``, sharing evaluations between proven twins.

        A memo hit is honoured only when the candidate's own dying
        region (recomputed — it can raise exactly where ``full_gain``
        would) equals the evaluated twin's: regions diverge when one
        source lies inside the target's fanout-free cone, and with them
        PG_A, PG_C, and the area delta.  On a match the twin's
        breakdown is cloned — the PG_C overlay simulation, the dominant
        cost here, is skipped.
        """
        key = (
            self._twin_key(substitution, tokens)
            if tokens is not None
            else None
        )
        if key is not None:
            entry = memo.get(key)
            if entry is not None:
                region = predict_dying_region(self.netlist, substitution)
                if [gate.name for gate in region] == entry.dying:
                    if _CONST_ROOT in (key[4], key[6]):
                        self.prune_counters["constant_sources"] += 1
                    else:
                        self.prune_counters["equiv_duplicates"] += 1
                    return GainBreakdown(
                        pg_a=entry.pg_a,
                        pg_b=entry.pg_b,
                        pg_c=entry.pg_c,
                        includes_pg_c=entry.includes_pg_c,
                        area_delta=entry.area_delta,
                        dying=list(entry.dying),
                    )
        gain = full_gain(self.estimator, substitution)
        if key is not None:
            memo[key] = gain
        return gain

    def check_delay(self, substitution: Substitution) -> bool:
        """True when the move respects the delay constraint (§3.4)."""
        if self.constraint is None:
            return True
        netlist = self.netlist
        target = netlist.gate(substitution.target)
        if not substitution.is_constant:
            # Tie cells arrive at t=0 and never slow down; the quick filter
            # only applies to real signal sources.
            substituting = netlist.gate(substitution.source1)
            added_load = _added_load(netlist, substitution)
            new_tau = new_res = 0.0
            if substitution.kind in (OS3, IS3):
                cell = netlist.library[substitution.new_cell]
                new_tau = max(p.tau for p in cell.pins)
                new_res = max(p.resistance for p in cell.pins)
            if quick_delay_reject(
                self.timing, substituting, target, added_load, new_tau, new_res
            ):
                return False
        # Exact verdict.  A stale candidate can fail to apply (e.g. earlier
        # moves made it cycle-creating); reject it.
        if self.options.incremental:
            # what_if evaluates the rewired netlist in place; None means
            # the move is stale or cycle-creating (what apply would raise).
            verdict = self.timing.what_if(substitution)
            if verdict is None:
                return False
            return verdict <= self.constraint.limit + 1e-9
        try:
            trial, _applied = apply_to_copy(netlist, substitution)
        except (TransformError, NetlistError):
            return False
        return (
            TimingAnalysis(trial).circuit_delay
            <= self.constraint.limit + 1e-9
        )

    @property
    def triage_checker(self):
        """The triage permissibility engine, ``None`` until first built."""
        return self.ctx.peek("triage")

    def check_candidate(self, substitution: Substitution) -> str:
        mode = self.options.permissibility
        if mode == "podem":
            result = check_candidate(
                self.netlist,
                substitution,
                backtrack_limit=self.options.backtrack_limit,
            )
        else:
            triage = self.ctx.get("triage")
            result = triage.check(substitution)
            if mode == "both":
                result = self._cross_check_permissibility(
                    triage, substitution, result
                )
        if self.tracer is not None:
            self.tracer.record_atpg(result)
        return result.status

    def _cross_check_permissibility(self, triage, substitution, result):
        """``permissibility="both"``: confirm triage against the legacy oracle."""
        legacy = check_candidate(
            self.netlist,
            substitution,
            backtrack_limit=self.options.backtrack_limit,
        )
        decided = (PERMISSIBLE, NOT_PERMISSIBLE)
        if result.status in decided and legacy.status in decided:
            if result.status != legacy.status:
                triage.counters["podem_disagree"] += 1
                raise TransformError(
                    f"permissibility engines disagree on {substitution}: "
                    f"triage says {result.status} (stage {result.stage!r}), "
                    f"PODEM says {legacy.status} (stage {legacy.stage!r})"
                )
            triage.counters["podem_agree"] += 1
            return result
        # One engine aborted: the decided verdict (if any) wins.
        return result if result.status in decided else legacy

    def perform_substitution(self, candidate: Candidate) -> MoveRecord:
        power_before = self.estimator.total()
        area_before = self.netlist.total_area()
        applied = apply_substitution(self.netlist, candidate.substitution)
        # power_estimate_update: refresh probabilities in the TFO region.
        roots = [
            self.netlist.gate(name)
            for name in applied.resim_roots
            if name in self.netlist.gates
        ]
        changed = self.estimator.update_after_edit(roots)
        if self.options.incremental:
            dirty = dict.fromkeys(applied.dirty_gate_names(self.netlist))
            for name in changed:
                if name in self.netlist.gates:
                    dirty.setdefault(name)
            dirty_gates = [self.netlist.gate(n) for n in dirty]
            self.timing.update_after_edit(dirty_gates)
            workspace = self._workspace
            if workspace is not None:
                workspace.invalidate(dirty_gates)
            analysis = self.ctx.peek("analysis")
            if analysis is not None:
                analysis.update_after_edit(dirty)
        else:
            self.ctx.put(
                "timing",
                TimingAnalysis(
                    self.netlist,
                    self.constraint.limit if self.constraint else None,
                ),
            )
        if self.options.self_check:
            check_netlist(self.netlist)
            if self.options.incremental:
                self._verify_incremental_timing()
        if self.sanitizer is not None:
            self.sanitizer.after_move(applied, len(self.moves) + 1)
        record = MoveRecord(
            substitution=candidate.substitution,
            predicted=candidate.gain,
            measured_power_gain=power_before - self.estimator.total(),
            measured_area_delta=self.netlist.total_area() - area_before,
            round_index=self._round,
            circuit_delay_after=self.timing.circuit_delay,
        )
        self.moves.append(record)
        if self.tracer is not None:
            self.tracer.record_move(record)
        if self.options.verbose:
            print(
                f"  [{len(self.moves):4d}] {record.substitution}  "
                f"gain {record.measured_power_gain:+.4f}  "
                f"area {record.measured_area_delta:+.0f}"
            )
        return record

    def _verify_incremental_timing(self) -> None:
        """Assert the in-place STA equals a from-scratch rebuild exactly."""
        fresh = TimingAnalysis(
            self.netlist,
            self.constraint.limit if self.constraint else None,
        )
        if (
            self.timing.arrival != fresh.arrival
            or self.timing.delay_of != fresh.delay_of
            or self.timing.circuit_delay != fresh.circuit_delay
        ):
            raise TransformError(
                "incremental STA diverged from a from-scratch rebuild"
            )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> OptimizeResult:
        opts = self.options
        start = time.perf_counter()
        if self.tracer is not None:
            self.tracer.begin_run(self)
        initial_power = self.estimator.total()
        initial_area = self.netlist.total_area()
        # §4.2 early termination: lift the acceptance floor to a fraction
        # of the initial power when requested.
        self._gain_floor = opts.min_gain
        if opts.gain_threshold_fraction is not None:
            self._gain_floor = max(
                self._gain_floor,
                opts.gain_threshold_fraction * initial_power,
            )

        phases = self.phase_seconds
        while True:
            self._round += 1
            tick = time.perf_counter()
            pool = self.get_candidate_substitutions()
            phases["candidates"] += time.perf_counter() - tick
            if self.tracer is not None:
                self.tracer.begin_round(self._round, pool)
            performed_this_round = 0
            budget = opts.repeat
            while budget > 0 and pool:
                if opts.max_moves is not None and len(self.moves) >= opts.max_moves:
                    break
                tick = time.perf_counter()
                good = self.select_power_red_subst(pool)
                phases["select"] += time.perf_counter() - tick
                if good is None:
                    break
                tick = time.perf_counter()
                delay_ok = self.check_delay(good.substitution)
                phases["timing"] += time.perf_counter() - tick
                if not delay_ok:
                    self.rejected_delay += 1
                    if self.tracer is not None:
                        self.tracer.record_rejection("delay")
                    continue
                tick = time.perf_counter()
                status = self.check_candidate(good.substitution)
                phases["atpg"] += time.perf_counter() - tick
                if status == ABORTED:
                    self.rejected_aborted += 1
                    if self.tracer is not None:
                        self.tracer.record_rejection("aborted")
                    continue
                if status == NOT_PERMISSIBLE:
                    self.rejected_not_permissible += 1
                    if self.tracer is not None:
                        self.tracer.record_rejection("not_permissible")
                    continue
                tick = time.perf_counter()
                self.perform_substitution(good)
                phases["apply"] += time.perf_counter() - tick
                performed_this_round += 1
                budget -= 1
            if self.tracer is not None:
                self.tracer.end_round()
            stop = (
                performed_this_round == 0
                or self._round >= opts.max_rounds
                or (
                    opts.max_moves is not None
                    and len(self.moves) >= opts.max_moves
                )
            )
            if stop:
                break

        final_timing = TimingAnalysis(self.netlist)
        result = OptimizeResult(
            netlist=self.netlist,
            initial_power=initial_power,
            final_power=self.estimator.total(),
            initial_area=initial_area,
            final_area=self.netlist.total_area(),
            initial_delay=self.initial_delay,
            final_delay=final_timing.circuit_delay,
            moves=self.moves,
            rounds=self._round,
            rejected_delay=self.rejected_delay,
            rejected_not_permissible=self.rejected_not_permissible,
            rejected_aborted=self.rejected_aborted,
            rejected_stale=self.rejected_stale,
            runtime_seconds=time.perf_counter() - start,
            delay_limit=self.constraint.limit if self.constraint else None,
            phase_seconds=dict(self.phase_seconds),
        )
        if self.tracer is not None:
            result.trace = self.tracer.end_run(self, result)
        return result


def _added_load(netlist: Netlist, substitution: Substitution) -> float:
    """Capacitance newly presented to the substituting signal."""
    if substitution.kind in (OS3, IS3):
        cell = netlist.library[substitution.new_cell]
        return cell.pins[0].load
    if substitution.is_output_substitution():
        return netlist.load_of(netlist.gate(substitution.target))
    sink_name, pin = substitution.branch
    return netlist.gate(sink_name).cell.pins[pin].load


def power_optimize(
    netlist: Netlist,
    options: Optional[OptimizeOptions] = None,
    **kwargs,
) -> OptimizeResult:
    """Run POWDER on ``netlist`` (modified in place).

    Keyword arguments are convenience overrides for
    :class:`OptimizeOptions` fields, e.g. ``power_optimize(nl, repeat=10,
    delay_slack_percent=0)``.

    This is a thin wrapper over the default pass pipeline
    (``dedupe``, when ``dedupe_first`` is set, followed by ``powder``)
    scheduled by a :class:`repro.pipeline.PassManager`; it applies a
    move sequence bit-identical to driving :class:`PowerOptimizer`
    directly.  Compose custom pipelines with
    :func:`repro.pipeline.run_pipeline`.
    """
    if options is None:
        options = OptimizeOptions(**kwargs)
    elif kwargs:
        raise TypeError("pass either an OptimizeOptions or keyword overrides")
    from repro.pipeline.context import OptimizationContext
    from repro.pipeline.manager import PassManager
    from repro.pipeline.passes import default_pipeline

    context = OptimizationContext(netlist, options)
    outcome = PassManager().run(context, default_pipeline(options))
    result = outcome.optimize_result
    if result is None:  # pragma: no cover - default_pipeline always powders
        raise TransformError("default pipeline produced no optimize result")
    return result
