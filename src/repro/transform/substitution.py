"""The substitution move model (Definitions 1 and 2 of the paper).

A :class:`Substitution` is a *description* of a move — it names gates, so it
can be evaluated against a netlist, applied to it, or applied to a copy for
trial checks.  Classes:

- ``OS2(a, b)`` — all fanout of stem ``a`` moves to signal ``b``,
- ``IS2(a@sink.pin, b)`` — one branch of ``a`` moves to ``b``,
- ``OS3(a, cell(b, c))`` — stem ``a`` replaced by a *new* library gate,
- ``IS3(a@sink.pin, cell(b, c))`` — one branch replaced by a new gate.

Substituting with the inverted signal (``invert1``) inserts the library's
inverter in front; OS3/IS3 insert the named 2-input ``new_cell``.  Per the
paper, only cells present in the library may be inserted.

Application performs the rewiring, removes the logic that died (the paper's
``Dom(a)`` region), and reports everything the caller needs to update power
and timing state incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TransformError
from repro.netlist.netlist import Gate, Netlist

OS2 = "OS2"
IS2 = "IS2"
OS3 = "OS3"
IS3 = "IS3"

_CLASSES = (OS2, IS2, OS3, IS3)


@dataclass(frozen=True)
class Substitution:
    """A candidate (or applied) signal substitution."""

    kind: str  # one of OS2 / IS2 / OS3 / IS3
    target: str  # substituted stem gate name ("a")
    source1: str  # substituting signal ("b"); "" for constant substitution
    invert1: bool = False
    # For IS2/IS3: the substituted branch (sink gate name, pin index).
    branch: Optional[tuple[str, int]] = None
    # For OS3/IS3: second source and the inserted 2-input cell.
    source2: Optional[str] = None
    invert2: bool = False
    new_cell: Optional[str] = None
    #: OS2/IS2 substitution by a constant (redundancy removal): the target
    #: or branch is rewired to a library tie cell driving this value.
    constant: Optional[int] = None

    def __post_init__(self):
        if self.kind not in _CLASSES:
            raise TransformError(f"unknown substitution class {self.kind!r}")
        if self.kind in (IS2, IS3) and self.branch is None:
            raise TransformError(f"{self.kind} requires a branch")
        if self.kind in (OS2, OS3) and self.branch is not None:
            raise TransformError(f"{self.kind} must not name a branch")
        if self.kind in (OS3, IS3):
            if self.source2 is None or self.new_cell is None:
                raise TransformError(f"{self.kind} requires source2 and new_cell")
        elif self.source2 is not None or self.new_cell is not None:
            raise TransformError(f"{self.kind} must not carry source2/new_cell")
        if self.constant is not None:
            if self.kind not in (OS2, IS2):
                raise TransformError("constant substitution is OS2/IS2 only")
            if self.constant not in (0, 1):
                raise TransformError("constant must be 0 or 1")
            if self.source1 or self.invert1:
                raise TransformError(
                    "constant substitution must not name a source signal"
                )
        elif not self.source1:
            raise TransformError("substitution requires a source signal")

    # ------------------------------------------------------------------
    def candidate_id(self) -> str:
        """Canonical identity string, the optimizer's tie-break key.

        Candidates with equal quick gain are ordered by this string, so a
        run's move sequence depends only on the netlist and the options —
        never on float-comparison quirks, hash seeds, or the incidental
        order candidate generation happened to emit ties in.  The format
        is content-derived and stable across Python versions.
        """
        branch = f"{self.branch[0]}.{self.branch[1]}" if self.branch else ""
        return "|".join((
            self.kind,
            self.target,
            self.source1,
            "~" if self.invert1 else "",
            branch,
            self.source2 or "",
            "~" if self.invert2 else "",
            self.new_cell or "",
            "" if self.constant is None else str(self.constant),
        ))

    def is_output_substitution(self) -> bool:
        return self.kind in (OS2, OS3)

    @property
    def is_constant(self) -> bool:
        return self.constant is not None

    def source_names(self) -> tuple[str, ...]:
        if self.constant is not None:
            return ()
        if self.source2 is None:
            return (self.source1,)
        return (self.source1, self.source2)

    def validate_against(self, netlist: Netlist) -> bool:
        """True when every named gate/branch still exists unchanged."""
        if self.target not in netlist.gates:
            return False
        if any(s not in netlist.gates for s in self.source_names()):
            return False
        if self.constant is not None:
            if netlist.library is None or netlist.library.constant(
                bool(self.constant)
            ) is None:
                return False
        if self.branch is not None:
            sink_name, pin = self.branch
            sink = netlist.gates.get(sink_name)
            if sink is None or pin >= len(sink.fanins):
                return False
            if sink.fanins[pin].name != self.target:
                return False
        if self.new_cell is not None:
            if netlist.library is None or self.new_cell not in netlist.library:
                return False
        return True

    def __str__(self) -> str:
        inv1 = "!" if self.invert1 else ""
        src = str(self.constant) if self.constant is not None else (
            f"{inv1}{self.source1}"
        )
        if self.kind == OS2:
            return f"OS2({self.target} <- {src})"
        if self.kind == IS2:
            sink, pin = self.branch
            return f"IS2({self.target}@{sink}.{pin} <- {src})"
        inv2 = "!" if self.invert2 else ""
        core = f"{self.new_cell}({inv1}{self.source1}, {inv2}{self.source2})"
        if self.kind == OS3:
            return f"OS3({self.target} <- {core})"
        sink, pin = self.branch
        return f"IS3({self.target}@{sink}.{pin} <- {core})"


@dataclass
class AppliedSubstitution:
    """What actually happened when a substitution was performed."""

    substitution: Substitution
    #: Gates added (inverters for inverted sources, the OS3/IS3 cell).
    added: list[str]
    #: Logic gates removed by the dead sweep (the Dom(a) region).
    removed: list[str]
    #: Re-simulation roots: gates whose inputs changed.
    resim_roots: list[str]
    #: Net area change (added minus removed).
    area_delta: float
    #: Surviving gates that lost fanout branches into the removed region —
    #: together with ``resim_roots``, the sources, and the target these form
    #: the dirty set incremental caches must invalidate.
    boundary: list[str] = field(default_factory=list)
    #: The gate now driving the substituted load (source, inverter, new
    #: OS3/IS3 gate, or tie cell); "" when it died in the sweep.
    substituting: str = ""

    def dirty_gate_names(self, netlist: Netlist) -> list[str]:
        """Live gates whose value, fanins, fanouts, or PO binding changed."""
        names = dict.fromkeys(self.resim_roots)
        for name in self.boundary:
            names.setdefault(name)
        for name in self.substitution.source_names():
            names.setdefault(name)
        if self.substituting:
            names.setdefault(self.substituting)
        names.setdefault(self.substitution.target)
        return [n for n in names if n in netlist.gates]


def _tie_gate(netlist: Netlist, value: int, added: list[str]) -> Gate:
    """Find or create a library tie gate driving the constant ``value``."""
    cell = netlist.library.constant(bool(value))
    for gate in netlist.logic_gates():
        if gate.cell is cell:
            return gate
    gate = netlist.add_gate(cell, [], name=netlist.fresh_name(f"powder_tie{value}"))
    added.append(gate.name)
    return gate


def _effective_source(
    netlist: Netlist, source: Gate, invert: bool, added: list[str]
) -> Gate:
    """The signal to wire in: ``source`` or a fresh inverter on it."""
    if not invert:
        return source
    if netlist.library is None:
        raise TransformError("inverted substitution requires a library")
    inv_cell = netlist.library.inverter()
    gate = netlist.add_gate(
        inv_cell, [source], name=netlist.fresh_name("powder_inv")
    )
    added.append(gate.name)
    return gate


def apply_substitution(
    netlist: Netlist, substitution: Substitution
) -> AppliedSubstitution:
    """Perform the substitution in place.

    Raises :class:`TransformError` when the move no longer matches the
    netlist (stale candidate) or would create a cycle.
    """
    if not substitution.validate_against(netlist):
        raise TransformError(f"stale substitution {substitution}")
    target = netlist.gate(substitution.target)
    area_before = netlist.total_area()
    added: list[str] = []

    if substitution.is_constant:
        substituting = _tie_gate(netlist, substitution.constant, added)
    elif substitution.kind in (OS3, IS3):
        source = netlist.gate(substitution.source1)
        source2 = netlist.gate(substitution.source2)
        eff1 = _effective_source(netlist, source, substitution.invert1, added)
        eff2 = _effective_source(netlist, source2, substitution.invert2, added)
        cell = netlist.library[substitution.new_cell]
        if cell.num_inputs != 2:
            raise TransformError(
                f"OS3/IS3 cell {cell.name!r} is not a 2-input gate"
            )
        new_gate = netlist.add_gate(
            cell, [eff1, eff2], name=netlist.fresh_name("powder_g")
        )
        added.append(new_gate.name)
        substituting = new_gate
    else:
        source = netlist.gate(substitution.source1)
        substituting = _effective_source(
            netlist, source, substitution.invert1, added
        )

    resim_roots: list[str] = list(added)
    if substitution.is_output_substitution():
        netlist.replace_fanouts(target, substituting)
        resim_roots.extend(
            sink.name for sink, _pin in substituting.fanouts
        )
    else:
        sink_name, pin = substitution.branch
        sink = netlist.gate(sink_name)
        netlist.replace_fanin(sink, pin, substituting)
        resim_roots.append(sink.name)

    boundary: list[Gate] = []
    removed = netlist.sweep_dead(boundary=boundary)
    # A removed gate cannot be a re-simulation root.
    live_roots = [n for n in dict.fromkeys(resim_roots) if n in netlist.gates]
    area_delta = netlist.total_area() - area_before
    return AppliedSubstitution(
        substitution=substitution,
        added=[n for n in added if n in netlist.gates],
        removed=removed,
        resim_roots=live_roots,
        area_delta=area_delta,
        boundary=[g.name for g in boundary],
        substituting=(
            substituting.name if substituting.name in netlist.gates else ""
        ),
    )


def apply_to_copy(
    netlist: Netlist, substitution: Substitution, name_suffix: str = "_trial"
) -> tuple[Netlist, AppliedSubstitution]:
    """Apply to a fresh copy (original untouched); for trial checks."""
    trial = netlist.copy(netlist.name + name_suffix)
    applied = apply_substitution(trial, substitution)
    return trial, applied
