"""Power-gain analysis of substitutions (paper §3.3, eqs. 2-5).

The gain of a move decomposes into:

- ``PG_A`` — the dominated region of the substituted signal dies (always a
  gain; computable with *no* re-estimation),
- ``PG_B`` — the substituting signal(s) pick up new fanout load (always a
  cost; no re-estimation),
- ``PG_C`` — the global functions in the substituted signal's transitive
  fanout change, so their activities must be re-estimated (either sign; the
  paper notes it can dominate).

``quick_gain`` returns ``PG_A + PG_B`` for the cheap pre-selection;
``full_gain`` adds ``PG_C`` via a forced-value overlay simulation of exactly
the TFO region, without touching the committed simulation state.  When the
estimator's probability engine is the bit-parallel simulator, ``full_gain``
predicts the post-move estimator total *exactly* (same pattern sample).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TransformError
from repro.netlist.netlist import Gate, Netlist
from repro.kernels.words import popcount
from repro.netlist.simulate import SimState, evaluate_cell
from repro.netlist.traverse import region_inputs
from repro.power.estimate import PowerEstimator, transition_probability
from repro.power.probability import SimulationProbability
from repro.transform.substitution import IS2, IS3, OS2, OS3, Substitution


@dataclass
class GainBreakdown:
    """The PG_A/PG_B/PG_C decomposition of one substitution's power gain."""

    pg_a: float
    pg_b: float
    pg_c: float = 0.0
    includes_pg_c: bool = False
    area_delta: float = 0.0  # predicted net area change (negative = smaller)
    dying: list[str] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.pg_a + self.pg_b + self.pg_c

    @property
    def quick(self) -> float:
        return self.pg_a + self.pg_b


# ----------------------------------------------------------------------
# Dying-region prediction
# ----------------------------------------------------------------------
def predict_dying_region(
    netlist: Netlist, substitution: Substitution
) -> list[Gate]:
    """Gates that die when the move is applied (the paper's ``Dom(a)``).

    For output substitutions this is the target's maximum fanout-free cone,
    except that the substituting source gates (which gain fanout) and their
    transitive fanins must survive.  For input substitutions the region is
    empty unless the rewired branch was the target's only fanout.
    """
    target = netlist.gate(substitution.target)
    if target.is_input:
        return []
    if not substitution.is_output_substitution() and target.fanout_count() > 1:
        return []

    keep_ids = {id(netlist.gate(s)) for s in substitution.source_names()}
    region = _grow_region(netlist, target, keep_ids)
    # Sources must really be outside: if a source ended up dominated by the
    # target the substitution is self-referential and invalid.
    region_ids = {id(g) for g in region}
    for source in substitution.source_names():
        if id(netlist.gate(source)) in region_ids:
            raise TransformError(
                f"substitution source {source!r} lies in the dying region"
            )
    return region


def _grow_region(
    netlist: Netlist, target: Gate, keep_ids: set[int]
) -> list[Gate]:
    region: list[Gate] = [target]
    region_ids = {id(target)}
    changed = True
    while changed:
        changed = False
        candidates: dict[int, Gate] = {}
        for gate in region:
            for fanin in gate.fanins:
                if (
                    not fanin.is_input
                    and id(fanin) not in region_ids
                    and id(fanin) not in keep_ids
                ):
                    candidates[id(fanin)] = fanin
        for gate in candidates.values():
            if gate.po_names:
                continue
            if all(id(sink) in region_ids for sink, _pin in gate.fanouts):
                region.append(gate)
                region_ids.add(id(gate))
                changed = True
    return region


def dominated_region(netlist: Netlist, target: Gate) -> list[Gate]:
    """The unconstrained dying region of an output substitution of ``target``.

    Equal to :func:`predict_dying_region` for any output substitution none
    of whose sources lies inside this region (the keep set then never
    binds, so the growth is identical step for step).  Candidate
    generation computes it once per target and shares it across the whole
    OS3 pair table.
    """
    if target.is_input:
        return []
    return _grow_region(netlist, target, set())


def _branch_load(netlist: Netlist, substitution: Substitution) -> float:
    """Capacitance of the substituted branch pin (IS2/IS3)."""
    sink_name, pin = substitution.branch
    sink = netlist.gate(sink_name)
    return sink.cell.pins[pin].load


def _moved_load(netlist: Netlist, substitution: Substitution) -> float:
    """Capacitance transferred onto the substituting signal."""
    if substitution.is_output_substitution():
        return netlist.load_of(netlist.gate(substitution.target))
    return _branch_load(netlist, substitution)


# ----------------------------------------------------------------------
# PG_A and PG_B (no re-estimation, §3.3)
# ----------------------------------------------------------------------
def _pg_a(
    estimator: PowerEstimator,
    substitution: Substitution,
    region: list[Gate],
) -> float:
    netlist = estimator.netlist
    if not substitution.is_output_substitution() and not region:
        # Pure branch rewiring: only the branch load leaves the target stem.
        target = netlist.gate(substitution.target)
        return _branch_load(netlist, substitution) * estimator.activity(target)
    return region_power(estimator, region)


def region_power(estimator: PowerEstimator, region: list[Gate]) -> float:
    """Power released when ``region`` dies: its own contributions plus the
    load its gates present to surviving fanins (the ``PG_A`` sum)."""
    netlist = estimator.netlist
    total = 0.0
    for gate in region:
        total += estimator.contribution(gate)
    region_ids = {id(g) for g in region}
    for outside in region_inputs(netlist, region):
        load_into_region = sum(
            sink.cell.pins[pin].load
            for sink, pin in outside.fanouts
            if id(sink) in region_ids
        )
        total += load_into_region * estimator.activity(outside)
    return total


def _new_signal_word(
    sim: SimState, netlist: Netlist, substitution: Substitution
) -> np.ndarray:
    """Value word of the substituting signal (after inversions / new gate)."""
    if substitution.is_constant:
        if substitution.constant:
            return np.full(
                sim.nwords, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64
            )
        return np.zeros(sim.nwords, dtype=np.uint64)
    word1 = sim.value(substitution.source1)
    if substitution.invert1:
        word1 = ~word1
    if substitution.kind in (OS2, IS2):
        return word1
    word2 = sim.value(substitution.source2)
    if substitution.invert2:
        word2 = ~word2
    cell = netlist.library[substitution.new_cell]
    return evaluate_cell(cell, [word1, word2], sim.nwords)


def _source_activity(
    estimator: PowerEstimator, name: str
) -> float:
    # E(!b) == E(b): activity is symmetric in the signal probability.
    return estimator.activity(estimator.netlist.gate(name))


def _new_signal_activity(
    estimator: PowerEstimator, substitution: Substitution
) -> float:
    """Activity of the inserted OS3/IS3 gate's output."""
    netlist = estimator.netlist
    engine = estimator.engine
    sim_next = getattr(engine, "sim_next", None)
    if isinstance(engine, SimulationProbability) and sim_next is not None:
        # Temporal pair engine: measure the new signal's toggles directly.
        word_t = _new_signal_word(engine.sim, netlist, substitution)
        word_t1 = _new_signal_word(sim_next, netlist, substitution)
        return popcount(word_t ^ word_t1) / engine.sim.num_patterns
    if isinstance(engine, SimulationProbability):
        word = _new_signal_word(engine.sim, netlist, substitution)
        p = popcount(word) / engine.sim.num_patterns
    else:
        cell = netlist.library[substitution.new_cell]
        p1 = estimator.probability(netlist.gate(substitution.source1))
        p2 = estimator.probability(netlist.gate(substitution.source2))
        if substitution.invert1:
            p1 = 1.0 - p1
        if substitution.invert2:
            p2 = 1.0 - p2
        p = cell.function.onset_probability([p1, p2])
    return transition_probability(p)


def _pg_b(estimator: PowerEstimator, substitution: Substitution) -> float:
    netlist = estimator.netlist
    moved = _moved_load(netlist, substitution)
    library = netlist.library
    cost = 0.0
    if substitution.is_constant:
        # A tie cell never switches: the moved load costs nothing (E = 0).
        return 0.0
    if substitution.kind in (OS2, IS2):
        if substitution.invert1:
            # b drives a fresh inverter, which in turn drives the moved load.
            inv = library.inverter()
            cost += inv.pins[0].load * _source_activity(estimator, substitution.source1)
            cost += moved * _source_activity(estimator, substitution.source1)
        else:
            cost += moved * _source_activity(estimator, substitution.source1)
        return -cost
    # OS3/IS3: pin loads of the new gate, inverter chains, and the moved
    # load now driven by the new gate's output.
    cell = library[substitution.new_cell]
    inv = library.inverter()
    for pin_index, (source, inverted) in enumerate(
        ((substitution.source1, substitution.invert1),
         (substitution.source2, substitution.invert2))
    ):
        activity = _source_activity(estimator, source)
        if inverted:
            cost += inv.pins[0].load * activity
            cost += cell.pins[pin_index].load * activity
        else:
            cost += cell.pins[pin_index].load * activity
    cost += moved * _new_signal_activity(estimator, substitution)
    return -cost


def _area_delta(
    netlist: Netlist, substitution: Substitution, region: list[Gate]
) -> float:
    delta = -sum(g.cell.area for g in region if not g.is_input)
    library = netlist.library
    inversions = int(substitution.invert1) + (
        int(substitution.invert2) if substitution.kind in (OS3, IS3) else 0
    )
    if inversions and library is not None:
        delta += inversions * library.inverter().area
    if substitution.new_cell is not None:
        delta += library[substitution.new_cell].area
    if substitution.is_constant and library is not None:
        tie = library.constant(bool(substitution.constant))
        if tie is not None and not any(
            g.cell is tie for g in netlist.logic_gates()
        ):
            delta += tie.area  # a new tie gate must be instantiated
    return delta


def quick_gain(
    estimator: PowerEstimator, substitution: Substitution
) -> GainBreakdown:
    """``PG_A + PG_B`` — the pre-selection metric (no re-estimation)."""
    netlist = estimator.netlist
    region = predict_dying_region(netlist, substitution)
    pg_a = _pg_a(estimator, substitution, region)
    pg_b = _pg_b(estimator, substitution)
    return GainBreakdown(
        pg_a=pg_a,
        pg_b=pg_b,
        area_delta=_area_delta(netlist, substitution, region),
        dying=[g.name for g in region],
    )


# ----------------------------------------------------------------------
# PG_C (TFO re-estimation, eq. 5)
# ----------------------------------------------------------------------
def _overlay_for(
    sim: SimState, netlist: Netlist, substitution: Substitution
) -> tuple[dict, set]:
    """(forced-value overlay over TFO, names to skip in the PG_C sum)."""
    new_word = _new_signal_word(sim, netlist, substitution)
    target = netlist.gate(substitution.target)
    if substitution.is_output_substitution():
        forced = {target.name: new_word}
        skip = {target.name}
    else:
        sink_name, pin = substitution.branch
        sink = netlist.gate(sink_name)
        fanin_words = [
            new_word if i == pin else sim.value(f.name)
            for i, f in enumerate(sink.fanins)
        ]
        forced = {sink.name: evaluate_cell(sink.cell, fanin_words, sim.nwords)}
        skip = set()
    return sim.propagate_forced(forced), skip


def _pg_c(
    estimator: PowerEstimator,
    substitution: Substitution,
    region: list[Gate],
) -> float:
    engine = estimator.engine
    if not isinstance(engine, SimulationProbability):
        return 0.0  # other engines re-estimate only after application
    sim = engine.sim
    netlist = estimator.netlist
    overlay, skip = _overlay_for(sim, netlist, substitution)
    sim_next = getattr(engine, "sim_next", None)
    overlay_next: dict = {}
    if sim_next is not None:
        overlay_next, _ = _overlay_for(sim_next, netlist, substitution)
    dying = {g.name for g in region}
    gain = 0.0
    total = sim.num_patterns
    for name in set(overlay) | set(overlay_next):
        if name in skip or name in dying:
            continue
        gate = netlist.gate(name)
        e_before = estimator.activity(gate)
        if sim_next is not None:
            word_t = overlay.get(name, sim.value(name))
            word_t1 = overlay_next.get(name, sim_next.value(name))
            e_after = popcount(word_t ^ word_t1) / total
        else:
            word = overlay.get(name, sim.value(name))
            e_after = transition_probability(popcount(word) / total)
        gain += estimator.load(gate) * (e_before - e_after)
    return gain


def full_gain(
    estimator: PowerEstimator, substitution: Substitution
) -> GainBreakdown:
    """Complete ``PG_A + PG_B + PG_C`` breakdown (eq. 2)."""
    breakdown = quick_gain(estimator, substitution)
    region = [estimator.netlist.gate(n) for n in breakdown.dying]
    breakdown.pg_c = _pg_c(estimator, substitution, region)
    breakdown.includes_pg_c = True
    return breakdown
