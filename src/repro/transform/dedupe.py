"""Structural deduplication of mapped netlists.

Technology mappers (ours included — the DP instantiates per (node, phase))
can leave structurally identical gates: same cell, same ordered fanins.
Merging them is the degenerate, always-permissible OS2 — no ATPG needed,
because equal structure implies equal function.

POWDER finds these merges through the regular candidate machinery *when
they reduce power* (they usually do: one stem's load disappears).  This
pass is the unconditional version: a cheap canonical-form sweep to a fixed
point, exposed both standalone and as an optimizer pre-pass.
"""

from __future__ import annotations

from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import topological_order


def _signature(gate: Gate) -> tuple:
    return (gate.cell.name, tuple(id(f) for f in gate.fanins))


def merge_duplicate_gates(netlist: Netlist) -> list[tuple[str, str]]:
    """Merge structurally identical gates to a fixed point.

    Returns the (kept, removed) name pairs, in merge order.  Downstream
    signatures change as merges land, so the sweep iterates until no two
    gates share a signature.
    """
    merged: list[tuple[str, str]] = []
    changed = True
    while changed:
        changed = False
        seen: dict[tuple, Gate] = {}
        for gate in topological_order(netlist):
            if gate.is_input:
                continue
            signature = _signature(gate)
            keeper = seen.get(signature)
            if keeper is None:
                seen[signature] = gate
                continue
            netlist.replace_fanouts(gate, keeper)
            merged.append((keeper.name, gate.name))
            changed = True
        if changed:
            netlist.sweep_dead()
    return merged


def count_duplicate_gates(netlist: Netlist) -> int:
    """Number of gates that :func:`merge_duplicate_gates` would remove
    in its first sweep (diagnostic)."""
    seen: set[tuple] = set()
    duplicates = 0
    for gate in topological_order(netlist):
        if gate.is_input:
            continue
        signature = _signature(gate)
        if signature in seen:
            duplicates += 1
        else:
            seen.add(signature)
    return duplicates
