"""Windowed POWDER: optimize TFI/TFO windows independently, merge moves.

The whole-netlist candidate rounds cap the engine at MCNC-scale circuits;
this module breaks that ceiling with the scheme of "Simulation-Guided
Boolean Resubstitution" adapted to the DAC-96 move model:

1. :func:`repro.partition.partition_windows` covers the netlist with
   radius-bounded windows (every logic gate in at least one),
2. each window's sub-netlist is shipped — as BLIF text plus its
   :class:`~repro.partition.WindowBoundary` — to a ``multiprocessing``
   pool worker that runs an ordinary :class:`PowerOptimizer` over it and
   returns the *move list* it applied (not the mutated netlist),
3. the parent replays the move lists against the full netlist in window
   order through a deterministic conflict resolver: a window whose
   members were touched by an earlier window's replay is deferred, and
   deferred windows are re-extracted from the live netlist and
   re-optimized sequentially.

Soundness rests on the export contract (every externally observable
member is a sub-netlist PO, boundary inputs are free): a move permissible
in the window preserves the window's PO functions over the *whole* input
space of its boundary, hence preserves the full netlist's PO functions
when replayed — the differential oracle in ``tests/transform`` pins this
end to end.  Window-local *power* estimates are approximations (boundary
inputs are sampled independently with the parent's marginal
probabilities), so a windowed run may occasionally keep a move a global
estimator would have rejected; equivalence is never at stake, only gain
accounting, and the final metrics reported here are recomputed from
scratch on the merged netlist.

Name translation during replay: a window's later moves may reference
gates its earlier moves created (``powder_inv*``/``powder_g*``/
``powder_tie*``), whose fresh names differ in the full netlist.  The
worker therefore reports each move's ``added`` names and substituting
gate; the parent zips them against its own
:class:`~repro.transform.substitution.AppliedSubstitution` to grow a
sub-name -> full-name map.  Any mismatch (or a replay rejected by the
netlist, e.g. a cycle through external paths the window could not see)
stops that window's replay at the failed move — never corrupting the
netlist, because :func:`apply_substitution` validates before mutating.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NetlistError, TransformError
from repro.netlist.blif import parse_blif, write_blif
from repro.netlist.netlist import Netlist
from repro.partition import (
    Window,
    export_window,
    extract_window,
    partition_windows,
)
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.timing.analysis import TimingAnalysis
from repro.transform.optimizer import (
    OptimizeOptions,
    OptimizeResult,
    PowerOptimizer,
)
from repro.transform.report import MoveRecord
from repro.transform.substitution import Substitution, apply_substitution

#: Default window extraction knobs (see ``OptimizeOptions``).
DEFAULT_WINDOW_SIZE = 80
DEFAULT_WINDOW_RADIUS = 3


@dataclass(frozen=True)
class WindowMove:
    """One move a window worker applied, with its replay bookkeeping."""

    substitution: Substitution
    #: Fresh gates the sub-run created for this move, in creation order.
    added: tuple[str, ...]
    #: The sub-run gate left driving the substituted load ("" if none).
    substituting: str
    #: Window-local gain prediction and measurements (approximate
    #: globally; kept for the class table in ``OptimizeResult.summary``).
    predicted: object
    measured_power_gain: float
    measured_area_delta: float


@dataclass
class WindowOutcome:
    """What happened to one window across optimize + merge."""

    window: Window
    moves: list[WindowMove] = field(default_factory=list)
    #: Moves successfully replayed into the full netlist.
    replayed: int = 0
    #: "applied" | "conflict" | "empty" | "error"
    status: str = "empty"
    error: Optional[str] = None
    #: Rejection counters from the window's sub-run.
    counters: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# Pool worker
# ----------------------------------------------------------------------
#: Per-process state installed by the pool initializer (the library is
#: sent once per worker instead of once per window).
_WORKER_STATE: dict = {}


def _init_worker(library) -> None:
    _WORKER_STATE["library"] = library


def _capture_moves(blif_text, po_loads, library, records) -> list[WindowMove]:
    """Replay the sub-run's substitutions on a fresh parse to capture the
    fresh-name bookkeeping (``added``/``substituting``) the merge needs.

    Fresh names depend only on the netlist's name counter, which advances
    identically here and in the optimizer's own run.
    """
    fresh = parse_blif(blif_text, library)
    for po, load in po_loads.items():
        fresh.output_loads[po] = load
    moves: list[WindowMove] = []
    for record in records:
        applied = apply_substitution(fresh, record.substitution)
        moves.append(
            WindowMove(
                substitution=record.substitution,
                added=tuple(applied.added),
                substituting=applied.substituting,
                predicted=record.predicted,
                measured_power_gain=record.measured_power_gain,
                measured_area_delta=record.measured_area_delta,
            )
        )
    return moves


def _optimize_window_task(task):
    """Optimize one exported window; runs in a pool worker (or inline).

    ``task`` is ``(index, blif_text, po_loads, sub_options)``; the return
    is ``(index, moves, counters, error)`` — exceptions travel back as
    strings so one bad window cannot poison the pool.
    """
    index, blif_text, po_loads, sub_options = task
    library = _WORKER_STATE["library"]
    try:
        sub = parse_blif(blif_text, library)
        for po, load in po_loads.items():
            sub.output_loads[po] = load
        result = PowerOptimizer(sub, sub_options).run()
        moves = _capture_moves(blif_text, po_loads, library, result.moves)
        counters = {
            "rejected_delay": result.rejected_delay,
            "rejected_not_permissible": result.rejected_not_permissible,
            "rejected_aborted": result.rejected_aborted,
            "rejected_stale": result.rejected_stale,
        }
        return (index, moves, counters, None)
    except Exception as exc:  # noqa: BLE001 - transported across the pipe
        return (index, [], {}, f"{type(exc).__name__}: {exc}")


def _translate(substitution: Substitution, name_map: dict) -> Substitution:
    """Rewrite a sub-run substitution into full-netlist gate names."""
    if not name_map:
        return substitution
    branch = substitution.branch
    if branch is not None:
        branch = (name_map.get(branch[0], branch[0]), branch[1])
    return dataclasses.replace(
        substitution,
        target=name_map.get(substitution.target, substitution.target),
        source1=name_map.get(substitution.source1, substitution.source1),
        source2=(
            None
            if substitution.source2 is None
            else name_map.get(substitution.source2, substitution.source2)
        ),
        branch=branch,
    )


# ----------------------------------------------------------------------
# The windowed optimizer
# ----------------------------------------------------------------------
class WindowedOptimizer:
    """Partition, optimize windows on a pool, merge non-conflicting moves.

    Drives the full windowed flow described in the module docstring and
    returns an ordinary :class:`OptimizeResult` whose final metrics are
    recomputed from scratch on the merged netlist.  ``phase_seconds``
    separates ``spawn`` (pool startup) from ``optimize`` so profiles of
    the pool path do not bill worker startup as optimizer time.
    """

    def __init__(self, netlist: Netlist, options: Optional[OptimizeOptions] = None):
        self.netlist = netlist
        self.options = options or OptimizeOptions(windowed=True)
        if not self.options.windowed:
            raise TransformError(
                "WindowedOptimizer requires OptimizeOptions(windowed=True)"
            )
        if netlist.library is None:
            raise TransformError("windowed optimization needs a library")
        self.outcomes: list[WindowOutcome] = []
        #: Indices of windows deferred by the conflict resolver (their
        #: ``WindowOutcome.status`` is later overwritten by the fallback).
        self.conflicts: list[int] = []
        self.phase_seconds: dict = {}

    # ------------------------------------------------------------------
    def _sub_options(self, boundary) -> OptimizeOptions:
        """The per-window run configuration (windowing stripped)."""
        opts = self.options
        return dataclasses.replace(
            opts,
            windowed=False,
            jobs=1,
            window_verify=False,
            input_probs=dict(boundary.input_probs) or None,
            trace=None,
            verbose=False,
        )

    def _boundary_probabilities(self, engine: SimulationProbability) -> dict:
        """Marginal P(=1) for each *internal* signal a window boundary may
        cut.  Parent PIs are deliberately absent unless the caller supplied
        explicit ``input_probs``: a window input that is a real PI must keep
        the parent's exact sampling semantics (default 0.5), not a noisy
        empirical marginal — this is what makes a single all-covering
        window reproduce the flat optimizer's run bit for bit."""
        probs = {
            name: engine.probability(name)
            for name, gate in self.netlist.gates.items()
            if not gate.is_input
        }
        if self.options.input_probs:
            probs.update(self.options.input_probs)
        return probs

    def _dispatch(self, tasks: list) -> list:
        """Run the window tasks inline (jobs=1) or on a fork-server pool."""
        jobs = self.options.jobs
        if jobs <= 1 or len(tasks) <= 1:
            _init_worker(self.netlist.library)
            self.phase_seconds["spawn"] = 0.0
            return [_optimize_window_task(task) for task in tasks]
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = multiprocessing.get_context("spawn")
        tick = time.perf_counter()
        with ctx.Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(self.netlist.library,),
        ) as pool:
            self.phase_seconds["spawn"] = time.perf_counter() - tick
            results = pool.map(_optimize_window_task, tasks, chunksize=1)
        return results

    # ------------------------------------------------------------------
    def _replay(self, outcome: WindowOutcome, touched: set) -> list[MoveRecord]:
        """Replay one window's moves into the full netlist.

        Grows ``touched`` with every gate the replay dirtied; returns the
        MoveRecords actually applied (window-local gain figures).
        """
        netlist = self.netlist
        name_map: dict = {}
        records: list[MoveRecord] = []
        for move in outcome.moves:
            substitution = _translate(move.substitution, name_map)
            if not substitution.validate_against(netlist):
                break
            try:
                applied = apply_substitution(netlist, substitution)
            except (NetlistError, TransformError):
                break
            if len(applied.added) == len(move.added):
                for sub_name, full_name in zip(move.added, applied.added):
                    name_map[sub_name] = full_name
            elif move.substituting and applied.substituting:
                # Tie-gate reuse differs between the runs (the sub-run
                # created a tie the full netlist already had, or the
                # reverse); the substituting gate is the only fresh name
                # later moves can reference.
                name_map[move.substituting] = applied.substituting
            else:
                touched.update(applied.dirty_gate_names(netlist))
                touched.update(applied.removed)
                touched.update(applied.added)
                outcome.replayed += 1
                break
            if move.substituting and applied.substituting:
                name_map.setdefault(move.substituting, applied.substituting)
            touched.update(applied.dirty_gate_names(netlist))
            touched.update(applied.removed)
            touched.update(applied.added)
            outcome.replayed += 1
            records.append(
                MoveRecord(
                    substitution=substitution,
                    predicted=move.predicted,
                    measured_power_gain=move.measured_power_gain,
                    measured_area_delta=move.measured_area_delta,
                    round_index=outcome.window.index,
                    circuit_delay_after=0.0,
                )
            )
        return records

    def _reoptimize_deferred(
        self, outcome: WindowOutcome, probs: dict
    ) -> list[MoveRecord]:
        """Sequential fallback: re-extract the window from the live
        netlist, optimize it inline, and replay immediately."""
        netlist = self.netlist
        window = outcome.window
        seed_gate = None
        for name in window.seeds + window.members:
            gate = netlist.gates.get(name)
            if gate is not None and not gate.is_input:
                seed_gate = gate
                break
        if seed_gate is None:
            outcome.status = "empty"
            return []
        live = extract_window(
            netlist,
            seed_gate,
            radius=self.options.window_radius,
            max_gates=self.options.window_size,
            index=window.index,
        )
        live_probs = {
            name: probs[name] for name in live.inputs if name in probs
        }
        sub, boundary = export_window(netlist, live, probabilities=live_probs)
        task = (
            live.index,
            write_blif(sub),
            dict(boundary.po_loads),
            self._sub_options(boundary),
        )
        _init_worker(netlist.library)
        _index, moves, counters, error = _optimize_window_task(task)
        if error is not None:
            outcome.status = "error"
            outcome.error = error
            return []
        outcome.window = live
        outcome.moves = moves
        outcome.counters = counters
        records = self._replay(outcome, set())
        outcome.status = "applied" if records else "empty"
        return records

    # ------------------------------------------------------------------
    def run(self) -> OptimizeResult:
        opts = self.options
        netlist = self.netlist
        start = time.perf_counter()
        phases = self.phase_seconds

        engine = SimulationProbability(
            netlist,
            num_patterns=opts.num_patterns,
            seed=opts.seed,
            input_probs=opts.input_probs,
        )
        initial_power = PowerEstimator(netlist, engine).total()
        initial_area = netlist.total_area()
        initial_delay = TimingAnalysis(netlist).circuit_delay
        pristine = netlist.copy() if opts.window_verify else None

        tick = time.perf_counter()
        windows = partition_windows(
            netlist, radius=opts.window_radius, max_gates=opts.window_size
        )
        probs = self._boundary_probabilities(engine)
        tasks = []
        for window in windows:
            window_probs = {
                name: probs[name] for name in window.inputs if name in probs
            }
            sub, boundary = export_window(
                netlist, window, probabilities=window_probs
            )
            tasks.append(
                (
                    window.index,
                    write_blif(sub),
                    dict(boundary.po_loads),
                    self._sub_options(boundary),
                )
            )
        phases["partition"] = time.perf_counter() - tick

        tick = time.perf_counter()
        raw = self._dispatch(tasks)
        phases["optimize"] = time.perf_counter() - tick - phases["spawn"]

        raw.sort(key=lambda item: item[0])
        self.outcomes = []
        errors = []
        for window, (index, moves, counters, error) in zip(windows, raw):
            assert window.index == index
            outcome = WindowOutcome(
                window=window, moves=list(moves), counters=counters, error=error
            )
            if error is not None:
                outcome.status = "error"
                errors.append(f"window {index} ({window.seeds[0]}): {error}")
            self.outcomes.append(outcome)
        if errors:
            raise TransformError(
                "windowed optimization failed in "
                f"{len(errors)} worker(s): " + "; ".join(errors[:3])
            )

        tick = time.perf_counter()
        records: list[MoveRecord] = []
        touched: set = set()
        deferred: list[WindowOutcome] = []
        for outcome in self.outcomes:
            if not outcome.moves:
                outcome.status = "empty"
                continue
            if touched.intersection(outcome.window.members):
                outcome.status = "conflict"
                self.conflicts.append(outcome.window.index)
                deferred.append(outcome)
                continue
            applied = self._replay(outcome, touched)
            records.extend(applied)
            outcome.status = "applied" if applied else "empty"
        phases["merge"] = time.perf_counter() - tick

        tick = time.perf_counter()
        for outcome in deferred:
            records.extend(self._reoptimize_deferred(outcome, probs))
        phases["fallback"] = time.perf_counter() - tick

        counters = {
            "rejected_delay": 0,
            "rejected_not_permissible": 0,
            "rejected_aborted": 0,
            "rejected_stale": 0,
        }
        for outcome in self.outcomes:
            for key in counters:
                counters[key] += outcome.counters.get(key, 0)

        tick = time.perf_counter()
        final_engine = SimulationProbability(
            netlist,
            num_patterns=opts.num_patterns,
            seed=opts.seed,
            input_probs=opts.input_probs,
        )
        final_power = PowerEstimator(netlist, final_engine).total()
        final_delay = TimingAnalysis(netlist).circuit_delay
        phases["metrics"] = time.perf_counter() - tick

        if pristine is not None:
            from repro.equiv.checker import check_equivalent

            verdict = check_equivalent(pristine, netlist)
            if not verdict.equal:
                raise TransformError(
                    "windowed merge broke equivalence: "
                    f"{verdict}"
                )

        return OptimizeResult(
            netlist=netlist,
            initial_power=initial_power,
            final_power=final_power,
            initial_area=initial_area,
            final_area=netlist.total_area(),
            initial_delay=initial_delay,
            final_delay=final_delay,
            moves=records,
            rounds=len(windows),
            rejected_delay=counters["rejected_delay"],
            rejected_not_permissible=counters["rejected_not_permissible"],
            rejected_aborted=counters["rejected_aborted"],
            rejected_stale=counters["rejected_stale"],
            runtime_seconds=time.perf_counter() - start,
            delay_limit=None,
            phase_seconds=dict(phases),
        )


def windowed_optimize(
    netlist: Netlist, options: Optional[OptimizeOptions] = None
) -> OptimizeResult:
    """Run the windowed flow over ``netlist`` (modified in place)."""
    if options is None:
        options = OptimizeOptions(windowed=True)
    return WindowedOptimizer(netlist, options).run()
