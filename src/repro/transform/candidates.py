"""Candidate-substitution generation (the paper's
``get_candidate_substitutions``).

Following refs [2, 5], candidates are found with simulation rather than
explicit don't-care computation: a substitution can only be permissible if
the substituting function agrees with the substituted signal on every
pattern where that signal is *observable* at some primary output.  With the
committed bit-parallel pattern set this is a handful of vector operations
per (target, source) pair:

    compatible(a <- f)  iff  (word(f) XOR word(a)) AND obs(a) == 0

Survivors are true candidates in the paper's sense — *potentially*
permissible; the exact ATPG check happens later, per selected move.

To keep rounds bounded the generator ranks sources per target by the
no-re-estimation gain ``PG_A + PG_B`` and keeps the best few; 3-signal
substitutions (OS3/IS3) additionally restrict the pair search to a short
list of low-activity sources and are only attempted where the dying region
is worth at least one new gate.

:class:`CandidateWorkspace` holds the expensive per-netlist state — the
batched observability maps, the stem-value matrix, the stem-reachability
matrix, and a content-validated cache of OS3/IS3 pair-compatibility tables
— and keeps it alive across optimizer rounds.  After a committed edit the
caller reports the dirty gates via :meth:`CandidateWorkspace.invalidate`
and only the affected observability masks are recomputed; everything
derived from unchanged signals is reused.  Candidates themselves are
re-enumerated every round in a fixed order so the emitted list is
bit-identical to a from-scratch generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TransformError
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.observability import ObservabilityMaps
from repro.netlist.simulate import evaluate_cell
from repro.netlist.traverse import topological_order
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.transform.gain import GainBreakdown, quick_gain
from repro.transform.substitution import IS2, IS3, OS2, OS3, Substitution


@dataclass(frozen=True)
class CandidateOptions:
    """Knobs for candidate generation."""

    enable_os2: bool = True
    enable_is2: bool = True
    enable_os3: bool = True
    enable_is3: bool = True
    allow_inversion: bool = True
    #: Best candidates kept per target signal/branch.
    max_per_target: int = 6
    #: Global cap on the returned candidate list.
    max_total: int = 4000
    #: Source-list length for the OS3/IS3 pair search.
    pair_source_limit: int = 14
    #: Cell names usable as the inserted OS3/IS3 gate (None = all 2-input).
    os3_cells: Optional[tuple[str, ...]] = None
    #: Drop candidates whose quick gain is below this (None keeps all).
    min_quick_gain: Optional[float] = None
    #: Also propose substitutions by library tie cells (redundancy removal)
    #: when a signal is constant on every observable pattern.  Off by
    #: default: the paper's move set is signal substitutions only.
    constant_substitution: bool = False


@dataclass
class Candidate:
    """A potentially permissible substitution with its quick gain."""

    substitution: Substitution
    gain: GainBreakdown

    @property
    def quick(self) -> float:
        return self.gain.quick


def _require_sim(estimator: PowerEstimator) -> SimulationProbability:
    engine = estimator.engine
    if not isinstance(engine, SimulationProbability):
        raise TransformError(
            "candidate generation needs a SimulationProbability engine"
        )
    return engine


class CandidateWorkspace:
    """Persistent candidate-generation state shared across rounds.

    Owns an :class:`ObservabilityMaps` over the estimator's committed
    simulation.  Construction pays one full reverse sweep; afterwards the
    optimizer calls :meth:`invalidate` with the dirty gates of each applied
    move and the masks update incrementally.  :meth:`generate` enumerates
    candidates against the current netlist in the same deterministic order
    as a fresh workspace would.
    """

    def __init__(self, estimator: PowerEstimator):
        self.estimator = estimator
        self.netlist: Netlist = estimator.netlist
        self.engine = _require_sim(estimator)
        self.sim = self.engine.sim
        self.maps = ObservabilityMaps(self.sim)
        #: (target name, branch) -> content-validated pair-compat table.
        self._pair_cache: dict[
            tuple[str, Optional[tuple[str, int]]], tuple
        ] = {}
        #: Lifetime tallies of pair-table reuse, read by the run tracer.
        self.pair_cache_hits = 0
        self.pair_cache_misses = 0
        #: Dirty gates accumulated since the last mask flush (by id: names
        #: can be freed by one edit and reused by a later one).
        self._pending: dict[int, Gate] = {}
        # Per-round state, rebuilt by _refresh_round().
        self.stems: list[Gate] = []
        self.index: dict[str, int] = {}
        self.matrix: Optional[np.ndarray] = None
        self.reach: Optional[np.ndarray] = None
        self.act_order: list[int] = []

    # ------------------------------------------------------------------
    def invalidate(self, dirty: list[Gate]) -> None:
        """Report committed-netlist edits (values, fanins, fanouts, POs).

        ``dirty`` must contain every live gate whose committed value,
        fanin list, fanout list, or PO binding changed since the last
        call — :meth:`AppliedSubstitution.dirty_gate_names` plus the
        resimulation-changed gates.  Dead gates are detected by absence.

        The masks are not recomputed here: edits accumulate and flush in
        one batch at the next :meth:`generate`, so a round of applied
        moves pays for one incremental sweep, not one per move.
        """
        for gate in dirty:
            self._pending[id(gate)] = gate

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        self.maps.update_after_edit(
            [g for g in self._pending.values() if g.name in self.netlist.gates]
        )
        self._pending.clear()
        live = self.netlist.gates
        for key in [k for k in self._pair_cache if k[0] not in live]:
            del self._pair_cache[key]

    # ------------------------------------------------------------------
    def _refresh_round(self) -> None:
        self._flush_pending()
        self.stems = list(topological_order(self.netlist))
        self.index = {g.name: i for i, g in enumerate(self.stems)}
        self.matrix = np.stack(
            [self.sim.value(g.name) for g in self.stems]
        )  # (num stems, nwords)
        self.reach = self._reachability()
        # Stable activity order over all stems: restricting it to any
        # source subset gives the same list as sorting that subset, so the
        # per-target OS3/IS3 rankings come from one sort per round.
        activity = [self.estimator.activity(g) for g in self.stems]
        self.act_order = sorted(range(len(self.stems)), key=activity.__getitem__)

    def _reachability(self) -> np.ndarray:
        """Boolean matrix: ``reach[i, j]`` iff stem j is i or in TFO(i)."""
        n = len(self.stems)
        reach = np.zeros((n, n), dtype=bool)
        # Reverse topological order: every sink row is final when OR-ed in.
        for i in range(n - 1, -1, -1):
            row = reach[i]
            row[i] = True
            for sink, _pin in self.stems[i].fanouts:
                row |= reach[self.index[sink.name]]
        return reach

    def legal_sources(self, avoid: Gate, target: Gate) -> np.ndarray:
        """Stem mask of usable sources: outside TFO(avoid), not target."""
        mask = ~self.reach[self.index[avoid.name]]
        mask[self.index[target.name]] = False
        return mask

    def compatible_rows(
        self, target_word: np.ndarray, obs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(direct, inverted) boolean masks over stems: agree on obs."""
        diff = (self.matrix ^ target_word) & obs
        direct = ~diff.any(axis=1)
        inverted = ~((diff ^ obs).any(axis=1))
        return direct, inverted

    # ------------------------------------------------------------------
    def pair_compat(
        self,
        key: tuple[str, Optional[tuple[str, int]]],
        ranked: list[int],
        va: np.ndarray,
        obs: np.ndarray,
        cells: list,
    ) -> np.ndarray:
        """Upper-triangular compat table over ``ranked`` sources × cells.

        ``compat[ai, bi, ci]`` (ai < bi) is True when the cell over the
        ranked sources agrees with the target on every observable pattern.
        Cached per target/branch; entries self-validate against the array
        content they were computed from, so no eager invalidation needed.
        """
        names = tuple(self.stems[i].name for i in ranked)
        cell_sig = tuple(c.name for c in cells)
        rows = self.matrix[ranked] if ranked else np.zeros(
            (0, self.sim.nwords), dtype=np.uint64
        )
        cached = self._pair_cache.get(key)
        if cached is not None:
            c_names, c_cells, c_va, c_obs, c_rows, c_table = cached
            if (
                c_names == names
                and c_cells == cell_sig
                and np.array_equal(c_va, va)
                and np.array_equal(c_obs, obs)
                and np.array_equal(c_rows, rows)
            ):
                self.pair_cache_hits += 1
                return c_table
        self.pair_cache_misses += 1
        table = self._compute_pair_compat(rows, va, obs, cells)
        self._pair_cache[key] = (names, cell_sig, va, obs, rows, table)
        return table

    def _compute_pair_compat(
        self,
        rows: np.ndarray,
        va: np.ndarray,
        obs: np.ndarray,
        cells: list,
    ) -> np.ndarray:
        k = len(rows)
        table = np.zeros((k, k, len(cells)), dtype=bool)
        if k < 2:
            return table
        wa = rows[:, None, :]  # (k, 1, w)
        wb = rows[None, :, :]  # (1, k, w)
        for ci, cell in enumerate(cells):
            word = _two_input_word(cell.function.bits, wa, wb)
            if word is not None:
                table[:, :, ci] = ~(((word ^ va) & obs).any(axis=2))
                continue
            # Odd cell without a broadcast fast path: per-pair fallback.
            for ai in range(k):
                for bi in range(ai + 1, k):
                    w = evaluate_cell(
                        cell, [rows[ai], rows[bi]], self.sim.nwords
                    )
                    table[ai, bi, ci] = not ((w ^ va) & obs).any()
        return table

    # ------------------------------------------------------------------
    def generate(
        self, options: CandidateOptions | None = None
    ) -> list[Candidate]:
        """All simulation-compatible substitutions, best quick gain first."""
        options = options or CandidateOptions()
        self._refresh_round()
        collected: list[Candidate] = []

        if options.enable_os2 or options.enable_os3:
            for target in self.stems:
                if target.is_input or not target.fanout_count():
                    continue
                collected.extend(_stem_candidates(self, target, options))

        if options.enable_is2 or options.enable_is3:
            for target in self.stems:
                if target.fanout_count() < 2:
                    continue  # single-branch stems are covered by OS2
                for sink, pin in list(target.fanouts):
                    collected.extend(
                        _branch_candidates(self, target, sink, pin, options)
                    )

        # Ties on quick gain are broken by the canonical candidate ID, so
        # the ranking (and with it the whole move sequence) is reproducible
        # across Python builds and immune to generation-order changes.
        collected.sort(key=_rank_key)
        return collected[: options.max_total]


def _two_input_cells(netlist: Netlist, options: CandidateOptions):
    library = netlist.library
    if library is None:
        return []
    if options.os3_cells is not None:
        cells = [library[name] for name in options.os3_cells]
    else:
        cells = library.cells_with_inputs(2)
    # One cell per distinct function (cheapest) keeps the pair search lean.
    by_function = {}
    for cell in sorted(cells, key=lambda c: c.area):
        by_function.setdefault(cell.function.bits, cell)
    return list(by_function.values())


def _rank_key(candidate: Candidate) -> tuple[float, str]:
    """Best quick gain first; equal gains in canonical candidate-ID order."""
    return (-candidate.quick, candidate.substitution.candidate_id())


def _keep_best(
    candidates: list[Candidate], limit: int
) -> list[Candidate]:
    candidates.sort(key=_rank_key)
    return candidates[:limit]


def _try_candidate(
    estimator: PowerEstimator,
    substitution: Substitution,
    collected: list[Candidate],
    min_quick: Optional[float],
) -> None:
    try:
        gain = quick_gain(estimator, substitution)
    except TransformError:
        return  # e.g. source inside the dying region
    if min_quick is not None and gain.quick < min_quick:
        return
    collected.append(Candidate(substitution, gain))


def _stem_candidates(
    workspace: CandidateWorkspace,
    target: Gate,
    options: CandidateOptions,
) -> list[Candidate]:
    """OS2/OS3 candidates for one stem."""
    estimator = workspace.estimator
    obs = workspace.maps.stem[target.name]
    va = workspace.sim.value(target.name)
    source_mask = workspace.legal_sources(target, target)
    sources = np.nonzero(source_mask)[0]
    direct, inverted = workspace.compatible_rows(va, obs)

    found: list[Candidate] = []
    if options.constant_substitution:
        _constant_candidates(
            workspace, target, None, va, obs, options, found
        )
    if options.enable_os2:
        for i in sources:
            name = workspace.stems[i].name
            if direct[i]:
                _try_candidate(
                    estimator,
                    Substitution(OS2, target.name, name),
                    found,
                    options.min_quick_gain,
                )
            elif options.allow_inversion and inverted[i]:
                _try_candidate(
                    estimator,
                    Substitution(OS2, target.name, name, invert1=True),
                    found,
                    options.min_quick_gain,
                )

    if options.enable_os3:
        found.extend(
            _pair_candidates(
                workspace, target, None, va, obs, source_mask, options
            )
        )
    return _keep_best(found, options.max_per_target)


def _branch_candidates(
    workspace: CandidateWorkspace,
    target: Gate,
    sink: Gate,
    pin: int,
    options: CandidateOptions,
) -> list[Candidate]:
    """IS2/IS3 candidates for one branch of ``target``."""
    estimator = workspace.estimator
    obs = workspace.maps.branch(sink, pin)
    va = workspace.sim.value(target.name)
    source_mask = workspace.legal_sources(sink, target)
    sources = np.nonzero(source_mask)[0]
    direct, inverted = workspace.compatible_rows(va, obs)
    branch = (sink.name, pin)

    found: list[Candidate] = []
    if options.constant_substitution:
        _constant_candidates(
            workspace, target, branch, va, obs, options, found
        )
    if options.enable_is2:
        for i in sources:
            name = workspace.stems[i].name
            if direct[i]:
                _try_candidate(
                    estimator,
                    Substitution(IS2, target.name, name, branch=branch),
                    found,
                    options.min_quick_gain,
                )
            elif options.allow_inversion and inverted[i]:
                _try_candidate(
                    estimator,
                    Substitution(
                        IS2, target.name, name, invert1=True, branch=branch
                    ),
                    found,
                    options.min_quick_gain,
                )

    if options.enable_is3:
        found.extend(
            _pair_candidates(
                workspace, target, branch, va, obs, source_mask, options
            )
        )
    return _keep_best(found, options.max_per_target)


def _two_input_word(bits: int, wa: np.ndarray, wb: np.ndarray):
    """Fast path for the common 2-input functions (pin order symmetric)."""
    if bits == 0b1000:
        return wa & wb
    if bits == 0b1110:
        return wa | wb
    if bits == 0b0110:
        return wa ^ wb
    if bits == 0b0111:
        return ~(wa & wb)
    if bits == 0b0001:
        return ~(wa | wb)
    if bits == 0b1001:
        return ~(wa ^ wb)
    return None


def _constant_candidates(
    workspace: CandidateWorkspace,
    target: Gate,
    branch: Optional[tuple[str, int]],
    va: np.ndarray,
    obs: np.ndarray,
    options: CandidateOptions,
    found: list[Candidate],
) -> None:
    """Tie-cell substitutions where the signal is constant when observed."""
    library = workspace.netlist.library
    if library is None:
        return
    kind = OS2 if branch is None else IS2
    for value in (0, 1):
        if library.constant(bool(value)) is None:
            continue
        # Signal must equal `value` on every observable pattern.
        mismatch = (~va & obs) if value else (va & obs)
        if mismatch.any():
            continue
        _try_candidate(
            workspace.estimator,
            Substitution(kind, target.name, "", branch=branch, constant=value),
            found,
            options.min_quick_gain,
        )


def _pair_candidates(
    workspace: CandidateWorkspace,
    target: Gate,
    branch: Optional[tuple[str, int]],
    va: np.ndarray,
    obs: np.ndarray,
    source_mask: np.ndarray,
    options: CandidateOptions,
) -> list[Candidate]:
    """OS3/IS3: insert a new 2-input gate over a short source list."""
    estimator = workspace.estimator
    netlist = workspace.netlist
    cells = _two_input_cells(netlist, options)
    if not cells:
        return []
    # Rank sources by activity: low-activity signals make cheap drivers.
    # The round's stable activity order restricted to the legal sources is
    # exactly what sorting them per target would give.
    ranked: list[int] = []
    for i in workspace.act_order:
        if source_mask[i]:
            ranked.append(i)
            if len(ranked) == options.pair_source_limit:
                break
    kind = OS3 if branch is None else IS3
    table = workspace.pair_compat((target.name, branch), ranked, va, obs, cells)
    found: list[Candidate] = []
    # argwhere yields (ai, bi, cell) in lexicographic order — identical to
    # the nested  for ai / for bi > ai / for cell  enumeration.
    k = len(ranked)
    upper = np.zeros((k, k), dtype=bool)
    if k >= 2:
        upper[np.triu_indices(k, 1)] = True
    for ai, bi, ci in np.argwhere(table & upper[:, :, None]):
        _try_candidate(
            estimator,
            Substitution(
                kind,
                target.name,
                workspace.stems[ranked[ai]].name,
                branch=branch,
                source2=workspace.stems[ranked[bi]].name,
                new_cell=cells[ci].name,
            ),
            found,
            options.min_quick_gain,
        )
    return found


def generate_candidates(
    estimator: PowerEstimator,
    options: CandidateOptions | None = None,
) -> list[Candidate]:
    """One-shot candidate generation (fresh workspace, then discarded)."""
    return CandidateWorkspace(estimator).generate(options)
