"""Candidate-substitution generation (the paper's
``get_candidate_substitutions``).

Following refs [2, 5], candidates are found with simulation rather than
explicit don't-care computation: a substitution can only be permissible if
the substituting function agrees with the substituted signal on every
pattern where that signal is *observable* at some primary output.  With the
committed bit-parallel pattern set this is a handful of vector operations
per (target, source) pair:

    compatible(a <- f)  iff  (word(f) XOR word(a)) AND obs(a) == 0

Survivors are true candidates in the paper's sense — *potentially*
permissible; the exact ATPG check happens later, per selected move.

To keep rounds bounded the generator ranks sources per target by the
no-re-estimation gain ``PG_A + PG_B`` and keeps the best few; 3-signal
substitutions (OS3/IS3) additionally restrict the pair search to a short
list of low-activity sources and are only attempted where the dying region
is worth at least one new gate.

:class:`CandidateWorkspace` holds the expensive per-netlist state — the
batched observability maps, the stem-value matrix, the stem-reachability
matrix, and a content-validated cache of OS3/IS3 pair-compatibility tables
— and keeps it alive across optimizer rounds.  After a committed edit the
caller reports the dirty gates via :meth:`CandidateWorkspace.invalidate`
and only the affected observability masks are recomputed; everything
derived from unchanged signals is reused.  Candidates themselves are
re-enumerated every round in a fixed order so the emitted list is
bit-identical to a from-scratch generation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Optional

import numpy as np

from repro.errors import TransformError
from repro.kernels.words import popcount, popcount_lastaxis
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.observability import ObservabilityMaps
from repro.netlist.simulate import evaluate_cell
from repro.netlist.traverse import topological_order
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.transform.gain import (
    GainBreakdown,
    dominated_region,
    quick_gain,
    region_power,
)
from repro.transform.substitution import IS2, IS3, OS2, OS3, Substitution


@dataclass(frozen=True)
class CandidateOptions:
    """Knobs for candidate generation."""

    enable_os2: bool = True
    enable_is2: bool = True
    enable_os3: bool = True
    enable_is3: bool = True
    allow_inversion: bool = True
    #: Best candidates kept per target signal/branch.
    max_per_target: int = 6
    #: Global cap on the returned candidate list.
    max_total: int = 4000
    #: Source-list length for the OS3/IS3 pair search.
    pair_source_limit: int = 14
    #: Cell names usable as the inserted OS3/IS3 gate (None = all 2-input).
    os3_cells: Optional[tuple[str, ...]] = None
    #: Drop candidates whose quick gain is below this (None keeps all).
    min_quick_gain: Optional[float] = None
    #: Also propose substitutions by library tie cells (redundancy removal)
    #: when a signal is constant on every observable pattern.  Off by
    #: default: the paper's move set is signal substitutions only.
    constant_substitution: bool = False

    def to_dict(self) -> dict:
        """JSON-representable form; inverse of :meth:`from_dict`."""
        data = asdict(self)
        if self.os3_cells is not None:
            data["os3_cells"] = list(self.os3_cells)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateOptions":
        """Rebuild from :meth:`to_dict` output; unknown keys are errors."""
        known = {entry.name for entry in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown CandidateOptions field(s): {', '.join(unknown)}"
            )
        kwargs = dict(data)
        if kwargs.get("os3_cells") is not None:
            kwargs["os3_cells"] = tuple(kwargs["os3_cells"])
        return cls(**kwargs)


@dataclass
class Candidate:
    """A potentially permissible substitution with its quick gain."""

    substitution: Substitution
    gain: GainBreakdown
    #: Memoized ranking key (every candidate is sorted at least twice).
    _key: Optional[tuple[float, str]] = None

    @property
    def quick(self) -> float:
        return self.gain.quick


def _require_sim(estimator: PowerEstimator) -> SimulationProbability:
    engine = estimator.engine
    if not isinstance(engine, SimulationProbability):
        raise TransformError(
            "candidate generation needs a SimulationProbability engine"
        )
    return engine


class CandidateWorkspace:
    """Persistent candidate-generation state shared across rounds.

    Owns an :class:`ObservabilityMaps` over the estimator's committed
    simulation.  Construction pays one full reverse sweep; afterwards the
    optimizer calls :meth:`invalidate` with the dirty gates of each applied
    move and the masks update incrementally.  :meth:`generate` enumerates
    candidates against the current netlist in the same deterministic order
    as a fresh workspace would.
    """

    def __init__(self, estimator: PowerEstimator):
        self.estimator = estimator
        self.netlist: Netlist = estimator.netlist
        self.engine = _require_sim(estimator)
        self.sim = self.engine.sim
        self.maps = ObservabilityMaps(self.sim)
        #: (target name, branch) -> content-validated pair-compat table.
        self._pair_cache: dict[
            tuple[str, Optional[tuple[str, int]]], tuple
        ] = {}
        #: Keys whose cache entry was validated/rebuilt by this round's
        #: batch precompute, mapped to whether it counted as a reuse.
        self._fresh: dict[tuple[str, Optional[tuple[str, int]]], bool] = {}
        #: Lifetime tallies of pair-table reuse, read by the run tracer.
        self.pair_cache_hits = 0
        self.pair_cache_misses = 0
        #: Dirty gates accumulated since the last mask flush (by id: names
        #: can be freed by one edit and reused by a later one).
        self._pending: dict[int, Gate] = {}
        # Per-round state, rebuilt by _refresh_round().
        self.stems: list[Gate] = []
        self.index: dict[str, int] = {}
        self.matrix: Optional[np.ndarray] = None
        self.matrix_next: Optional[np.ndarray] = None
        self.reach: Optional[np.ndarray] = None
        self.activity: list[float] = []
        self.act_order: list[int] = []
        self.act_order_array: np.ndarray = np.zeros(0, dtype=np.intp)
        #: The round's deduplicated 2-input cell list (None outside a
        #: generate() round with pair substitutions enabled).
        self._round_cells: Optional[list] = None

    # ------------------------------------------------------------------
    def invalidate(self, dirty: list[Gate]) -> None:
        """Report committed-netlist edits (values, fanins, fanouts, POs).

        ``dirty`` must contain every live gate whose committed value,
        fanin list, fanout list, or PO binding changed since the last
        call — :meth:`AppliedSubstitution.dirty_gate_names` plus the
        resimulation-changed gates.  Dead gates are detected by absence.

        The masks are not recomputed here: edits accumulate and flush in
        one batch at the next :meth:`generate`, so a round of applied
        moves pays for one incremental sweep, not one per move.
        """
        for gate in dirty:
            self._pending[id(gate)] = gate

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        self.maps.update_after_edit(
            [g for g in self._pending.values() if g.name in self.netlist.gates]
        )
        self._pending.clear()
        live = self.netlist.gates
        for key in [k for k in self._pair_cache if k[0] not in live]:
            del self._pair_cache[key]

    # ------------------------------------------------------------------
    def _refresh_round(self) -> None:
        self._flush_pending()
        self.stems = list(topological_order(self.netlist))
        self.index = {g.name: i for i, g in enumerate(self.stems)}
        self.matrix = np.stack(
            [self.sim.value(g.name) for g in self.stems]
        )  # (num stems, nwords)
        sim_next = getattr(self.engine, "sim_next", None)
        self.matrix_next = (
            np.stack([sim_next.value(g.name) for g in self.stems])
            if sim_next is not None
            else None
        )
        self.reach = self._reachability()
        # Stable activity order over all stems: restricting it to any
        # source subset gives the same list as sorting that subset, so the
        # per-target OS3/IS3 rankings come from one sort per round.
        self.activity = [self.estimator.activity(g) for g in self.stems]
        self.act_order = sorted(
            range(len(self.stems)), key=self.activity.__getitem__
        )
        self.act_order_array = np.asarray(self.act_order, dtype=np.intp)

    def _reachability(self) -> np.ndarray:
        """Boolean matrix: ``reach[i, j]`` iff stem j is i or in TFO(i)."""
        n = len(self.stems)
        reach = np.zeros((n, n), dtype=bool)
        # Reverse topological order: every sink row is final when OR-ed in.
        for i in range(n - 1, -1, -1):
            row = reach[i]
            row[i] = True
            for sink, _pin in self.stems[i].fanouts:
                row |= reach[self.index[sink.name]]
        return reach

    def legal_sources(self, avoid: Gate, target: Gate) -> np.ndarray:
        """Stem mask of usable sources: outside TFO(avoid), not target."""
        mask = ~self.reach[self.index[avoid.name]]
        mask[self.index[target.name]] = False
        return mask

    def compatible_rows(
        self, target_word: np.ndarray, obs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(direct, inverted) boolean masks over stems: agree on obs."""
        diff = (self.matrix ^ target_word) & obs
        direct = ~diff.any(axis=1)
        inverted = ~((diff ^ obs).any(axis=1))
        return direct, inverted

    # ------------------------------------------------------------------
    def pair_tables(
        self,
        key: tuple[str, Optional[tuple[str, int]]],
        ranked: list[int],
        va: np.ndarray,
        obs: np.ndarray,
        cells: list,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(compat, activity) tables over ``ranked`` sources × cells.

        ``compat[ai, bi, ci]`` (ai < bi) is True when the cell over the
        ranked sources agrees with the target on every observable pattern;
        ``activity[ai, bi, ci]`` is the switching activity the inserted
        gate's output would have — the whole OS3/IS3 gain table in two
        broadcast passes instead of one ``evaluate_cell`` per tuple.
        Cached per target/branch; entries self-validate against the array
        content they were computed from, so no eager invalidation needed.
        """
        fresh = self._fresh.pop(key, None)
        if fresh is not None:
            # The round's batch precompute already validated (or rebuilt)
            # this entry against the exact same content.
            if fresh:
                self.pair_cache_hits += 1
            else:
                self.pair_cache_misses += 1
            cached = self._pair_cache[key]
            return cached[6], cached[7]
        names = tuple(self.stems[i].name for i in ranked)
        cell_sig = tuple(c.name for c in cells)
        rows, rows_next = self._ranked_rows(ranked)
        if self._cache_valid(key, names, cell_sig, va, obs, rows, rows_next):
            self.pair_cache_hits += 1
            cached = self._pair_cache[key]
            return cached[6], cached[7]
        self.pair_cache_misses += 1
        table, act = self._compute_pair_tables(rows, rows_next, va, obs, cells)
        self._pair_cache[key] = (
            names, cell_sig, va, obs, rows, rows_next, table, act,
        )
        return table, act

    def _ranked_rows(
        self, ranked: list[int]
    ) -> tuple[np.ndarray, Optional[np.ndarray]]:
        rows = self.matrix[ranked] if ranked else np.zeros(
            (0, self.sim.nwords), dtype=np.uint64
        )
        rows_next = (
            self.matrix_next[ranked]
            if self.matrix_next is not None and ranked
            else (None if self.matrix_next is None else rows[:0])
        )
        return rows, rows_next

    def _cache_valid(
        self, key, names, cell_sig, va, obs, rows, rows_next
    ) -> bool:
        cached = self._pair_cache.get(key)
        if cached is None:
            return False
        (
            c_names, c_cells, c_va, c_obs, c_rows, c_rows_next,
            _c_table, _c_act,
        ) = cached
        next_match = (
            c_rows_next is None
            if rows_next is None
            else c_rows_next is not None
            and np.array_equal(c_rows_next, rows_next)
        )
        return (
            c_names == names
            and c_cells == cell_sig
            and next_match
            and np.array_equal(c_va, va)
            and np.array_equal(c_obs, obs)
            and np.array_equal(c_rows, rows)
        )

    def _ranked_sources(
        self, source_mask: np.ndarray, limit: int
    ) -> list[int]:
        """First ``limit`` legal sources in the round's activity order."""
        order = self.act_order_array
        return order[source_mask[order]][:limit].tolist()

    def _precompute_pair_tables(self, options: "CandidateOptions") -> None:
        """Batch-(re)build every pair table this round's enumeration needs.

        Computing the tables one target at a time spends more wall clock on
        numpy dispatch than on bit-math; stacking all stale targets of equal
        source-list length into one broadcast pass amortises it.  Results
        land in ``_pair_cache`` exactly as the per-target path would have
        left them, and reuse accounting is deferred to :meth:`pair_tables`.
        """
        cells = self._round_cells
        if cells is None:
            cells = _two_input_cells(self.netlist, options)
        if not cells:
            return
        limit = options.pair_source_limit
        jobs: list[tuple] = []
        if options.enable_os3:
            for target in self.stems:
                if target.is_input or not target.fanout_count():
                    continue
                jobs.append((
                    (target.name, None),
                    self._ranked_sources(
                        self.legal_sources(target, target), limit
                    ),
                    self.sim.value(target.name),
                    self.maps.stem[target.name],
                ))
        if options.enable_is3:
            for target in self.stems:
                if target.fanout_count() < 2:
                    continue
                for sink, pin in list(target.fanouts):
                    jobs.append((
                        (target.name, (sink.name, pin)),
                        self._ranked_sources(
                            self.legal_sources(sink, target), limit
                        ),
                        self.sim.value(target.name),
                        self.maps.branch(sink, pin),
                    ))
        cell_sig = tuple(c.name for c in cells)
        by_k: dict[int, list[tuple]] = {}
        for key, ranked, va, obs in jobs:
            names = tuple(self.stems[i].name for i in ranked)
            rows, rows_next = self._ranked_rows(ranked)
            if self._cache_valid(
                key, names, cell_sig, va, obs, rows, rows_next
            ):
                self._fresh[key] = True
                continue
            self._fresh[key] = False
            by_k.setdefault(len(ranked), []).append(
                (key, names, va, obs, rows, rows_next)
            )
        for k, group in by_k.items():
            if k < 2:
                for key, names, va, obs, rows, rows_next in group:
                    table = np.zeros((k, k, len(cells)), dtype=bool)
                    act = np.zeros((k, k, len(cells)), dtype=np.float64)
                    self._pair_cache[key] = (
                        names, cell_sig, va, obs, rows, rows_next, table, act,
                    )
                continue
            rows_b = np.stack([job[4] for job in group])
            rows_next_b = (
                np.stack([job[5] for job in group])
                if group[0][5] is not None
                else None
            )
            va_b = np.stack([job[2] for job in group])
            obs_b = np.stack([job[3] for job in group])
            tables, acts = self._compute_pair_tables_batch(
                rows_b, rows_next_b, va_b, obs_b, cells
            )
            for ji, (key, names, va, obs, rows, rows_next) in enumerate(
                group
            ):
                self._pair_cache[key] = (
                    names, cell_sig, va, obs, rows, rows_next,
                    tables[ji], acts[ji],
                )

    def _compute_pair_tables(
        self,
        rows: np.ndarray,
        rows_next: Optional[np.ndarray],
        va: np.ndarray,
        obs: np.ndarray,
        cells: list,
    ) -> tuple[np.ndarray, np.ndarray]:
        k = len(rows)
        total = self.sim.num_patterns
        table = np.zeros((k, k, len(cells)), dtype=bool)
        act = np.zeros((k, k, len(cells)), dtype=np.float64)
        if k < 2:
            return table, act
        wa = rows[:, None, :]  # (k, 1, w)
        wb = rows[None, :, :]  # (1, k, w)
        if rows_next is not None:
            na = rows_next[:, None, :]
            nb = rows_next[None, :, :]
        # Complement pairs (AND/NAND, OR/NOR, XOR/XNOR) share one kernel
        # evaluation: with d = (word ^ va) & obs the complement's masked
        # disagreement is d ^ obs, and its switching activity is identical
        # (~w ^ ~w' == w ^ w'; 2p(1-p) is symmetric in p <-> 1-p).
        done: dict[int, tuple[np.ndarray, int]] = {}
        full_words = total == 64 * self.sim.nwords
        for ci, cell in enumerate(cells):
            bits = cell.function.bits
            mate = done.get(~bits & 0b1111)
            if mate is not None:
                d_mate, mi = mate
                table[:, :, ci] = ~((d_mate ^ obs).any(axis=2))
                if rows_next is not None or full_words:
                    act[:, :, ci] = act[:, :, mi]
                else:
                    # Padding bits flip under complement, so the shortcut
                    # is only exact when every word bit is a pattern.
                    word = _two_input_word(bits, wa, wb)
                    p = popcount_lastaxis(word) / total
                    act[:, :, ci] = 2.0 * p * (1.0 - p)
                continue
            word = _two_input_word(bits, wa, wb)
            if word is not None:
                d = (word ^ va) & obs
                table[:, :, ci] = ~(d.any(axis=2))
                if rows_next is not None:
                    word_next = _two_input_word(bits, na, nb)
                    act[:, :, ci] = (
                        popcount_lastaxis(word ^ word_next) / total
                    )
                else:
                    p = popcount_lastaxis(word) / total
                    act[:, :, ci] = 2.0 * p * (1.0 - p)
                done[bits] = (d, ci)
                continue
            # Odd cell without a broadcast fast path: per-pair fallback.
            for ai in range(k):
                for bi in range(ai + 1, k):
                    w = evaluate_cell(
                        cell, [rows[ai], rows[bi]], self.sim.nwords
                    )
                    table[ai, bi, ci] = not ((w ^ va) & obs).any()
                    if rows_next is not None:
                        w_next = evaluate_cell(
                            cell,
                            [rows_next[ai], rows_next[bi]],
                            self.sim.nwords,
                        )
                        act[ai, bi, ci] = popcount(w ^ w_next) / total
                    else:
                        p = popcount(w) / total
                        act[ai, bi, ci] = 2.0 * p * (1.0 - p)
        return table, act

    def _compute_pair_tables_batch(
        self,
        rows: np.ndarray,
        rows_next: Optional[np.ndarray],
        va: np.ndarray,
        obs: np.ndarray,
        cells: list,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_compute_pair_tables` over a job axis.

        ``rows`` is ``(jobs, k, words)``; ``va``/``obs`` are ``(jobs,
        words)``.  Purely elementwise over the extra axis, so each slice
        is bit-identical to the per-target computation.
        """
        j, k, _w = rows.shape
        total = self.sim.num_patterns
        table = np.zeros((j, k, k, len(cells)), dtype=bool)
        act = np.zeros((j, k, k, len(cells)), dtype=np.float64)
        wa = rows[:, :, None, :]  # (j, k, 1, w)
        wb = rows[:, None, :, :]  # (j, 1, k, w)
        if rows_next is not None:
            na = rows_next[:, :, None, :]
            nb = rows_next[:, None, :, :]
        va_b = va[:, None, None, :]
        obs_b = obs[:, None, None, :]
        done: dict[int, tuple[np.ndarray, int]] = {}
        full_words = total == 64 * self.sim.nwords
        for ci, cell in enumerate(cells):
            bits = cell.function.bits
            mate = done.get(~bits & 0b1111)
            if mate is not None:
                d_mate, mi = mate
                table[:, :, :, ci] = ~((d_mate ^ obs_b).any(axis=3))
                if rows_next is not None or full_words:
                    act[:, :, :, ci] = act[:, :, :, mi]
                else:
                    word = _two_input_word(bits, wa, wb)
                    p = popcount_lastaxis(word) / total
                    act[:, :, :, ci] = 2.0 * p * (1.0 - p)
                continue
            word = _two_input_word(bits, wa, wb)
            if word is not None:
                d = (word ^ va_b) & obs_b
                table[:, :, :, ci] = ~(d.any(axis=3))
                if rows_next is not None:
                    word_next = _two_input_word(bits, na, nb)
                    act[:, :, :, ci] = (
                        popcount_lastaxis(word ^ word_next) / total
                    )
                else:
                    p = popcount_lastaxis(word) / total
                    act[:, :, :, ci] = 2.0 * p * (1.0 - p)
                done[bits] = (d, ci)
                continue
            # Odd cell without a broadcast fast path: per-pair fallback.
            for ji in range(j):
                for ai in range(k):
                    for bi in range(ai + 1, k):
                        w = evaluate_cell(
                            cell,
                            [rows[ji, ai], rows[ji, bi]],
                            self.sim.nwords,
                        )
                        table[ji, ai, bi, ci] = not (
                            (w ^ va[ji]) & obs[ji]
                        ).any()
                        if rows_next is not None:
                            w_next = evaluate_cell(
                                cell,
                                [rows_next[ji, ai], rows_next[ji, bi]],
                                self.sim.nwords,
                            )
                            act[ji, ai, bi, ci] = (
                                popcount(w ^ w_next) / total
                            )
                        else:
                            p = popcount(w) / total
                            act[ji, ai, bi, ci] = 2.0 * p * (1.0 - p)
        return table, act

    # ------------------------------------------------------------------
    def generate(
        self, options: CandidateOptions | None = None
    ) -> list[Candidate]:
        """All simulation-compatible substitutions, best quick gain first."""
        options = options or CandidateOptions()
        self._refresh_round()
        self._fresh.clear()
        if options.enable_os3 or options.enable_is3:
            self._round_cells = _two_input_cells(self.netlist, options)
            self._precompute_pair_tables(options)
        else:
            self._round_cells = None
        collected: list[Candidate] = []

        if options.enable_os2 or options.enable_os3:
            for target in self.stems:
                if target.is_input or not target.fanout_count():
                    continue
                collected.extend(_stem_candidates(self, target, options))

        if options.enable_is2 or options.enable_is3:
            for target in self.stems:
                if target.fanout_count() < 2:
                    continue  # single-branch stems are covered by OS2
                for sink, pin in list(target.fanouts):
                    collected.extend(
                        _branch_candidates(self, target, sink, pin, options)
                    )

        # Ties on quick gain are broken by the canonical candidate ID, so
        # the ranking (and with it the whole move sequence) is reproducible
        # across Python builds and immune to generation-order changes.
        collected.sort(key=_rank_key)
        return collected[: options.max_total]


def _two_input_cells(netlist: Netlist, options: CandidateOptions):
    """OS3/IS3 insertion gates: the library's capability query, or the
    explicit ``os3_cells`` override (deduped the same way)."""
    library = netlist.library
    if library is None:
        return []
    if options.os3_cells is None:
        return library.insertion_cells()
    cells = [library[name] for name in options.os3_cells]
    # One cell per distinct function (cheapest) keeps the pair search lean.
    by_function = {}
    for cell in sorted(cells, key=lambda c: c.area):
        by_function.setdefault(cell.function.bits, cell)
    return list(by_function.values())


def _rank_key(candidate: Candidate) -> tuple[float, str]:
    """Best quick gain first; equal gains in canonical candidate-ID order."""
    key = candidate._key
    if key is None:
        key = candidate._key = (
            -candidate.quick, candidate.substitution.candidate_id()
        )
    return key


def _keep_best(
    candidates: list[Candidate], limit: int
) -> list[Candidate]:
    candidates.sort(key=_rank_key)
    return candidates[:limit]


def _try_candidate(
    estimator: PowerEstimator,
    substitution: Substitution,
    collected: list[Candidate],
    min_quick: Optional[float],
) -> None:
    try:
        gain = quick_gain(estimator, substitution)
    except TransformError:
        return  # e.g. source inside the dying region
    if min_quick is not None and gain.quick < min_quick:
        return
    collected.append(Candidate(substitution, gain))


def _stem_candidates(
    workspace: CandidateWorkspace,
    target: Gate,
    options: CandidateOptions,
) -> list[Candidate]:
    """OS2/OS3 candidates for one stem."""
    estimator = workspace.estimator
    netlist = workspace.netlist
    obs = workspace.maps.stem[target.name]
    va = workspace.sim.value(target.name)
    source_mask = workspace.legal_sources(target, target)
    direct, inverted = workspace.compatible_rows(va, obs)

    # Output substitutions from sources outside the dying region all share
    # the region, its released power, and the moved load — computed once
    # per target and reused across OS2 singles and the OS3 pair table.
    region = dominated_region(netlist, target)
    pg_a = region_power(estimator, region)
    moved = netlist.load_of(target)
    area_base = -sum(g.cell.area for g in region if not g.is_input)
    region_ids = {id(g) for g in region}
    dying = [g.name for g in region]
    region_info = (region, pg_a, moved, area_base, region_ids, dying)
    library = netlist.library
    inverter = library.inverter() if library is not None else None

    found: list[Candidate] = []
    if options.constant_substitution:
        _constant_candidates(
            workspace, target, None, va, obs, options, found
        )
    if options.enable_os2:
        # Compatible sources are sparse: enumerate just the hits instead
        # of testing every legal stem.  (Emission order differs from the
        # per-index walk, but _keep_best re-sorts deterministically.)
        hits: list[tuple[np.ndarray, bool]] = [
            (np.nonzero(source_mask & direct)[0], False)
        ]
        if options.allow_inversion:
            hits.append(
                (np.nonzero(source_mask & inverted & ~direct)[0], True)
            )
        for indices, invert in hits:
            for i in indices:
                gate_i = workspace.stems[i]
                substitution = Substitution(
                    OS2, target.name, gate_i.name, invert1=invert
                )
                if id(gate_i) in region_ids or (
                    invert and inverter is None
                ):
                    # A source inside the region reshapes it: exact path.
                    _try_candidate(
                        estimator, substitution, found,
                        options.min_quick_gain,
                    )
                    continue
                act_src = workspace.activity[i]
                if invert:
                    pg_b = -(
                        inverter.pins[0].load * act_src + moved * act_src
                    )
                    area_delta = area_base + inverter.area
                else:
                    pg_b = -(moved * act_src)
                    area_delta = area_base
                gain = GainBreakdown(
                    pg_a=pg_a,
                    pg_b=pg_b,
                    area_delta=area_delta,
                    dying=list(dying),
                )
                if (
                    options.min_quick_gain is not None
                    and gain.quick < options.min_quick_gain
                ):
                    continue
                found.append(Candidate(substitution, gain))

    if options.enable_os3:
        found.extend(
            _pair_candidates(
                workspace, target, None, va, obs, source_mask, options,
                region_info,
            )
        )
    return _keep_best(found, options.max_per_target)


def _branch_candidates(
    workspace: CandidateWorkspace,
    target: Gate,
    sink: Gate,
    pin: int,
    options: CandidateOptions,
) -> list[Candidate]:
    """IS2/IS3 candidates for one branch of ``target``."""
    estimator = workspace.estimator
    netlist = workspace.netlist
    obs = workspace.maps.branch(sink, pin)
    va = workspace.sim.value(target.name)
    source_mask = workspace.legal_sources(sink, target)
    direct, inverted = workspace.compatible_rows(va, obs)
    branch = (sink.name, pin)

    # The target keeps its other fanouts (the caller guarantees >= 2), so
    # the dying region is empty for every branch substitution: the gain
    # scalars are shared across IS2 singles and the IS3 pair table.
    moved = sink.cell.pins[pin].load
    pg_a = moved * estimator.activity(target)
    region_info = (None, pg_a, moved, 0, set(), [])
    library = netlist.library
    inverter = library.inverter() if library is not None else None

    found: list[Candidate] = []
    if options.constant_substitution:
        _constant_candidates(
            workspace, target, branch, va, obs, options, found
        )
    if options.enable_is2:
        hits: list[tuple[np.ndarray, bool]] = [
            (np.nonzero(source_mask & direct)[0], False)
        ]
        if options.allow_inversion:
            hits.append(
                (np.nonzero(source_mask & inverted & ~direct)[0], True)
            )
        for indices, invert in hits:
            for i in indices:
                name = workspace.stems[i].name
                substitution = Substitution(
                    IS2, target.name, name, invert1=invert, branch=branch
                )
                if invert and inverter is None:
                    _try_candidate(
                        estimator, substitution, found,
                        options.min_quick_gain,
                    )
                    continue
                act_src = workspace.activity[i]
                if invert:
                    pg_b = -(
                        inverter.pins[0].load * act_src + moved * act_src
                    )
                    area_delta = inverter.area
                else:
                    pg_b = -(moved * act_src)
                    area_delta = 0
                gain = GainBreakdown(
                    pg_a=pg_a, pg_b=pg_b, area_delta=area_delta, dying=[]
                )
                if (
                    options.min_quick_gain is not None
                    and gain.quick < options.min_quick_gain
                ):
                    continue
                found.append(Candidate(substitution, gain))

    if options.enable_is3:
        found.extend(
            _pair_candidates(
                workspace, target, branch, va, obs, source_mask, options,
                region_info,
            )
        )
    return _keep_best(found, options.max_per_target)


#: Read-only ``k × k`` strict-upper-triangle masks, shared across targets
#: (every target with the same ranked-list length uses the same mask).
_UPPER_CACHE: dict[int, np.ndarray] = {}


def _upper_mask(k: int) -> np.ndarray:
    mask = _UPPER_CACHE.get(k)
    if mask is None:
        mask = np.zeros((k, k), dtype=bool)
        if k >= 2:
            mask[np.triu_indices(k, 1)] = True
        _UPPER_CACHE[k] = mask
    return mask


def _two_input_word(bits: int, wa: np.ndarray, wb: np.ndarray):
    """Fast path for the common 2-input functions (pin order symmetric)."""
    if bits == 0b1000:
        return wa & wb
    if bits == 0b1110:
        return wa | wb
    if bits == 0b0110:
        return wa ^ wb
    if bits == 0b0111:
        return ~(wa & wb)
    if bits == 0b0001:
        return ~(wa | wb)
    if bits == 0b1001:
        return ~(wa ^ wb)
    return None


def _constant_candidates(
    workspace: CandidateWorkspace,
    target: Gate,
    branch: Optional[tuple[str, int]],
    va: np.ndarray,
    obs: np.ndarray,
    options: CandidateOptions,
    found: list[Candidate],
) -> None:
    """Tie-cell substitutions where the signal is constant when observed."""
    library = workspace.netlist.library
    if library is None:
        return
    kind = OS2 if branch is None else IS2
    for value in (0, 1):
        if library.constant(bool(value)) is None:
            continue
        # Signal must equal `value` on every observable pattern.
        mismatch = (~va & obs) if value else (va & obs)
        if mismatch.any():
            continue
        _try_candidate(
            workspace.estimator,
            Substitution(kind, target.name, "", branch=branch, constant=value),
            found,
            options.min_quick_gain,
        )


def _pair_candidates(
    workspace: CandidateWorkspace,
    target: Gate,
    branch: Optional[tuple[str, int]],
    va: np.ndarray,
    obs: np.ndarray,
    source_mask: np.ndarray,
    options: CandidateOptions,
    region_info: Optional[tuple] = None,
) -> list[Candidate]:
    """OS3/IS3: insert a new 2-input gate over a short source list."""
    estimator = workspace.estimator
    netlist = workspace.netlist
    cells = workspace._round_cells
    if cells is None:
        cells = _two_input_cells(netlist, options)
    if not cells:
        return []
    # Rank sources by activity: low-activity signals make cheap drivers.
    # The round's stable activity order restricted to the legal sources is
    # exactly what sorting them per target would give.
    ranked = workspace._ranked_sources(source_mask, options.pair_source_limit)
    kind = OS3 if branch is None else IS3
    table, act = workspace.pair_tables(
        (target.name, branch), ranked, va, obs, cells
    )

    # Per-target gain scalars: every surviving tuple shares the dying
    # region (sources are ranked from *outside* it — see below), the PG_A
    # sum, and the moved load, so the whole gain table is one broadcast
    # per cell instead of one quick_gain per tuple.
    if branch is None:
        if region_info is not None:
            region, pg_a, moved, area_base, region_ids, dying = region_info
        else:
            region = dominated_region(netlist, target)
            pg_a = region_power(estimator, region)
            moved = netlist.load_of(target)
            dying = [g.name for g in region]
            area_base = -sum(g.cell.area for g in region if not g.is_input)
            region_ids = {id(g) for g in region}
    elif region_info is not None:
        _region, pg_a, moved, area_base, region_ids, dying = region_info
    else:
        sink = netlist.gate(branch[0])
        moved = sink.cell.pins[branch[1]].load
        pg_a = moved * estimator.activity(target)
        dying = []
        area_base = 0  # -sum over the empty region
        region_ids = set()
    # A source inside the unconstrained region would reshape it (the keep
    # set binds); those rare tuples take the exact per-candidate path.
    in_region = [id(workspace.stems[i]) in region_ids for i in ranked]
    act_src = [workspace.activity[i] for i in ranked]

    found: list[Candidate] = []
    # argwhere yields (ai, bi, cell) in lexicographic order — identical to
    # the nested  for ai / for bi > ai / for cell  enumeration.
    upper = _upper_mask(len(ranked))
    for ai, bi, ci in np.argwhere(table & upper[:, :, None]):
        substitution = Substitution(
            kind,
            target.name,
            workspace.stems[ranked[ai]].name,
            branch=branch,
            source2=workspace.stems[ranked[bi]].name,
            new_cell=cells[ci].name,
        )
        if in_region[ai] or in_region[bi]:
            _try_candidate(
                estimator, substitution, found, options.min_quick_gain
            )
            continue
        cell = cells[ci]
        # Same grouping as the broadcast table this replaces, so the
        # float is bit-identical to the vectorized computation.
        pg_b = -(
            (
                cell.pins[0].load * act_src[ai]
                + cell.pins[1].load * act_src[bi]
            )
            + moved * act[ai, bi, ci]
        )
        gain = GainBreakdown(
            pg_a=pg_a,
            pg_b=float(pg_b),
            area_delta=area_base + cell.area,
            dying=list(dying),
        )
        if (
            options.min_quick_gain is not None
            and gain.quick < options.min_quick_gain
        ):
            continue
        found.append(Candidate(substitution, gain))
    return found


def generate_candidates(
    estimator: PowerEstimator,
    options: CandidateOptions | None = None,
) -> list[Candidate]:
    """One-shot candidate generation (fresh workspace, then discarded)."""
    return CandidateWorkspace(estimator).generate(options)
