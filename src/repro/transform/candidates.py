"""Candidate-substitution generation (the paper's
``get_candidate_substitutions``).

Following refs [2, 5], candidates are found with simulation rather than
explicit don't-care computation: a substitution can only be permissible if
the substituting function agrees with the substituted signal on every
pattern where that signal is *observable* at some primary output.  With the
committed bit-parallel pattern set this is a handful of vector operations
per (target, source) pair:

    compatible(a <- f)  iff  (word(f) XOR word(a)) AND obs(a) == 0

Survivors are true candidates in the paper's sense — *potentially*
permissible; the exact ATPG check happens later, per selected move.

To keep rounds bounded the generator ranks sources per target by the
no-re-estimation gain ``PG_A + PG_B`` and keeps the best few; 3-signal
substitutions (OS3/IS3) additionally restrict the pair search to a short
list of low-activity sources and are only attempted where the dying region
is worth at least one new gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TransformError
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.simulate import evaluate_cell
from repro.netlist.traverse import topological_order, transitive_fanout
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.transform.gain import GainBreakdown, quick_gain
from repro.transform.substitution import IS2, IS3, OS2, OS3, Substitution


@dataclass(frozen=True)
class CandidateOptions:
    """Knobs for candidate generation."""

    enable_os2: bool = True
    enable_is2: bool = True
    enable_os3: bool = True
    enable_is3: bool = True
    allow_inversion: bool = True
    #: Best candidates kept per target signal/branch.
    max_per_target: int = 6
    #: Global cap on the returned candidate list.
    max_total: int = 4000
    #: Source-list length for the OS3/IS3 pair search.
    pair_source_limit: int = 14
    #: Cell names usable as the inserted OS3/IS3 gate (None = all 2-input).
    os3_cells: Optional[tuple[str, ...]] = None
    #: Drop candidates whose quick gain is below this (None keeps all).
    min_quick_gain: Optional[float] = None
    #: Also propose substitutions by library tie cells (redundancy removal)
    #: when a signal is constant on every observable pattern.  Off by
    #: default: the paper's move set is signal substitutions only.
    constant_substitution: bool = False


@dataclass
class Candidate:
    """A potentially permissible substitution with its quick gain."""

    substitution: Substitution
    gain: GainBreakdown

    @property
    def quick(self) -> float:
        return self.gain.quick


def _require_sim(estimator: PowerEstimator) -> SimulationProbability:
    engine = estimator.engine
    if not isinstance(engine, SimulationProbability):
        raise TransformError(
            "candidate generation needs a SimulationProbability engine"
        )
    return engine


class _Workspace:
    """Shared per-round data: stem value matrix and TFO id sets."""

    def __init__(self, estimator: PowerEstimator):
        self.estimator = estimator
        self.netlist = estimator.netlist
        self.engine = _require_sim(estimator)
        self.sim = self.engine.sim
        self.stems: list[Gate] = list(topological_order(self.netlist))
        self.index = {g.name: i for i, g in enumerate(self.stems)}
        self.matrix = np.stack(
            [self.sim.value(g.name) for g in self.stems]
        )  # (num stems, nwords)
        self._tfo_cache: dict[str, frozenset[int]] = {}

    def tfo_ids(self, gate: Gate) -> frozenset[int]:
        cached = self._tfo_cache.get(gate.name)
        if cached is None:
            ids = {id(gate)}
            ids.update(
                id(g) for g in transitive_fanout(self.netlist, [gate])
            )
            cached = frozenset(ids)
            self._tfo_cache[gate.name] = cached
        return cached

    def compatible_rows(
        self, target_word: np.ndarray, obs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(direct, inverted) boolean masks over stems: agree on obs."""
        diff = (self.matrix ^ target_word) & obs
        direct = ~diff.any(axis=1)
        inverted = ~((diff ^ obs).any(axis=1))
        return direct, inverted


def _legal_sources(
    workspace: _Workspace, forbidden: frozenset[int], target: Gate
) -> list[int]:
    """Stem indices usable as sources (no cycles, not the target)."""
    rows = []
    for i, gate in enumerate(workspace.stems):
        if id(gate) in forbidden or gate is target:
            continue
        rows.append(i)
    return rows


def _two_input_cells(netlist: Netlist, options: CandidateOptions):
    library = netlist.library
    if library is None:
        return []
    if options.os3_cells is not None:
        cells = [library[name] for name in options.os3_cells]
    else:
        cells = library.cells_with_inputs(2)
    # One cell per distinct function (cheapest) keeps the pair search lean.
    by_function = {}
    for cell in sorted(cells, key=lambda c: c.area):
        by_function.setdefault(cell.function.bits, cell)
    return list(by_function.values())


def _keep_best(
    candidates: list[Candidate], limit: int
) -> list[Candidate]:
    candidates.sort(key=lambda c: -c.quick)
    return candidates[:limit]


def _try_candidate(
    estimator: PowerEstimator,
    substitution: Substitution,
    collected: list[Candidate],
    min_quick: Optional[float],
) -> None:
    try:
        gain = quick_gain(estimator, substitution)
    except TransformError:
        return  # e.g. source inside the dying region
    if min_quick is not None and gain.quick < min_quick:
        return
    collected.append(Candidate(substitution, gain))


def _stem_candidates(
    workspace: _Workspace,
    target: Gate,
    options: CandidateOptions,
) -> list[Candidate]:
    """OS2/OS3 candidates for one stem."""
    estimator = workspace.estimator
    netlist = workspace.netlist
    sim = workspace.sim
    obs = sim.stem_observability(target)
    va = sim.value(target.name)
    forbidden = workspace.tfo_ids(target)
    sources = _legal_sources(workspace, forbidden, target)
    direct, inverted = workspace.compatible_rows(va, obs)

    found: list[Candidate] = []
    if options.constant_substitution:
        _constant_candidates(
            workspace, target, None, va, obs, options, found
        )
    if options.enable_os2:
        for i in sources:
            name = workspace.stems[i].name
            if direct[i]:
                _try_candidate(
                    estimator,
                    Substitution(OS2, target.name, name),
                    found,
                    options.min_quick_gain,
                )
            elif options.allow_inversion and inverted[i]:
                _try_candidate(
                    estimator,
                    Substitution(OS2, target.name, name, invert1=True),
                    found,
                    options.min_quick_gain,
                )

    if options.enable_os3:
        found.extend(
            _pair_candidates(
                workspace, target, None, va, obs, sources, options
            )
        )
    return _keep_best(found, options.max_per_target)


def _branch_candidates(
    workspace: _Workspace,
    target: Gate,
    sink: Gate,
    pin: int,
    options: CandidateOptions,
) -> list[Candidate]:
    """IS2/IS3 candidates for one branch of ``target``."""
    estimator = workspace.estimator
    sim = workspace.sim
    obs = sim.branch_observability(sink, pin)
    va = sim.value(target.name)
    forbidden = workspace.tfo_ids(sink)
    sources = _legal_sources(workspace, forbidden, target)
    direct, inverted = workspace.compatible_rows(va, obs)
    branch = (sink.name, pin)

    found: list[Candidate] = []
    if options.constant_substitution:
        _constant_candidates(
            workspace, target, branch, va, obs, options, found
        )
    if options.enable_is2:
        for i in sources:
            name = workspace.stems[i].name
            if name == target.name:
                continue
            if direct[i]:
                _try_candidate(
                    estimator,
                    Substitution(IS2, target.name, name, branch=branch),
                    found,
                    options.min_quick_gain,
                )
            elif options.allow_inversion and inverted[i]:
                _try_candidate(
                    estimator,
                    Substitution(
                        IS2, target.name, name, invert1=True, branch=branch
                    ),
                    found,
                    options.min_quick_gain,
                )

    if options.enable_is3:
        found.extend(
            _pair_candidates(
                workspace, target, branch, va, obs, sources, options
            )
        )
    return _keep_best(found, options.max_per_target)


def _two_input_word(bits: int, wa: np.ndarray, wb: np.ndarray):
    """Fast path for the common 2-input functions (pin order symmetric)."""
    if bits == 0b1000:
        return wa & wb
    if bits == 0b1110:
        return wa | wb
    if bits == 0b0110:
        return wa ^ wb
    if bits == 0b0111:
        return ~(wa & wb)
    if bits == 0b0001:
        return ~(wa | wb)
    if bits == 0b1001:
        return ~(wa ^ wb)
    return None


def _constant_candidates(
    workspace: _Workspace,
    target: Gate,
    branch: Optional[tuple[str, int]],
    va: np.ndarray,
    obs: np.ndarray,
    options: CandidateOptions,
    found: list[Candidate],
) -> None:
    """Tie-cell substitutions where the signal is constant when observed."""
    library = workspace.netlist.library
    if library is None:
        return
    kind = OS2 if branch is None else IS2
    for value in (0, 1):
        if library.constant(bool(value)) is None:
            continue
        # Signal must equal `value` on every observable pattern.
        mismatch = (~va & obs) if value else (va & obs)
        if mismatch.any():
            continue
        _try_candidate(
            workspace.estimator,
            Substitution(kind, target.name, "", branch=branch, constant=value),
            found,
            options.min_quick_gain,
        )


def _pair_candidates(
    workspace: _Workspace,
    target: Gate,
    branch: Optional[tuple[str, int]],
    va: np.ndarray,
    obs: np.ndarray,
    sources: list[int],
    options: CandidateOptions,
) -> list[Candidate]:
    """OS3/IS3: insert a new 2-input gate over a short source list."""
    estimator = workspace.estimator
    netlist = workspace.netlist
    cells = _two_input_cells(netlist, options)
    if not cells:
        return []
    # Rank sources by activity: low-activity signals make cheap drivers.
    ranked = sorted(
        sources,
        key=lambda i: estimator.activity(workspace.stems[i]),
    )[: options.pair_source_limit]
    kind = OS3 if branch is None else IS3
    found: list[Candidate] = []
    for ai in range(len(ranked)):
        wa = workspace.matrix[ranked[ai]]
        for bi in range(ai + 1, len(ranked)):
            wb = workspace.matrix[ranked[bi]]
            name_a = workspace.stems[ranked[ai]].name
            name_b = workspace.stems[ranked[bi]].name
            for cell in cells:
                word = _two_input_word(cell.function.bits, wa, wb)
                if word is None:
                    word = evaluate_cell(
                        cell, [wa, wb], workspace.sim.nwords
                    )
                if ((word ^ va) & obs).any():
                    continue
                _try_candidate(
                    estimator,
                    Substitution(
                        kind,
                        target.name,
                        name_a,
                        branch=branch,
                        source2=name_b,
                        new_cell=cell.name,
                    ),
                    found,
                    options.min_quick_gain,
                )
    return found


def generate_candidates(
    estimator: PowerEstimator,
    options: CandidateOptions | None = None,
) -> list[Candidate]:
    """All simulation-compatible substitutions, best quick gain first."""
    options = options or CandidateOptions()
    workspace = _Workspace(estimator)
    netlist = workspace.netlist
    collected: list[Candidate] = []

    if options.enable_os2 or options.enable_os3:
        for target in workspace.stems:
            if target.is_input or not target.fanout_count():
                continue
            collected.extend(_stem_candidates(workspace, target, options))

    if options.enable_is2 or options.enable_is3:
        for target in workspace.stems:
            if target.fanout_count() < 2:
                continue  # single-branch stems are covered by OS2
            for sink, pin in list(target.fanouts):
                collected.extend(
                    _branch_candidates(workspace, target, sink, pin, options)
                )

    collected.sort(key=lambda c: -c.quick)
    return collected[: options.max_total]
