"""Un-mapping and resynthesis of mapped netlists.

``unmap`` decomposes every library gate of a mapped netlist back into the
technology-independent AND2/INV subject graph (through each cell's genlib
expression, with structural hashing re-sharing logic across gates);
``resynthesize`` then runs technology mapping again — possibly against a
different library or cost mode.

Typical uses:

- re-target a design to another library
  (``resynthesize(netlist, new_library)``),
- alternate mapping and POWDER in an improvement loop: POWDER's rewires
  expose sharing the next mapping pass can exploit, and vice versa.  The
  ``resynth`` pipeline stage (``powder pipeline run --spec
  "powder; resynth(mode=power); powder"``) composes exactly this loop.
"""

from __future__ import annotations

from typing import Optional

from repro.library.cell import Library
from repro.netlist.netlist import Netlist
from repro.netlist.traverse import topological_order
from repro.synth.mapper import MapOptions, technology_map
from repro.synth.subject import SubjectGraph


def unmap(netlist: Netlist, name: Optional[str] = None) -> SubjectGraph:
    """Decompose a mapped netlist into a hashed AND2/INV subject graph."""
    graph = SubjectGraph(name or netlist.name)
    env: dict[str, int] = {}
    for pi in netlist.input_names:
        env[pi] = graph.add_pi(pi)
    for gate in topological_order(netlist):
        if gate.is_input:
            continue
        # Bind the cell's expression variables (pin names) to fanin nodes.
        binding = {
            pin: env[fanin.name]
            for pin, fanin in zip(gate.cell.pin_names, gate.fanins)
        }
        env[gate.name] = graph.add_expr(gate.cell.expression, binding)
    for po, driver in netlist.outputs.items():
        graph.set_output(po, env[driver.name])
    return graph


def resynthesize(
    netlist: Netlist,
    library: Optional[Library] = None,
    options: Optional[MapOptions] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Un-map and re-map (defaults: same library, power-driven cost).

    Returns a new netlist; the input is untouched.
    """
    target_library = library or netlist.library
    graph = unmap(netlist, name or netlist.name)
    return technology_map(
        graph,
        target_library,
        options or MapOptions(mode="power"),
        name or netlist.name,
    )
