"""Algebraic factoring of covers into expression trees.

:func:`factor_cover` turns a two-level cover into a (usually much smaller)
factored :class:`~repro.logic.expr.Expr` using the classic recursive scheme:

1. divide out the common cube,
2. divide by the best kernel (falling back to the most frequent literal),
3. recurse on quotient, divisor and remainder.

The output expression is algebraically equivalent to the cover (same cube
expansion), hence logically equivalent.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import LogicError
from repro.logic.expr import Expr
from repro.logic.sop import Cover, Cube
from repro.synth.kernels import (
    common_cube,
    cube_free,
    divide_by_cube,
    kernels,
    weak_divide,
)


def _literal_expr(var: int, polarity: int, names: Sequence[str]) -> Expr:
    e = Expr.var(names[var])
    return e if polarity else Expr.not_(e)


def _cube_expr(cube: Cube, names: Sequence[str]) -> Expr:
    literals = [_literal_expr(var, pol, names) for var, pol in cube.literals()]
    if not literals:
        return Expr.const(True)
    if len(literals) == 1:
        return literals[0]
    return Expr.and_(*literals)


def _best_literal(cover: Cover) -> Cube | None:
    counts: dict[tuple[int, int], int] = {}
    for cube in cover.cubes:
        for var, polarity in cube.literals():
            counts[(var, polarity)] = counts.get((var, polarity), 0) + 1
    best = None
    best_count = 1
    for (var, polarity), count in sorted(counts.items()):
        if count > best_count:
            best = Cube.universe(cover.nvars).with_literal(var, polarity)
            best_count = count
    return best


def _best_kernel(cover: Cover) -> Cover | None:
    """Kernel with the best literal savings; None when no multi-cube kernel."""
    best: Cover | None = None
    best_score = 0
    for _co, kernel in kernels(cover):
        if len(kernel.cubes) < 2:
            continue
        # Same-cover kernel is the whole thing; dividing by it is vacuous.
        if len(kernel.cubes) == len(cover.cubes) and kernel.num_literals() == cube_free(cover).num_literals():
            continue
        quotient, _rem = weak_divide(cover, kernel)
        if len(quotient.cubes) < 1 or (len(quotient.cubes) == 1 and quotient.cubes[0].care == 0):
            continue
        score = (len(quotient.cubes)) * (kernel.num_literals() - 1)
        if score > best_score:
            best, best_score = kernel, score
    return best


def factor_cover(cover: Cover, names: Sequence[str], _depth: int = 0) -> Expr:
    """Factor a cover into an expression over the given variable names."""
    if len(names) < cover.nvars:
        raise LogicError("one name per cover variable required")
    if cover.is_empty():
        return Expr.const(False)
    if any(c.care == 0 for c in cover.cubes):
        return Expr.const(True)
    if len(cover.cubes) == 1:
        return _cube_expr(cover.cubes[0], names)
    if _depth > 200:  # pathological recursion guard
        return _sum_of_cubes(cover, names)

    # Step 1: common cube out front.
    cc = common_cube(cover)
    if cc.care:
        body = divide_by_cube(cover, cc)
        return Expr.and_(
            _cube_expr(cc, names), factor_cover(body, names, _depth + 1)
        )

    # Step 2: divide by the best kernel, else the most frequent literal.
    divisor_cover = _best_kernel(cover)
    if divisor_cover is not None:
        quotient, remainder = weak_divide(cover, divisor_cover)
        if quotient.cubes:
            parts = [
                Expr.and_(
                    factor_cover(quotient, names, _depth + 1),
                    factor_cover(divisor_cover, names, _depth + 1),
                )
            ]
            if remainder.cubes:
                parts.append(factor_cover(remainder, names, _depth + 1))
            return parts[0] if len(parts) == 1 else Expr.or_(*parts)

    literal = _best_literal(cover)
    if literal is None:
        return _sum_of_cubes(cover, names)
    quotient, remainder = weak_divide(cover, Cover(cover.nvars, [literal]))
    if not quotient.cubes:
        return _sum_of_cubes(cover, names)
    parts = [
        Expr.and_(
            _cube_expr(literal, names),
            factor_cover(quotient, names, _depth + 1),
        )
    ]
    if remainder.cubes:
        parts.append(factor_cover(remainder, names, _depth + 1))
    return parts[0] if len(parts) == 1 else Expr.or_(*parts)


def _sum_of_cubes(cover: Cover, names: Sequence[str]) -> Expr:
    terms = [_cube_expr(cube, names) for cube in cover.cubes]
    return terms[0] if len(terms) == 1 else Expr.or_(*terms)


def factored_literal_count(expr: Expr) -> int:
    """Number of variable occurrences in a factored expression."""
    if expr.kind == "var":
        return 1
    return sum(factored_literal_count(child) for child in expr.children)
