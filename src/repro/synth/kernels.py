"""Algebraic kernels, co-kernels and weak division (Brayton/McMullen).

Treating a cover as an algebraic expression (cubes = monomials), a *kernel*
is a cube-free quotient of the cover by a cube (its *co-kernel*).  Kernels
are where multi-level logic finds common divisors; the factoring and
extraction passes build on the primitives here:

- :func:`weak_divide` — algebraic division ``F = D·Q + R``,
- :func:`cube_free` — make a cover cube-free by dividing out its common cube,
- :func:`kernels` — all (co-kernel, kernel) pairs, level-0 upward.
"""

from __future__ import annotations

from repro.logic.sop import Cover, Cube


def common_cube(cover: Cover) -> Cube:
    """The largest cube dividing every cube of the cover."""
    if not cover.cubes:
        return Cube.universe(cover.nvars)
    care = None
    values = None
    for cube in cover.cubes:
        if care is None:
            care, values = cube.care, cube.values
        else:
            agree = care & cube.care & ~(values ^ cube.values)
            care = agree
            values = values & agree
    return Cube(cover.nvars, care or 0, (values or 0) & (care or 0))


def cube_free(cover: Cover) -> Cover:
    """Divide out the common cube, making the cover cube-free."""
    cc = common_cube(cover)
    if cc.care == 0:
        return cover
    return divide_by_cube(cover, cc)


def divide_by_cube(cover: Cover, cube: Cube) -> Cover:
    """Quotient of the cover by one cube (cubes not containing it drop out)."""
    quotient = []
    for c in cover.cubes:
        # c must contain every literal of `cube`.
        if (c.care & cube.care) == cube.care and (
            (c.values ^ cube.values) & cube.care
        ) == 0:
            quotient.append(
                Cube(
                    cover.nvars,
                    c.care & ~cube.care,
                    c.values & ~cube.care,
                )
            )
    return Cover(cover.nvars, quotient)


def weak_divide(cover: Cover, divisor: Cover) -> tuple[Cover, Cover]:
    """Algebraic division ``cover = divisor·Q + R``.

    Q is the largest cover with ``divisor·Q ⊆ cover`` algebraically (cube
    multiset containment); R collects the cubes not produced by the product.
    """
    if not divisor.cubes:
        return Cover(cover.nvars, []), cover.copy()
    quotients = []
    for d in divisor.cubes:
        quotients.append({c for c in divide_by_cube(cover, d).cubes})
    q_cubes = set.intersection(*quotients) if quotients else set()
    # Deterministic order: as they appear via the first divisor cube.
    ordered_q = [
        c for c in divide_by_cube(cover, divisor.cubes[0]).cubes if c in q_cubes
    ]
    quotient = Cover(cover.nvars, ordered_q)
    produced = set()
    for q in ordered_q:
        for d in divisor.cubes:
            prod = q.intersect(d)
            if prod is not None:
                produced.add(prod)
    remainder = Cover(
        cover.nvars, [c for c in cover.cubes if c not in produced]
    )
    return quotient, remainder


def _literal_counts(cover: Cover) -> dict[tuple[int, int], int]:
    counts: dict[tuple[int, int], int] = {}
    for cube in cover.cubes:
        for var, polarity in cube.literals():
            key = (var, polarity)
            counts[key] = counts.get(key, 0) + 1
    return counts


def kernels(
    cover: Cover, _min_index: int = 0
) -> list[tuple[Cube, Cover]]:
    """All (co-kernel, kernel) pairs of the cover.

    The cover itself appears with the universe co-kernel when it is
    cube-free.  Duplicate kernels (reached through different literal orders)
    are pruned by the standard index-ordering argument.
    """
    found: list[tuple[Cube, Cover]] = []
    seen: set[tuple] = set()

    def recurse(current: Cover, co_kernel: Cube, min_literal: int) -> None:
        counts = _literal_counts(current)
        for var in range(current.nvars):
            for polarity in (0, 1):
                literal_index = var * 2 + polarity
                if literal_index < min_literal:
                    continue
                if counts.get((var, polarity), 0) < 2:
                    continue
                lit_cube = Cube.universe(current.nvars).with_literal(var, polarity)
                quotient = divide_by_cube(current, lit_cube)
                cc = common_cube(quotient)
                kernel = divide_by_cube(quotient, cc) if cc.care else quotient
                new_co = co_kernel.intersect(lit_cube)
                if new_co is not None and cc.care:
                    new_co = new_co.intersect(cc)
                if new_co is None:
                    continue
                key = tuple(sorted((c.care, c.values) for c in kernel.cubes))
                if key in seen:
                    continue
                seen.add(key)
                found.append((new_co, kernel))
                recurse(kernel, new_co, literal_index + 1)

    base = cube_free(cover)
    if len(base.cubes) > 1:
        key = tuple(sorted((c.care, c.values) for c in base.cubes))
        if key not in seen:
            seen.add(key)
            found.append((common_cube(cover), base))
    recurse(cover, Cube.universe(cover.nvars), 0)
    return found


def kernel_value(kernel: Cover, uses: int) -> int:
    """Literal savings from extracting a kernel used ``uses`` times."""
    body_literals = kernel.num_literals()
    # Each use replaces the kernel body by one literal.
    return (uses - 1) * (body_literals - 1) - 1
