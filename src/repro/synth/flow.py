"""The end-to-end synthesis flow (the POSE stand-in).

``synthesize`` takes a two-level specification — one ON-set cover (and an
optional don't-care cover) per output, all over a shared primary-input
list — and produces a mapped netlist:

1. espresso-style two-level minimization per output,
2. algebraic factoring into expression trees,
3. decomposition into the shared AND2/INV subject graph (structural
   hashing shares logic across outputs),
4. cut-based technology mapping, area- or power-driven.

This mirrors the paper's experimental setup: its initial circuits came from
POSE's power-oriented logic optimization and mapping; POWDER then optimizes
the *mapped* result further.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import LogicError
from repro.library.cell import Library
from repro.logic.sop import Cover
from repro.netlist.netlist import Netlist
from repro.synth.factor import factor_cover
from repro.synth.mapper import MapOptions, technology_map
from repro.synth.subject import SubjectGraph
from repro.synth.twolevel import minimize_cover


@dataclass(frozen=True)
class SynthesisOptions:
    """Flow configuration."""

    minimize: bool = True
    #: Run MIS-style multi-function kernel extraction before factoring,
    #: sharing common divisors *across* outputs.
    extract: bool = False
    max_extractions: int = 32
    map_options: MapOptions = field(default_factory=MapOptions)
    #: Cap on exact two-level minimization effort (cube count guard).
    minimize_cube_limit: int = 256
    #: Skip minimization for very wide covers — the OFF-set complement of a
    #: sparse cover over many variables can explode.
    minimize_var_limit: int = 28


def build_subject_graph(
    input_names: list[str],
    outputs: Mapping[str, Cover],
    dont_cares: Optional[Mapping[str, Cover]] = None,
    options: Optional[SynthesisOptions] = None,
    name: str = "circuit",
) -> SubjectGraph:
    """Steps 1-3 of the flow: minimized, factored, hashed subject graph."""
    options = options or SynthesisOptions()
    graph = SubjectGraph(name)
    for pi in input_names:
        graph.add_pi(pi)
    minimized: dict[str, Cover] = {}
    for po in sorted(outputs):
        cover = outputs[po]
        if cover.nvars != len(input_names):
            raise LogicError(
                f"output {po!r}: cover width {cover.nvars} != "
                f"{len(input_names)} inputs"
            )
        dc = (dont_cares or {}).get(po)
        if (
            options.minimize
            and len(cover.cubes) <= options.minimize_cube_limit
            and cover.nvars <= options.minimize_var_limit
        ):
            cover = minimize_cover(cover, dc)
        minimized[po] = cover

    if options.extract:
        from repro.synth.extract import extract_kernels

        extraction = extract_kernels(
            list(input_names),
            minimized,
            max_extractions=options.max_extractions,
        )
        env: dict[str, int] = {
            pi: graph.pi_index[pi] for pi in input_names
        }
        # Later extraction rounds may rewrite earlier intermediates, so
        # build them in dependency order, not creation order.
        pending = dict(extraction.intermediates)
        while pending:
            progress = False
            for inter_name in list(pending):
                cover = pending[inter_name]
                refs = [
                    extraction.names[v]
                    for v in range(cover.nvars)
                    if any(c.literal(v) is not None for c in cover.cubes)
                ]
                if all(r in env for r in refs):
                    expr = factor_cover(cover, extraction.names)
                    env[inter_name] = graph.add_expr(expr, env)
                    del pending[inter_name]
                    progress = True
            if not progress:
                raise LogicError("cyclic kernel-extraction result")
        for po, cover in extraction.outputs.items():
            expr = factor_cover(cover, extraction.names)
            graph.set_output(po, graph.add_expr(expr, env))
        return graph

    for po, cover in minimized.items():
        expr = factor_cover(cover, input_names)
        graph.set_output(po, graph.add_expr(expr))
    return graph


def synthesize(
    input_names: list[str],
    outputs: Mapping[str, Cover],
    library: Library,
    dont_cares: Optional[Mapping[str, Cover]] = None,
    options: Optional[SynthesisOptions] = None,
    name: str = "circuit",
) -> Netlist:
    """Full flow: two-level spec in, mapped netlist out."""
    options = options or SynthesisOptions()
    graph = build_subject_graph(
        input_names, outputs, dont_cares, options, name
    )
    return technology_map(graph, library, options.map_options, name)
