"""BDD-based low-power resynthesis.

An alternative to :func:`repro.synth.resynth.resynthesize` following the
"Synthesis of Low-Power Digital Circuits Derived from BDDs" line of work:
instead of un-mapping into the netlist's existing AND2/INV structure, the
circuit is re-expressed *functionally* —

1. one ROBDD per primary output over a shared manager
   (:func:`repro.netlist.bdds.netlist_bdds`),
2. probability-aware variable reordering
   (:func:`repro.logic.bdd.sift_weighted`): sifting under the
   activity-weighted node cost ``w_v = 2 p_v (1 - p_v)``, so inputs that
   toggle often end up labelling few BDD nodes,
3. a shared MUX-tree decomposition of the reordered BDDs into a fresh
   :class:`~repro.synth.subject.SubjectGraph` (one ``ite`` per decision
   node; sharing in the BDD is sharing in the graph),
4. technology mapping through the ordinary cut-based mapper, against any
   target library.

Because step 3 forgets the original structure entirely, the result can be
much better *or* worse than structural resynthesis — which is exactly why
``bdd_resynth`` is registered as a separate pipeline pass and raced
against ``resynth`` in ``benchmarks/bench_ablation.py`` rather than
replacing it.  Circuits whose BDDs blow past ``node_limit`` raise
:class:`~repro.logic.bdd.BddSizeError`; the pipeline pass surfaces that
as a skipped transform, leaving the netlist untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.library.cell import Library
from repro.logic.bdd import (
    ONE,
    ZERO,
    BddManager,
    ReorderResult,
    sift_weighted,
)
from repro.netlist.bdds import netlist_bdds
from repro.netlist.netlist import Netlist
from repro.synth.mapper import MapOptions, technology_map
from repro.synth.subject import SubjectGraph


@dataclass(frozen=True)
class BddResynthOptions:
    """Configuration of the BDD resynthesis flow.

    ``node_limit`` bounds the global BDD build (well below the package
    default: a circuit whose BDD needs millions of nodes is a circuit
    this strategy should decline, not grind on).  ``max_sift_vars``
    bounds reordering effort to the most expensive variables;
    ``growth_limit`` is the per-rebuild size budget multiplier passed to
    :func:`~repro.logic.bdd.sift_weighted`.
    """

    sift: bool = True
    max_sift_vars: int = 8
    growth_limit: float = 8.0
    node_limit: int = 200_000


def _ite(graph: SubjectGraph, sel: int, high: int, low: int) -> int:
    """``sel ? high : low`` on the subject graph, with the trivial folds."""
    if high == low:
        return high
    return graph.mk_or(
        graph.mk_and(sel, high), graph.mk_and(graph.mk_inv(sel), low)
    )


def bdd_to_subject_graph(
    manager: BddManager,
    roots: dict[str, int],
    var_names: list[str],
    pi_order: list[str],
    name: str = "bdd_resynth",
) -> SubjectGraph:
    """Shared MUX-tree decomposition of BDDs into a subject graph.

    ``var_names[level]`` names the primary input controlling BDD level
    ``level``; ``pi_order`` fixes the graph's input declaration order
    (the original netlist interface, independent of the BDD order).
    Every decision node becomes one ``ite`` of its level's input over
    the decompositions of its children, memoised so BDD sharing carries
    over structurally.
    """
    graph = SubjectGraph(name)
    pi_nodes = {pi: graph.add_pi(pi) for pi in pi_order}
    memo: dict[int, int] = {
        ZERO: graph.const0(),
        ONE: graph.const1(),
    }
    for n in sorted(
        manager.reachable(list(roots.values())),
        key=manager.var_of,
        reverse=True,
    ):
        sel = pi_nodes[var_names[manager.var_of(n)]]
        memo[n] = _ite(
            graph, sel, memo[manager.high_of(n)], memo[manager.low_of(n)]
        )
    for po, root in roots.items():
        graph.set_output(po, memo[root])
    return graph


def bdd_resynthesize(
    netlist: Netlist,
    library: Optional[Library] = None,
    options: Optional[BddResynthOptions] = None,
    map_options: Optional[MapOptions] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Re-express a mapped netlist through its output BDDs and re-map.

    Returns a new netlist with the same primary interface; the input is
    untouched.  Input probabilities for both the sifting cost and the
    power-mode mapper come from ``map_options.input_probs`` (uniform 0.5
    when absent).  Raises :class:`~repro.logic.bdd.BddSizeError` when
    the circuit's global BDD exceeds ``options.node_limit``.
    """
    options = options or BddResynthOptions()
    map_options = map_options or MapOptions(mode="power")
    target_library = library or netlist.library
    if target_library is None:
        raise ValueError("bdd_resynthesize needs a target library")

    pi_order = list(netlist.input_names)
    manager, nodes = netlist_bdds(netlist, node_limit=options.node_limit)
    roots = {
        po: nodes[driver.name] for po, driver in netlist.outputs.items()
    }

    probs_by_name = map_options.input_probs or {}
    input_probs = [probs_by_name.get(pi, 0.5) for pi in pi_order]

    if options.sift and pi_order:
        result: ReorderResult = sift_weighted(
            manager,
            list(roots.values()),
            input_probs=input_probs,
            max_vars=options.max_sift_vars,
            growth_limit=options.growth_limit,
        )
        remap = dict(zip(roots.values(), result.roots))
        roots = {po: remap[root] for po, root in roots.items()}
        manager = result.manager
        # Level l of the reordered manager reads original variable
        # result.order[l].
        var_names = [pi_order[v] for v in result.order]
    else:
        var_names = pi_order

    graph = bdd_to_subject_graph(
        manager, roots, var_names, pi_order, name or netlist.name
    )
    return technology_map(
        graph, target_library, map_options, name or netlist.name
    )
