"""The technology-independent subject graph (AND2 / INV with hashing).

Multi-level synthesis decomposes factored expressions into this graph; the
technology mapper then covers it with library cells.  Construction applies
structural hashing and the usual local simplifications (constant folding,
double-inverter removal, idempotence), so common subexpressions across
outputs are shared automatically.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Optional

import numpy as np

from repro.errors import NetlistError
from repro.logic.expr import AND, CONST, NOT, OR, VAR, XOR, Expr

PI = "pi"
AND2 = "and"
INV = "inv"
CONST0 = "const0"


class SubjectGraph:
    """A DAG of PI / AND2 / INV / CONST0 nodes with structural hashing."""

    def __init__(self, name: str = "subject"):
        self.name = name
        self.kind: list[str] = []
        self.fanin: list[tuple[int, ...]] = []
        self.pi_names: list[str] = []
        self.pi_index: dict[str, int] = {}
        self._pi_name_of: dict[int, str] = {}
        self.outputs: dict[str, int] = {}
        self._hash: dict[tuple, int] = {}
        self._const0: Optional[int] = None

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _new_node(self, kind: str, fanin: tuple[int, ...]) -> int:
        node = len(self.kind)
        self.kind.append(kind)
        self.fanin.append(fanin)
        return node

    def add_pi(self, name: str) -> int:
        if name in self.pi_index:
            raise NetlistError(f"duplicate primary input {name!r}")
        node = self._new_node(PI, ())
        self.pi_names.append(name)
        self.pi_index[name] = node
        self._pi_name_of[node] = name
        return node

    def const0(self) -> int:
        if self._const0 is None:
            self._const0 = self._new_node(CONST0, ())
        return self._const0

    def const1(self) -> int:
        return self.mk_inv(self.const0())

    def mk_inv(self, a: int) -> int:
        if self.kind[a] == INV:
            return self.fanin[a][0]  # !!x = x
        key = (INV, a)
        node = self._hash.get(key)
        if node is None:
            node = self._new_node(INV, (a,))
            self._hash[key] = node
        return node

    def mk_and(self, a: int, b: int) -> int:
        if a == b:
            return a
        zero = self._const0
        if zero is not None:
            if a == zero or b == zero:
                return self.const0()
            one = self._hash.get((INV, zero))
            if one is not None:
                if a == one:
                    return b
                if b == one:
                    return a
        # x & !x = 0
        if (self.kind[a] == INV and self.fanin[a][0] == b) or (
            self.kind[b] == INV and self.fanin[b][0] == a
        ):
            return self.const0()
        lo, hi = (a, b) if a < b else (b, a)
        key = (AND2, lo, hi)
        node = self._hash.get(key)
        if node is None:
            node = self._new_node(AND2, (lo, hi))
            self._hash[key] = node
        return node

    def mk_or(self, a: int, b: int) -> int:
        return self.mk_inv(self.mk_and(self.mk_inv(a), self.mk_inv(b)))

    def mk_xor(self, a: int, b: int) -> int:
        return self.mk_or(
            self.mk_and(a, self.mk_inv(b)), self.mk_and(self.mk_inv(a), b)
        )

    def mk_tree(self, op, operands: Sequence[int]) -> int:
        """Balanced reduction of an operand list with a binary op."""
        if not operands:
            raise NetlistError("empty operand list")
        level = list(operands)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(op(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def set_output(self, name: str, node: int) -> None:
        self.outputs[name] = node

    # ------------------------------------------------------------------
    # From expressions
    # ------------------------------------------------------------------
    def add_expr(self, expr: Expr, env: Optional[dict] = None) -> int:
        """Decompose an expression; unseen variables become new PIs.

        ``env`` maps variable names to existing graph nodes — used when the
        expression is defined over internal signals (multi-level input).
        """
        if expr.kind == CONST:
            return self.const1() if expr.value else self.const0()
        if expr.kind == VAR:
            if env is not None and expr.name in env:
                return env[expr.name]
            node = self.pi_index.get(expr.name)
            if node is None:
                node = self.add_pi(expr.name)
            return node
        children = [self.add_expr(c, env) for c in expr.children]
        if expr.kind == NOT:
            return self.mk_inv(children[0])
        if expr.kind == AND:
            return self.mk_tree(self.mk_and, children)
        if expr.kind == OR:
            return self.mk_tree(self.mk_or, children)
        if expr.kind == XOR:
            return self.mk_tree(self.mk_xor, children)
        raise NetlistError(f"unknown expression kind {expr.kind!r}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.kind)

    def num_ands(self) -> int:
        return sum(1 for k in self.kind if k == AND2)

    def reachable_from_outputs(self) -> list[int]:
        """Nodes in some output cone, ascending (= topological) order."""
        seen: set[int] = set()
        stack = list(self.outputs.values())
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.fanin[node])
        return sorted(seen)

    def depth(self) -> int:
        levels: dict[int, int] = {}
        for node in range(len(self.kind)):
            fanins = self.fanin[node]
            levels[node] = (
                0 if not fanins else 1 + max(levels[f] for f in fanins)
            )
        if not self.outputs:
            return 0
        return max(levels[n] for n in self.outputs.values())

    # ------------------------------------------------------------------
    # Simulation (power-aware mapping costs)
    # ------------------------------------------------------------------
    def simulate(
        self, patterns: Mapping[str, np.ndarray]
    ) -> list[np.ndarray]:
        """Bit-parallel values per node (node ids index the result)."""
        nwords = None
        for name in self.pi_names:
            nwords = len(patterns[name])
            break
        if nwords is None:
            nwords = 1
        ones = np.full(nwords, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        values: list[np.ndarray] = [None] * len(self.kind)  # type: ignore
        for node in range(len(self.kind)):
            kind = self.kind[node]
            if kind == PI:
                name = self._pi_name_of[node]
                values[node] = np.asarray(patterns[name], dtype=np.uint64)
            elif kind == CONST0:
                values[node] = np.zeros(nwords, dtype=np.uint64)
            elif kind == INV:
                values[node] = values[self.fanin[node][0]] ^ ones
            else:
                a, b = self.fanin[node]
                values[node] = values[a] & values[b]
        return values
