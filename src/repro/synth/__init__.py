"""POSE-like synthesis front-end.

The paper's input circuits were produced by USC's POSE (power-oriented
logic optimization + low-power technology mapping).  This package provides
the equivalent flow so the experiments can start from the same kind of
netlists:

- :mod:`~repro.synth.twolevel` — espresso-style two-level minimization
  (expand / irredundant / reduce),
- :mod:`~repro.synth.kernels` — algebraic kernels and co-kernels,
- :mod:`~repro.synth.factor` — algebraic factoring into an expression tree,
- :mod:`~repro.synth.subject` — the technology-independent AND2/INV subject
  graph with structural hashing,
- :mod:`~repro.synth.mapper` — cut-based DP technology mapping with area-
  and power-driven cost functions,
- :mod:`~repro.synth.flow` — the end-to-end ``synthesize`` entry point.
"""

from repro.synth.twolevel import minimize_cover
from repro.synth.kernels import kernels, cube_free
from repro.synth.factor import factor_cover
from repro.synth.subject import SubjectGraph
from repro.synth.mapper import MapOptions, technology_map
from repro.synth.flow import synthesize, build_subject_graph, SynthesisOptions
from repro.synth.extract import extract_kernels, ExtractionResult
from repro.synth.resynth import unmap, resynthesize
from repro.synth.blif_logic import (
    parse_logic_blif,
    synthesize_logic_blif,
    LogicNetwork,
)

__all__ = [
    "minimize_cover",
    "kernels",
    "cube_free",
    "factor_cover",
    "SubjectGraph",
    "MapOptions",
    "technology_map",
    "synthesize",
    "build_subject_graph",
    "SynthesisOptions",
    "extract_kernels",
    "ExtractionResult",
    "parse_logic_blif",
    "synthesize_logic_blif",
    "LogicNetwork",
    "unmap",
    "resynthesize",
]
