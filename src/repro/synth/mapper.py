"""Cut-based technology mapping with dual-phase dynamic programming.

The mapper covers an AND2/INV subject graph with library cells:

1. **Cut enumeration** — k-feasible cuts per node (k = largest library cell
   arity, capped), pruned to a per-node budget with dominated cuts removed.
2. **Matching** — each cut's local function (a small truth table over its
   leaves) is looked up in a function-indexed view of the library over all
   leaf permutations.
3. **Covering** — dynamic programming over both polarities of every node
   (``best[n][phase]``), with inverter bridging between phases, so purely
   NAND/NOR libraries map cleanly.  Costs are *area* (cell area) or
   *power* (switched capacitance: pin loads weighted by leaf activities —
   the low-power mapping objective of Tsui et al. [10]).
4. **Construction** — the chosen cover is instantiated as a mapped
   :class:`~repro.netlist.Netlist`, memoised so shared logic stays shared.

DAG inputs are mapped with the classic tree-DP approximation (fanout cost
is not de-duplicated during DP), which is how SIS-era mappers behaved.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Optional

from repro.errors import MappingError
from repro.library.cell import Cell, Library
from repro.logic.truthtable import TruthTable
from repro.netlist.netlist import Netlist
from repro.kernels.words import popcount
from repro.power.estimate import transition_probability
from repro.synth.subject import AND2, CONST0, INV, PI, SubjectGraph

AREA = "area"
POWER = "power"
DELAY = "delay"

#: Hard ceiling on cut width (cells above this are never matched).
MAX_CUT_SIZE = 5


@dataclass(frozen=True)
class MapOptions:
    """Mapper configuration."""

    mode: str = AREA  # "area", "power" or "delay"
    #: Nominal output load assumed per gate during delay-mode DP (the real
    #: load is unknown until the cover is chosen).
    nominal_load: float = 1.0
    cut_size: int = 4
    max_cuts_per_node: int = 12
    #: Patterns used to estimate node activities in power mode.
    num_patterns: int = 2048
    seed: int = 411
    input_probs: Optional[dict] = None
    po_load: float = 1.0
    #: Small area weight mixed into power cost to break ties.
    area_weight: float = 1e-6


@dataclass
class _Match:
    cell: Cell
    leaves: tuple[int, ...]  # node ids in cell pin order


class _Mapper:
    def __init__(self, graph: SubjectGraph, library: Library, options: MapOptions):
        self.graph = graph
        self.library = library
        self.options = options
        self.k = min(
            MAX_CUT_SIZE,
            options.cut_size,
            max((c.num_inputs for c in library.matchable_cells()), default=2),
        )
        self.function_index = self._build_function_index()
        self._match_cache: dict[tuple[int, int], tuple] = {}
        self.inverter = library.inverter()
        self.live = graph.reachable_from_outputs()
        self.activity = self._node_activities() if options.mode == POWER else None

    # ------------------------------------------------------------------
    def _build_function_index(self) -> dict[tuple[int, int], Cell]:
        # The library's shared capability query; semantics (cheapest per
        # exact function, first-in-matchable-order wins ties) are pinned
        # by tests so the historical covers stay bit-identical.
        return self.library.function_index(max_inputs=self.k)

    def _node_activities(self) -> dict[int, float]:
        from repro.netlist.simulate import random_patterns

        patterns = random_patterns(
            self.graph.pi_names,
            self.options.num_patterns,
            self.options.seed,
            self.options.input_probs,
        )
        values = self.graph.simulate(patterns)
        total = self.options.num_patterns
        return {
            node: transition_probability(popcount(values[node]) / total)
            for node in self.live
        }

    # ------------------------------------------------------------------
    # Cut enumeration
    # ------------------------------------------------------------------
    def _enumerate_cuts(self) -> dict[int, list[tuple[int, ...]]]:
        cuts: dict[int, list[tuple[int, ...]]] = {}
        limit = self.options.max_cuts_per_node
        for node in self.live:
            kind = self.graph.kind[node]
            if kind in (PI, CONST0):
                cuts[node] = [(node,)]
                continue
            fanins = self.graph.fanin[node]
            if kind == INV:
                merged = [cut for cut in cuts[fanins[0]]]
            else:
                merged = []
                for ca in cuts[fanins[0]]:
                    for cb in cuts[fanins[1]]:
                        union = tuple(sorted(set(ca) | set(cb)))
                        if len(union) <= self.k:
                            merged.append(union)
            merged.append((node,))
            # Deduplicate, drop dominated cuts, keep the smallest.
            unique = sorted(set(merged), key=lambda c: (len(c), c))
            kept: list[tuple[int, ...]] = []
            for cut in unique:
                cut_set = set(cut)
                if any(set(other) <= cut_set for other in kept):
                    continue
                kept.append(cut)
                if len(kept) >= limit:
                    break
            cuts[node] = kept
        return cuts

    def _cut_function(self, node: int, cut: tuple[int, ...]) -> TruthTable:
        """Local function of ``node`` over the cut leaves."""
        leaf_index = {leaf: i for i, leaf in enumerate(cut)}
        n = len(cut)
        memo: dict[int, TruthTable] = {}

        def build(current: int) -> TruthTable:
            if current in leaf_index:
                return TruthTable.variable(leaf_index[current], n)
            cached = memo.get(current)
            if cached is not None:
                return cached
            kind = self.graph.kind[current]
            if kind == CONST0:
                result = TruthTable.constant(False, n)
            elif kind == INV:
                result = ~build(self.graph.fanin[current][0])
            elif kind == AND2:
                a, b = self.graph.fanin[current]
                result = build(a) & build(b)
            else:
                raise MappingError(f"cut leaves exclude PI node {current}")
            memo[current] = result
            return result

        return build(node)

    def _function_matches(
        self, nvars: int, bits: int
    ) -> tuple[tuple[object, tuple[int, ...], bool], ...]:
        """(cell, permutation, negated) triples for one cut function.

        Memoised per distinct function — most cuts in a circuit share a
        handful of functions, so the ``nvars!`` permutation sweep runs once
        per function instead of once per cut.
        """
        cached = self._match_cache.get((nvars, bits))
        if cached is not None:
            return cached
        base = TruthTable(nvars, bits)
        found = []
        seen: set[tuple[str, tuple[int, ...], bool]] = set()
        for perm in permutations(range(nvars)):
            table = base.permute(perm)
            for negated, tbits in ((False, table.bits), (True, (~table).bits)):
                cell = self.function_index.get((nvars, tbits))
                if cell is None:
                    continue
                key = (cell.name, perm, negated)
                if key in seen:
                    continue
                seen.add(key)
                found.append((cell, perm, negated))
        result = tuple(found)
        self._match_cache[(nvars, bits)] = result
        return result

    def _matches(self, node: int, cut: tuple[int, ...]) -> list[tuple[_Match, bool]]:
        """(match, negated) pairs: cell computes the cut function or its
        complement over some leaf permutation."""
        if len(cut) == 1 and cut[0] == node:
            return []  # trivial cut: identity, never a cell
        base = self._cut_function(node, cut)
        if base.is_constant():
            return []
        # Skip cuts with vacuous leaves: a smaller cut covers this case.
        if len(base.support()) != len(cut):
            return []
        found: list[tuple[_Match, bool]] = []
        for cell, perm, negated in self._function_matches(
            len(cut), base.bits
        ):
            leaves = tuple(cut[perm[i]] for i in range(len(cut)))
            found.append((_Match(cell, leaves), negated))
        return found

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def _cell_delay(self, cell: Cell) -> float:
        """Linear-model delay under the nominal DP load."""
        tau = max(p.tau for p in cell.pins)
        resistance = max(p.resistance for p in cell.pins)
        return tau + resistance * self.options.nominal_load

    def _cell_cost(self, cell: Cell, leaves: tuple[int, ...]) -> float:
        if self.options.mode == AREA:
            return cell.area
        if self.options.mode == DELAY:
            return self._cell_delay(cell)
        cost = self.options.area_weight * cell.area
        for pin, leaf in zip(cell.pins, leaves):
            cost += pin.load * self.activity[leaf]
        return cost

    def _combine_leaf_costs(self, cell_cost: float, leaf_costs) -> float:
        """Delay composes by max over fanins, area/power by sum."""
        if self.options.mode == DELAY:
            return cell_cost + max(leaf_costs, default=0.0)
        return cell_cost + sum(leaf_costs)

    def _inverter_cost(self, node: int) -> float:
        if self.options.mode == AREA:
            return self.inverter.area
        if self.options.mode == DELAY:
            return self._cell_delay(self.inverter)
        return (
            self.options.area_weight * self.inverter.area
            + self.inverter.pins[0].load * self.activity[node]
        )

    # ------------------------------------------------------------------
    # Covering
    # ------------------------------------------------------------------
    def run(self, name: str) -> Netlist:
        cuts = self._enumerate_cuts()
        INF = float("inf")
        best_cost: dict[tuple[int, int], float] = {}
        best_choice: dict[tuple[int, int], object] = {}

        for node in self.live:
            kind = self.graph.kind[node]
            if kind == PI:
                best_cost[(node, 0)] = 0.0
                best_choice[(node, 0)] = "pi"
                best_cost[(node, 1)] = self._inverter_cost(node)
                best_choice[(node, 1)] = "bridge"
                continue
            if kind == CONST0:
                best_cost[(node, 0)] = 0.0
                best_choice[(node, 0)] = ("const", 0)
                best_cost[(node, 1)] = 0.0
                best_choice[(node, 1)] = ("const", 1)
                continue
            if kind == INV and self.graph.kind[self.graph.fanin[node][0]] == CONST0:
                # Structurally constant 1 (the only constant the graph's
                # local simplifications cannot fold away).
                best_cost[(node, 0)] = 0.0
                best_choice[(node, 0)] = ("const", 1)
                best_cost[(node, 1)] = 0.0
                best_choice[(node, 1)] = ("const", 0)
                continue
            for phase in (0, 1):
                best_cost[(node, phase)] = INF
            for cut in cuts[node]:
                for match, negated in self._matches(node, cut):
                    phase = 1 if negated else 0
                    cost = self._combine_leaf_costs(
                        self._cell_cost(match.cell, match.leaves),
                        [best_cost[(leaf, 0)] for leaf in match.leaves],
                    )
                    if cost < best_cost[(node, phase)]:
                        best_cost[(node, phase)] = cost
                        best_choice[(node, phase)] = match
            # Inverter bridging between phases (one relaxation suffices).
            for phase in (0, 1):
                bridged = best_cost[(node, 1 - phase)] + self._inverter_cost(node)
                if bridged < best_cost[(node, phase)]:
                    best_cost[(node, phase)] = bridged
                    best_choice[(node, phase)] = "bridge"
            if best_cost[(node, 0)] == INF:
                raise MappingError(
                    f"no library cover for subject node {node} "
                    f"({self.graph.kind[node]}); the library may lack basic gates"
                )
        return self._construct(name, best_choice)

    # ------------------------------------------------------------------
    # Netlist construction
    # ------------------------------------------------------------------
    def _construct(self, name: str, choice: dict) -> Netlist:
        netlist = Netlist(name, self.library)
        for pi in self.graph.pi_names:
            netlist.add_input(pi)
        built: dict[tuple[int, int], object] = {}

        def build(node: int, phase: int):
            key = (node, phase)
            cached = built.get(key)
            if cached is not None:
                return cached
            what = choice[key]
            if what == "pi":
                gate = netlist.gates[self.graph._pi_name_of[node]]
            elif isinstance(what, tuple) and what[0] == "const":
                value = bool(what[1])
                cell = self.library.constant(value)
                if cell is None:
                    raise MappingError(
                        f"library lacks a constant-{int(value)} cell"
                    )
                gate = netlist.add_gate(cell, [], name=netlist.fresh_name("tie"))
            elif what == "bridge":
                inner = build(node, 1 - phase)
                gate = netlist.add_gate(
                    self.inverter, [inner], name=netlist.fresh_name("m")
                )
            else:
                match: _Match = what  # type: ignore[assignment]
                fanins = [build(leaf, 0) for leaf in match.leaves]
                gate = netlist.add_gate(
                    match.cell, fanins, name=netlist.fresh_name("m")
                )
            built[key] = gate
            return gate

        for po, node in self.graph.outputs.items():
            driver = build(node, 0)
            netlist.set_output(po, driver, self.options.po_load)
        netlist.sweep_dead()
        return netlist


def technology_map(
    graph: SubjectGraph,
    library: Library,
    options: Optional[MapOptions] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Map a subject graph to the library; returns a mapped netlist."""
    options = options or MapOptions()
    if options.mode not in (AREA, POWER, DELAY):
        raise MappingError(f"unknown mapping mode {options.mode!r}")
    mapper = _Mapper(graph, library, options)
    return mapper.run(name or graph.name)
