"""Espresso-style heuristic two-level minimization.

Implements the classic expand / irredundant / reduce loop over the cube
algebra of :mod:`repro.logic.sop`:

- **expand** — grow each cube literal-by-literal as long as it stays
  disjoint from the OFF-set, then drop cubes contained in others,
- **irredundant** — remove cubes whose onset is covered by the remaining
  cover plus the don't-care set,
- **reduce** — shrink each cube to the smallest cube still covering the
  part of the ON-set only it covers, giving expand new room.

This is a faithful heuristic minimizer, not a carbon copy of espresso's
unate-recursive special cases; on the benchmark-sized covers used here it
reaches the same fixed points espresso typically does.
"""

from __future__ import annotations

from typing import Optional

from repro.logic.sop import Cover, Cube


def _off_set(on: Cover, dc: Optional[Cover]) -> Cover:
    union = Cover(on.nvars, list(on.cubes) + (list(dc.cubes) if dc else []))
    return union.complement()


def _expand_cube(cube: Cube, off: Cover) -> Cube:
    """Remove literals greedily while staying disjoint from the OFF-set."""
    current = cube
    # Try dropping literals in a deterministic order: variables whose removal
    # frees the largest cube first (here: ascending variable index — the
    # off-set check dominates quality anyway).
    for var, _polarity in list(current.literals()):
        trial = current.with_literal(var, None)
        if not any(trial.intersect(off_cube) for off_cube in off.cubes):
            current = trial
    return current


def expand(cover: Cover, off: Cover) -> Cover:
    """Expand every cube against the OFF-set; drop contained cubes."""
    expanded = Cover(
        cover.nvars, [_expand_cube(cube, off) for cube in cover.cubes]
    )
    expanded.remove_contained()
    return expanded


def irredundant(cover: Cover, dc: Optional[Cover] = None) -> Cover:
    """Remove cubes covered by the rest of the cover (plus don't-cares)."""
    kept = list(cover.cubes)
    # Try to drop biggest covers first so small essential cubes survive.
    for cube in sorted(cover.cubes, key=lambda c: c.num_literals()):
        if cube not in kept:
            continue
        others = [c for c in kept if c is not cube]
        rest = Cover(
            cover.nvars, others + (list(dc.cubes) if dc else [])
        )
        if rest.covers_cube(cube):
            kept = others
    return Cover(cover.nvars, kept)


def _reduce_cube(cube: Cube, others: Cover, dc: Optional[Cover]) -> Cube:
    """Shrink a cube to the supercube of what only it covers."""
    rest = Cover(
        others.nvars,
        list(others.cubes) + (list(dc.cubes) if dc else []),
    )
    # The part of `cube` not covered by the rest: complement of the rest,
    # cofactored by the cube.
    residue = rest.cube_cofactor(cube).complement()
    if residue.is_empty():
        return cube  # fully redundant; irredundant() is responsible
    # Smallest cube containing the residue (within `cube`).
    final: Optional[Cube] = None
    for res_cube in residue.cubes:
        merged = res_cube.intersect(cube)
        if merged is None:
            continue
        final = merged if final is None else final.supercube(merged)
    return final if final is not None else cube


def reduce_cover(cover: Cover, dc: Optional[Cover] = None) -> Cover:
    """Reduce each cube against the others (reduce step)."""
    cubes = list(cover.cubes)
    result: list[Cube] = []
    for i, cube in enumerate(cubes):
        others = Cover(cover.nvars, result + cubes[i + 1 :])
        result.append(_reduce_cube(cube, others, dc))
    return Cover(cover.nvars, result)


def cover_cost(cover: Cover) -> tuple[int, int]:
    """(cube count, literal count) — the minimization objective."""
    return (len(cover.cubes), cover.num_literals())


def minimize_cover(
    on: Cover,
    dc: Optional[Cover] = None,
    max_iterations: int = 8,
) -> Cover:
    """Heuristically minimize an ON-set cover under optional don't-cares.

    The result covers ``on`` and stays inside ``on + dc``; equivalence is
    checked structurally by the caller's tests, not here, to keep the hot
    path lean.
    """
    if on.is_empty():
        return Cover(on.nvars, [])
    off = _off_set(on, dc)
    if off.is_empty():
        return Cover.constant(on.nvars, True)
    best = irredundant(expand(on.copy(), off), dc)
    best_cost = cover_cost(best)
    for _ in range(max_iterations):
        reduced = reduce_cover(best, dc)
        candidate = irredundant(expand(reduced, off), dc)
        cost = cover_cost(candidate)
        if cost < best_cost:
            best, best_cost = candidate, cost
        else:
            break
    return best
