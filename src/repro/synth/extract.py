"""Multi-function kernel extraction (MIS-style common-divisor sharing).

Algebraic factoring (``factor_cover``) only shares logic *within* one
function; extraction finds kernels common to several functions (or used
several times in one), pulls each out as a new intermediate variable, and
rewrites the functions over it — the classic literal-savings loop:

    repeat:
        enumerate kernels of every function
        value(K) = Σ_f |quotient(f, K)| · (lit(K) − 1)  −  lit(K)
        extract the best-valued kernel as a fresh variable
    until no kernel saves literals

The result feeds the subject-graph builder: each intermediate is factored
and decomposed once and referenced everywhere it is used, shrinking the
mapped circuit beyond what per-output factoring achieves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.logic.sop import Cover, Cube
from repro.synth.kernels import kernels, weak_divide


@dataclass
class ExtractionResult:
    """Outcome of an extraction pass."""

    #: All variable names, primary inputs first, then intermediates in
    #: creation order (covers below are over this list).
    names: list[str]
    #: Rewritten output covers.
    outputs: dict[str, Cover]
    #: Intermediate definitions, in creation (= topological) order.
    intermediates: dict[str, Cover] = field(default_factory=dict)

    @property
    def num_extracted(self) -> int:
        return len(self.intermediates)


def _widen(cover: Cover, nvars: int) -> Cover:
    """Re-express a cover over a wider variable set (new vars unused)."""
    return Cover(
        nvars, [Cube(nvars, c.care, c.values) for c in cover.cubes]
    )


def _kernel_key(kernel: Cover) -> tuple:
    return tuple(sorted((c.care, c.values) for c in kernel.cubes))


def _candidate_kernels(
    covers: Mapping[str, Cover], max_cover_cubes: int
) -> dict[tuple, Cover]:
    found: dict[tuple, Cover] = {}
    for cover in covers.values():
        if not 2 <= len(cover.cubes) <= max_cover_cubes:
            continue
        for _co, kernel in kernels(cover):
            if len(kernel.cubes) < 2:
                continue
            found.setdefault(_kernel_key(kernel), kernel)
    return found


def _kernel_saving(covers: Mapping[str, Cover], kernel: Cover) -> int:
    """Literal savings if this kernel becomes an intermediate variable.

    Each quotient cube Q currently expands to ``|K|`` cubes ``Q·k_j`` with
    ``lit(Q) + lit(k_j)`` literals; afterwards it is the single cube ``Q·t``
    with ``lit(Q) + 1`` literals — a saving of
    ``(|K| − 1)·lit(Q) + lit(K) − 1`` per quotient cube.  The kernel body
    itself must be built once (``−lit(K)``).
    """
    kernel_literals = kernel.num_literals()
    kernel_cubes = len(kernel.cubes)
    saving = -kernel_literals
    for cover in covers.values():
        quotient, _rem = weak_divide(cover, kernel)
        for q in quotient.cubes:
            saving += (
                (kernel_cubes - 1) * q.num_literals() + kernel_literals - 1
            )
    return saving


def extract_kernels(
    input_names: list[str],
    outputs: Mapping[str, Cover],
    max_extractions: int = 32,
    min_saving: int = 1,
    max_cover_cubes: int = 60,
    intermediate_prefix: str = "k",
) -> ExtractionResult:
    """Run the extraction loop; returns rewritten covers + intermediates.

    All input covers must share the ``input_names`` variable space.  The
    returned covers live over ``result.names`` (inputs + intermediates).
    """
    names = list(input_names)
    working: dict[str, Cover] = {po: cover.copy() for po, cover in outputs.items()}
    intermediates: dict[str, Cover] = {}
    #: variable index of each intermediate name.
    var_of: dict[str, int] = {}
    #: transitive variable dependencies of each intermediate *index*.
    deps: dict[int, frozenset[int]] = {}

    def closure(cover: Cover) -> frozenset[int]:
        result: set[int] = set()
        for var in range(cover.nvars):
            for cube in cover.cubes:
                if cube.literal(var) is not None:
                    result.add(var)
                    result |= deps.get(var, frozenset())
                    break
        return frozenset(result)

    for _round in range(max_extractions):
        candidates = _candidate_kernels(working, max_cover_cubes)
        best_kernel: Optional[Cover] = None
        best_saving = min_saving - 1
        for kernel in candidates.values():
            saving = _kernel_saving(working, kernel)
            if saving > best_saving:
                best_kernel, best_saving = kernel, saving
        if best_kernel is None:
            break

        new_index = len(names)
        new_name = f"{intermediate_prefix}{len(intermediates)}"
        while new_name in names:
            new_name = "_" + new_name
        names.append(new_name)

        wide_kernel = _widen(best_kernel, len(names))
        kernel_deps = closure(wide_kernel) | {new_index}
        deps[new_index] = frozenset(kernel_deps)
        var_of[new_name] = new_index

        rewritten: dict[str, Cover] = {}
        for po, cover in working.items():
            wide = _widen(cover, len(names))
            # Rewriting an intermediate the new kernel depends on would
            # close a combinational cycle — leave those untouched.
            own_var = var_of.get(po)
            if own_var is not None and own_var in kernel_deps:
                rewritten[po] = wide
                continue
            quotient, remainder = weak_divide(wide, wide_kernel)
            if not quotient.cubes:
                rewritten[po] = wide
                continue
            new_cubes = [
                q.with_literal(new_index, 1) for q in quotient.cubes
            ]
            new_cubes.extend(remainder.cubes)
            rewritten[po] = Cover(len(names), new_cubes)
        working = rewritten
        # Widen previously-extracted intermediates too, so every cover in
        # the result shares one variable space.
        intermediates = {
            name: _widen(cover, len(names))
            for name, cover in intermediates.items()
        }
        intermediates[new_name] = wide_kernel
        # Intermediates are themselves candidates for further extraction.
        working[new_name] = wide_kernel
        # Dependency sets of previously rewritten intermediates may grow;
        # iterate to fixpoint (deps only ever grow, so this terminates).
        changed = True
        while changed:
            changed = False
            for name, index in var_of.items():
                updated = frozenset(closure(working[name]) | {index})
                if updated != deps[index]:
                    deps[index] = updated
                    changed = True

    # Separate outputs from intermediates again (an intermediate may have
    # been rewritten by later extractions).
    final_outputs = {po: working[po] for po in outputs}
    final_intermediates = {
        name: working[name] for name in intermediates
    }
    return ExtractionResult(
        names=names,
        outputs=final_outputs,
        intermediates=final_intermediates,
    )


def total_literals(result: ExtractionResult) -> int:
    """Literal count of the extracted network (quality metric)."""
    total = sum(c.num_literals() for c in result.outputs.values())
    total += sum(c.num_literals() for c in result.intermediates.values())
    return total
