"""Front end for *logic* (unmapped) BLIF: multi-level ``.names`` networks.

The mapped-netlist reader (:mod:`repro.netlist.blif`) only accepts
``.gate`` instances; this module handles the other common BLIF dialect — a
DAG of ``.names`` nodes, each a single-output SOP over arbitrary fanins —
and pushes it through the synthesis back end:

    parse_logic_blif  ->  LogicNetwork (per-node covers)
    network_to_subject_graph  ->  AND2/INV graph (per-node minimize+factor)
    synthesize_logic_blif  ->  mapped Netlist

``.names`` semantics follow espresso/SIS: each row is an input cube plus
the output value; all rows of a node must agree on the output value.  Rows
ending in ``1`` enumerate the ON-set; rows ending in ``0`` the OFF-set
(the node function is then the complement).  A node with no rows is
constant 0; a ``.names`` with no inputs and a ``1`` row is constant 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ParseError
from repro.library.cell import Library
from repro.logic.sop import Cover, Cube
from repro.netlist.blif import _logical_lines
from repro.netlist.netlist import Netlist
from repro.synth.factor import factor_cover
from repro.synth.flow import SynthesisOptions
from repro.synth.mapper import technology_map
from repro.synth.subject import SubjectGraph
from repro.synth.twolevel import minimize_cover


@dataclass
class LogicNode:
    """One ``.names`` node: a cover over named fanin signals."""

    name: str
    fanins: list[str]
    cover: Cover  # ON-set over the fanins (OFF rows already complemented)


@dataclass
class LogicNetwork:
    """A multi-level combinational network of SOP nodes."""

    name: str
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    nodes: dict[str, LogicNode] = field(default_factory=dict)

    def topological_node_order(self) -> list[LogicNode]:
        order: list[LogicNode] = []
        state: dict[str, int] = {}

        def visit(name: str) -> None:
            if name in self.nodes and state.get(name) is None:
                state[name] = 0
                for fanin in self.nodes[name].fanins:
                    if state.get(fanin) == 0:
                        raise ParseError(
                            f"combinational cycle through {fanin!r}"
                        )
                    visit(fanin)
                state[name] = 1
                order.append(self.nodes[name])

        for po in self.outputs:
            visit(po)
        # Nodes not reachable from outputs still parse; append them last so
        # diagnostics can see them.
        for name in self.nodes:
            visit(name)
        return order

    def validate(self) -> None:
        defined = set(self.inputs) | set(self.nodes)
        for node in self.nodes.values():
            for fanin in node.fanins:
                if fanin not in defined:
                    raise ParseError(
                        f"node {node.name!r}: undefined fanin {fanin!r}"
                    )
        for po in self.outputs:
            if po not in defined:
                raise ParseError(f"undriven primary output {po!r}")
        self.topological_node_order()


def parse_logic_blif(text: str, name: Optional[str] = None) -> LogicNetwork:
    """Parse a ``.names``-style BLIF file into a :class:`LogicNetwork`."""
    network = LogicNetwork(name or "logic")
    lines = _logical_lines(text)
    index = 0
    while index < len(lines):
        lineno, line = lines[index]
        index += 1
        tokens = line.split()
        directive = tokens[0]
        if directive == ".model":
            if len(tokens) > 1 and name is None:
                network.name = tokens[1]
        elif directive == ".inputs":
            network.inputs.extend(tokens[1:])
        elif directive == ".outputs":
            network.outputs.extend(tokens[1:])
        elif directive == ".names":
            if len(tokens) < 2:
                raise ParseError("malformed .names line", lineno)
            *fanins, out = tokens[1:]
            rows: list[str] = []
            while index < len(lines) and not lines[index][1].startswith("."):
                rows.append(lines[index][1])
                index += 1
            network.nodes[out] = _node_from_rows(out, fanins, rows, lineno)
        elif directive == ".end":
            break
        elif directive in (".latch", ".subckt", ".gate"):
            raise ParseError(
                f"{directive} is not supported by the logic-BLIF reader",
                lineno,
            )
        else:
            raise ParseError(f"unknown directive {directive!r}", lineno)
    if not network.outputs:
        raise ParseError("logic BLIF without .outputs")
    network.validate()
    return network


def _node_from_rows(
    out: str, fanins: list[str], rows: list[str], lineno: int
) -> LogicNode:
    nvars = len(fanins)
    cubes: list[Cube] = []
    polarity: Optional[str] = None
    for row in rows:
        parts = row.split()
        if nvars == 0:
            in_part, out_part = "", parts[0]
        elif len(parts) == 2:
            in_part, out_part = parts
        else:
            raise ParseError(f"bad .names row {row!r}", lineno)
        if len(in_part) != nvars or out_part not in ("0", "1"):
            raise ParseError(f"bad .names row {row!r}", lineno)
        if polarity is None:
            polarity = out_part
        elif polarity != out_part:
            raise ParseError(
                f"node {out!r}: mixed output polarities", lineno
            )
        cubes.append(Cube.from_string(in_part) if nvars else Cube.universe(0))
    cover = Cover(nvars, cubes)
    if polarity == "0":
        cover = cover.complement()
    return LogicNode(out, list(fanins), cover)


def parse_logic_blif_file(path: str | Path) -> LogicNetwork:
    path = Path(path)
    return parse_logic_blif(path.read_text(), name=path.stem)


# ----------------------------------------------------------------------
# Synthesis back end
# ----------------------------------------------------------------------
def network_to_subject_graph(
    network: LogicNetwork, options: Optional[SynthesisOptions] = None
) -> SubjectGraph:
    """Minimize + factor each node and hash the results into one graph."""
    options = options or SynthesisOptions()
    graph = SubjectGraph(network.name)
    env: dict[str, int] = {}
    for pi in network.inputs:
        env[pi] = graph.add_pi(pi)
    for node in network.topological_node_order():
        cover = node.cover
        if (
            options.minimize
            and len(cover.cubes) <= options.minimize_cube_limit
            and cover.nvars <= options.minimize_var_limit
        ):
            cover = minimize_cover(cover)
        expr = factor_cover(cover, node.fanins)
        env[node.name] = graph.add_expr(expr, env)
    for po in network.outputs:
        graph.set_output(po, env[po])
    return graph


def synthesize_logic_blif(
    text: str,
    library: Library,
    options: Optional[SynthesisOptions] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Logic BLIF in, mapped netlist out."""
    options = options or SynthesisOptions()
    network = parse_logic_blif(text, name)
    graph = network_to_subject_graph(network, options)
    return technology_map(graph, library, options.map_options, network.name)
