"""CNF formulas and Tseitin encoding of netlists.

Variables are positive integers; literals are signed integers in the DIMACS
convention (``-v`` = negation of ``v``).  :func:`tseitin_encode` produces
one variable per stem and the standard consistency clauses per gate, derived
generically from each cell's irredundant SOP and its complement's SOP:

    output <-> F(inputs)
    encoded as   (¬out ∨ F-term-clauses)  and  (out ∨ ¬F-minterm-clauses)

via the two-sided cube translation: for every cube c of F,
``c → out`` (one clause); for every cube d of ¬F, ``d → ¬out``.
Together these force ``out = F`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.logic.sop import Cover
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import topological_order

# Per-cell-function clause templates, shared across encodings.
_TEMPLATE_CACHE: dict[tuple[int, int], tuple[tuple[tuple[int, ...], ...], tuple[tuple[int, ...], ...]]] = {}


@dataclass
class CnfFormula:
    """A CNF over integer variables with a name map for circuit signals."""

    num_vars: int = 0
    clauses: list[tuple[int, ...]] = field(default_factory=list)
    var_of: dict[str, int] = field(default_factory=dict)

    def new_var(self, name: Optional[str] = None) -> int:
        self.num_vars += 1
        if name is not None:
            self.var_of[name] = self.num_vars
        return self.num_vars

    def add_clause(self, *literals: int) -> None:
        self.clauses.append(tuple(literals))

    def assume(self, literal: int) -> None:
        """Add a unit clause."""
        self.add_clause(literal)

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Check a complete assignment against every clause (testing aid)."""
        for clause in self.clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0)
                for lit in clause
            ):
                return False
        return True


def cell_templates(cell):
    """(onset cubes, offset cubes) of a cell's function, as literal lists.

    Shared by the whole-netlist Tseitin encoding and the triage checker's
    cone-duplication encoding (which instantiates single cells against
    mapped literals rather than whole gates).
    """
    table = cell.function
    key = (table.nvars, table.bits)
    cached = _TEMPLATE_CACHE.get(key)
    if cached is not None:
        return cached

    def cube_list(cover: Cover):
        cubes = []
        for cube in cover.cubes:
            cubes.append(tuple(cube.literals()))
        return tuple(cubes)

    onset = Cover.from_truthtable(table)
    while onset.merge_distance_one():
        pass
    onset.remove_contained()
    offset = Cover.from_truthtable(~table)
    while offset.merge_distance_one():
        pass
    offset.remove_contained()
    result = (cube_list(onset), cube_list(offset))
    _TEMPLATE_CACHE[key] = result
    return result


def _cube_templates(gate: Gate):
    """(onset cubes, offset cubes) of the gate's function, as literal lists."""
    return cell_templates(gate.cell)


def tseitin_encode(
    netlist: Netlist, formula: Optional[CnfFormula] = None, prefix: str = ""
) -> CnfFormula:
    """Encode the netlist's consistency constraints into CNF.

    Every stem gets the variable ``formula.var_of[prefix + name]``.  With a
    shared ``formula`` and distinct prefixes two netlists can share input
    variables (name the inputs without the prefix first).
    """
    formula = formula or CnfFormula()
    for gate in topological_order(netlist):
        key = prefix + gate.name if not gate.is_input else gate.name
        if key not in formula.var_of:
            formula.new_var(key)
    for gate in topological_order(netlist):
        if gate.is_input:
            continue
        out = formula.var_of[prefix + gate.name]
        fanin_vars = [
            formula.var_of[
                f.name if f.is_input else prefix + f.name
            ]
            for f in gate.fanins
        ]
        onset, offset = _cube_templates(gate)
        if not gate.fanins:  # tie cell
            value = gate.cell.function.bits & 1
            formula.assume(out if value else -out)
            continue
        # cube holds -> out is 1:   (¬lit1 ∨ ... ∨ out)
        for cube in onset:
            clause = [out]
            for var, polarity in cube:
                clause.append(-fanin_vars[var] if polarity else fanin_vars[var])
            formula.add_clause(*clause)
        # offset cube holds -> out is 0.
        for cube in offset:
            clause = [-out]
            for var, polarity in cube:
                clause.append(-fanin_vars[var] if polarity else fanin_vars[var])
            formula.add_clause(*clause)
    return formula


def miter_cnf(left: Netlist, right: Netlist) -> CnfFormula:
    """CNF satisfiable iff the circuits differ on some input vector.

    Shares primary-input variables, encodes both netlists, and constrains
    at least one output pair to differ (XOR via auxiliary variables).
    """
    formula = CnfFormula()
    for pi in left.input_names:
        formula.new_var(pi)
    tseitin_encode(left, formula, prefix="L.")
    tseitin_encode(right, formula, prefix="R.")
    diff_vars = []
    for po in sorted(left.outputs):
        l_var = formula.var_of["L." + left.outputs[po].name] if not left.outputs[po].is_input else formula.var_of[left.outputs[po].name]
        r_driver = right.outputs[po]
        r_var = formula.var_of["R." + r_driver.name] if not r_driver.is_input else formula.var_of[r_driver.name]
        d = formula.new_var(f"diff.{po}")
        # d <-> (l xor r)
        formula.add_clause(-d, l_var, r_var)
        formula.add_clause(-d, -l_var, -r_var)
        formula.add_clause(d, -l_var, r_var)
        formula.add_clause(d, l_var, -r_var)
        diff_vars.append(d)
    formula.add_clause(*diff_vars)
    return formula
