"""A small CNF SAT solver and circuit encoder.

The paper's permissibility machinery is ATPG; modern reproductions of the
same idea (redundancy addition/removal, resubstitution) are SAT-based.
This package provides the SAT side as an *independent* oracle:

- :mod:`~repro.sat.cnf` — CNF formulas and the Tseitin encoding of
  netlists/miters,
- :mod:`~repro.sat.dpll` — a DPLL solver with two-watched-literal unit
  propagation and an activity decision heuristic,
- :mod:`~repro.sat.incremental` — a CDCL solver (clause learning,
  assumptions, persistent database) behind the optimizer's triage
  permissibility front-end,
- :func:`~repro.sat.oracle.sat_check_equivalent` — a drop-in equivalence
  check used by the test-suite to cross-validate the PODEM oracle.
"""

from repro.sat.cnf import CnfFormula, tseitin_encode, miter_cnf
from repro.sat.dpll import DpllSolver, SAT, UNSAT, UNKNOWN
from repro.sat.incremental import IncrementalSolver
from repro.sat.oracle import sat_check_equivalent

__all__ = [
    "CnfFormula",
    "tseitin_encode",
    "miter_cnf",
    "DpllSolver",
    "IncrementalSolver",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "sat_check_equivalent",
]
