"""SAT-based equivalence checking (cross-validation oracle).

``sat_check_equivalent`` answers the same question as
:func:`repro.equiv.checker.check_equivalent`, through a completely
independent pipeline: Tseitin-encode both circuits into one CNF with
shared inputs, constrain some output pair to differ, and solve.

The test-suite runs both oracles on the same instances; agreement of two
independent engines (branch-and-bound over the circuit vs. DPLL over the
CNF) is strong evidence neither is quietly wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import NetlistError
from repro.netlist.netlist import Netlist
from repro.sat.cnf import miter_cnf
from repro.sat.dpll import UNKNOWN, UNSAT, DpllSolver


@dataclass
class SatEquivalenceResult:
    status: str  # "equal", "not-equal", "unknown"
    counterexample: Optional[dict[str, int]] = None
    conflicts: int = 0

    @property
    def equal(self) -> bool:
        return self.status == "equal"


def sat_check_equivalent(
    left: Netlist,
    right: Netlist,
    conflict_limit: int = 200_000,
) -> SatEquivalenceResult:
    """Decide equivalence by CNF satisfiability of the miter."""
    mismatch = set(left.input_names) ^ set(right.input_names)
    if mismatch:
        raise NetlistError(
            "operands have different input sets (name-matched, order "
            f"ignored); only on one side: {sorted(mismatch)}"
        )
    mismatch = set(left.outputs) ^ set(right.outputs)
    if mismatch:
        raise NetlistError(
            "operands have different output sets (name-matched, order "
            f"ignored); only on one side: {sorted(mismatch)}"
        )
    formula = miter_cnf(left, right)
    result = DpllSolver(formula, conflict_limit).solve()
    if result.status == UNSAT:
        return SatEquivalenceResult("equal", conflicts=result.conflicts)
    if result.status == UNKNOWN:
        return SatEquivalenceResult("unknown", conflicts=result.conflicts)
    counterexample = {
        name: int(result.model.get(formula.var_of[name], False))
        for name in left.input_names
    }
    return SatEquivalenceResult(
        "not-equal", counterexample, conflicts=result.conflicts
    )
