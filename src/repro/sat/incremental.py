"""An incremental CDCL SAT solver (clause learning + assumptions).

The triage permissibility front-end asks many closely-related miter
queries against one netlist state: a shared clause database (the base
Tseitin encoding) plus per-candidate definitional clauses, each query
activated through an assumption literal.  Every learned clause is a
consequence of the monotonically-growing database, so learning persists
across queries — the classic MiniSat incremental interface.

Compared to :class:`repro.sat.dpll.DpllSolver` (single-shot, no
learning) this solver adds first-UIP conflict analysis with
non-chronological backjumping, VSIDS-style activity ordering, phase
saving, geometric restarts, and solving under assumptions.  UNSAT
equivalence proofs — the common case, since most candidates surviving
the simulation prefilter *are* permissible — need clause learning to
avoid the exponential plateaus plain DPLL hits on reconvergent miters.

Determinism: every data structure iterates in insertion or index order
and activity ties break toward the lowest variable, so a given clause
sequence always produces the same verdict, model, and conflict count
(run traces pin the latter).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sat.cnf import CnfFormula
from repro.sat.dpll import SAT, UNKNOWN, UNSAT, SatResult

#: Activity rescale threshold (MiniSat's 1e100 ladder).
_RESCALE = 1e100
_RESCALE_INV = 1e-100
#: Per-conflict activity decay (bump grows by 1/decay instead).
_DECAY = 1.0 / 0.95


class IncrementalSolver:
    """A CDCL solver whose clause database persists across ``solve`` calls.

    Usage::

        solver = IncrementalSolver(base_formula)
        act = formula.new_var(); solver.ensure_vars(formula.num_vars)
        solver.add_clause(-act, *goal_literals)
        result = solver.solve(assumptions=[act])

    ``add_clause`` may only be called between ``solve`` calls (the solver
    always returns at decision level 0).
    """

    def __init__(self, formula: Optional[CnfFormula] = None):
        self.num_vars = 0
        #: Problem and learned clauses; slots 0/1 are the watched literals.
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[int]] = {}
        # Per-variable state; index 0 unused.
        self.assignment: list[Optional[bool]] = [None]
        self.reason: list[Optional[int]] = [None]
        self.level: list[int] = [0]
        self.phase: list[bool] = [False]
        self.activity: list[float] = [0.0]
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self._head = 0
        self.var_inc = 1.0
        self.conflicts = 0
        self.decisions = 0
        self._contradiction = False
        if formula is not None:
            self._load_formula(formula)

    def _load_formula(self, formula: CnfFormula) -> None:
        """Bulk-load a base formula (same semantics as repeated add_clause).

        While no unit clause has been met the per-clause work is inlined —
        no root-value filtering can fire on an empty trail — which makes
        loading a few-thousand-clause Tseitin base several times cheaper.
        """
        self.ensure_vars(formula.num_vars)
        clauses = self.clauses
        watches = self.watches
        for raw in formula.clauses:
            if self.trail or len(raw) < 2:
                # A unit appeared (or this clause is one): full semantics.
                if not self.add_clause(*raw):
                    return
                continue
            unique = dict.fromkeys(raw)
            if len(unique) < 2:
                if not self.add_clause(*raw):
                    return
                continue
            taut = False
            for lit in unique:
                if -lit in unique:
                    taut = True
                    break
            if taut:
                continue
            clause = list(unique)
            for lit in clause:
                if (lit if lit > 0 else -lit) > self.num_vars:
                    self.ensure_vars(abs(lit))
            index = len(clauses)
            clauses.append(clause)
            for watched in (clause[0], clause[1]):
                watch_list = watches.get(watched)
                if watch_list is None:
                    watches[watched] = [index]
                else:
                    watch_list.append(index)

    # ------------------------------------------------------------------
    # Variable / clause management
    # ------------------------------------------------------------------
    def ensure_vars(self, count: int) -> None:
        """Grow the variable tables to cover variables ``1..count``."""
        while self.num_vars < count:
            self.num_vars += 1
            self.assignment.append(None)
            self.reason.append(None)
            self.level.append(0)
            self.phase.append(False)
            self.activity.append(0.0)

    def add_clause(self, *literals: int) -> bool:
        """Add a clause at the root level.

        Returns ``False`` once the database is unsatisfiable at the root
        (every later ``solve`` then answers UNSAT immediately).
        Tautologies and clauses satisfied at the root are dropped; root-
        falsified literals are stripped.
        """
        if self._contradiction:
            return False
        unique = dict.fromkeys(literals)
        for lit in unique:
            if -lit in unique:
                return True  # tautology
        if not self.trail:
            # No root assignments yet: every literal is unassigned, so the
            # per-literal value filtering below cannot fire.  This is the
            # common case while loading a base formula.
            clause = list(unique)
            for lit in clause:
                if (lit if lit > 0 else -lit) > self.num_vars:
                    self.ensure_vars(abs(lit))
        else:
            clause = []
            for lit in unique:
                self.ensure_vars(abs(lit))
                value = self._value(lit)
                if value is True:  # root assignment: permanently satisfied
                    return True
                if value is False:  # permanently falsified literal
                    continue
                clause.append(lit)
        if not clause:
            self._contradiction = True
            return False
        if len(clause) == 1:
            self._enqueue(clause[0], None)
            if self._propagate() is not None:
                self._contradiction = True
                return False
            return True
        index = len(self.clauses)
        self.clauses.append(clause)
        self.watches.setdefault(clause[0], []).append(index)
        self.watches.setdefault(clause[1], []).append(index)
        return True

    # ------------------------------------------------------------------
    # Core machinery
    # ------------------------------------------------------------------
    def _value(self, literal: int) -> Optional[bool]:
        value = self.assignment[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _enqueue(self, literal: int, reason_index: Optional[int]) -> None:
        var = abs(literal)
        self.assignment[var] = literal > 0
        self.phase[var] = literal > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_index
        self.trail.append(literal)

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None.

        This is the solver's hottest loop, so literal valuation is inlined
        (``assignment[var]`` plus a sign test instead of :meth:`_value`)
        and per-instance attributes are hoisted into locals.
        """
        trail = self.trail
        watches = self.watches
        clauses = self.clauses
        assignment = self.assignment
        head = self._head
        while head < len(trail):
            falsified = -trail[head]
            head += 1
            watch_list = watches.get(falsified)
            if not watch_list:
                continue
            pos = 0
            end = len(watch_list)
            while pos < end:
                index = watch_list[pos]
                clause = clauses[index]
                # Normalise: the falsified literal sits in slot 1.
                if clause[0] == falsified:
                    clause[0] = clause[1]
                    clause[1] = falsified
                first = clause[0]
                value = assignment[first] if first > 0 else assignment[-first]
                if value is not None:
                    satisfied = value if first > 0 else not value
                    if satisfied:
                        pos += 1
                        continue
                replacement = -1
                for k in range(2, len(clause)):
                    q = clause[k]
                    qv = assignment[q] if q > 0 else assignment[-q]
                    if qv is None or (qv if q > 0 else not qv):
                        replacement = k
                        break
                if replacement >= 0:
                    clause[1] = clause[replacement]
                    clause[replacement] = falsified
                    moved = clause[1]
                    other_list = watches.get(moved)
                    if other_list is None:
                        watches[moved] = [index]
                    else:
                        other_list.append(index)
                    end -= 1
                    watch_list[pos] = watch_list[end]
                    watch_list.pop()
                    continue
                if value is not None:  # first is falsified too: conflict
                    self._head = head
                    return index
                self._enqueue(first, index)
                pos += 1
        self._head = head
        return None

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > _RESCALE:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= _RESCALE_INV
            self.var_inc *= _RESCALE_INV

    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        """First-UIP learned clause and its backjump level."""
        learnt: list[int] = [0]  # slot 0 becomes the asserting literal
        seen = [False] * (self.num_vars + 1)
        current = len(self.trail_lim)
        counter = 0
        index = len(self.trail)
        p = 0
        reason_index = conflict_index
        while True:
            for q in self.clauses[reason_index]:
                if q == p:
                    continue  # the literal this reason clause propagated
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current:
                        counter += 1
                    else:
                        learnt.append(q)
            while True:
                index -= 1
                p = self.trail[index]
                if seen[abs(p)]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_index = self.reason[abs(p)]
        learnt[0] = -p
        if len(learnt) == 1:
            return learnt, 0
        # Watch a literal of the backjump level in slot 1.
        max_i = 1
        for i in range(2, len(learnt)):
            if self.level[abs(learnt[i])] > self.level[abs(learnt[max_i])]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self.level[abs(learnt[1])]

    def _record(self, learnt: list[int]) -> None:
        """Install a learned clause; it asserts ``learnt[0]`` right away."""
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        index = len(self.clauses)
        self.clauses.append(learnt)
        self.watches.setdefault(learnt[0], []).append(index)
        self.watches.setdefault(learnt[1], []).append(index)
        self._enqueue(learnt[0], index)

    def _cancel_until(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        limit = self.trail_lim[target_level]
        for literal in self.trail[limit:]:
            var = abs(literal)
            self.assignment[var] = None
            self.reason[var] = None
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self._head = len(self.trail)

    def _decide_var(self) -> int:
        assignment = self.assignment
        activity = self.activity
        best = 0
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if assignment[var] is None and activity[var] > best_activity:
                best = var
                best_activity = activity[var]
        return best

    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int = 100_000,
    ) -> SatResult:
        """Decide the database under the given assumption literals.

        UNSAT means "unsatisfiable under these assumptions"; the database
        itself stays usable for further queries.  ``conflicts`` /
        ``decisions`` on the result count this call only.
        """
        if self._contradiction:
            return SatResult(UNSAT)
        for lit in assumptions:
            self.ensure_vars(abs(lit))
        self.decisions = 0
        conflicts_here = 0
        self._cancel_until(0)
        self._head = 0  # re-sweep the root trail against any new clauses
        restart_at = 100
        restart_step = 100
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if not self.trail_lim:
                    self._contradiction = True
                    return SatResult(
                        UNSAT,
                        conflicts=conflicts_here,
                        decisions=self.decisions,
                    )
                if conflicts_here > conflict_limit:
                    self._cancel_until(0)
                    return SatResult(
                        UNKNOWN,
                        conflicts=conflicts_here,
                        decisions=self.decisions,
                    )
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                self._record(learnt)
                self.var_inc *= _DECAY
                if conflicts_here >= restart_at:
                    restart_step = restart_step * 3 // 2
                    restart_at = conflicts_here + restart_step
                    self._cancel_until(0)
                continue
            # Propagation at fixpoint: (re-)place assumptions, then decide.
            next_decision = 0
            failed = False
            for lit in assumptions:
                value = self._value(lit)
                if value is False:
                    failed = True
                    break
                if value is None:
                    next_decision = lit
                    break
            if failed:
                self._cancel_until(0)
                return SatResult(
                    UNSAT, conflicts=conflicts_here, decisions=self.decisions
                )
            if next_decision == 0:
                var = self._decide_var()
                if var == 0:
                    model = {
                        v: bool(self.assignment[v])
                        for v in range(1, self.num_vars + 1)
                        if self.assignment[v] is not None
                    }
                    self._cancel_until(0)
                    return SatResult(
                        SAT,
                        model,
                        conflicts=conflicts_here,
                        decisions=self.decisions,
                    )
                next_decision = var if self.phase[var] else -var
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(next_decision, None)
