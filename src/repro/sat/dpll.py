"""A compact DPLL SAT solver.

Features: two-watched-literal unit propagation, static occurrence-weighted
variable order with phase saving, and a conflict budget that returns
:data:`UNKNOWN` instead of running away.  No clause learning — this solver
is a correctness cross-check and teaching artifact, not a competition
entry; the staged PODEM + BDD oracle remains the production path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sat.cnf import CnfFormula

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


@dataclass
class SatResult:
    status: str
    model: dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0

    def value_of(self, formula: CnfFormula, name: str) -> Optional[bool]:
        var = formula.var_of.get(name)
        if var is None:
            return None
        return self.model.get(var)


class DpllSolver:
    """Solve one CNF formula (single-shot; build a new solver per query)."""

    def __init__(self, formula: CnfFormula, conflict_limit: int = 200_000):
        self.formula = formula
        self.conflict_limit = conflict_limit
        self.num_vars = formula.num_vars
        self.clauses: list[tuple[int, ...]] = []
        #: literal -> list of clause indices watching it.
        self.watchers: dict[int, list[int]] = {}
        #: per-clause watched literal pair.
        self.watched: list[list[int]] = []
        # assignment[var] in {None, True, False}
        self.assignment: list[Optional[bool]] = [None] * (self.num_vars + 1)
        self.trail: list[int] = []  # assigned literals in order
        #: decision stack entries: [trail position, literal, tried_both]
        self.decision_stack: list[list] = []
        self.phase: list[bool] = [False] * (self.num_vars + 1)
        self.conflicts = 0
        self.decisions = 0
        self._units: list[int] = []
        self._contradiction = False
        self._initialise()

    # ------------------------------------------------------------------
    def _initialise(self) -> None:
        occurrence = [0] * (self.num_vars + 1)
        for clause in self.formula.clauses:
            unique = tuple(dict.fromkeys(clause))
            if any(-lit in unique for lit in unique):
                continue  # tautological clause
            if not unique:
                self._contradiction = True
                return
            if len(unique) == 1:
                self._units.append(unique[0])
                continue
            index = len(self.clauses)
            self.clauses.append(unique)
            self.watched.append([unique[0], unique[1]])
            self.watchers.setdefault(unique[0], []).append(index)
            self.watchers.setdefault(unique[1], []).append(index)
            for lit in unique:
                occurrence[abs(lit)] += 1
        # Static decision order: most-constrained variables first.
        self.order = sorted(
            range(1, self.num_vars + 1),
            key=lambda v: -occurrence[v],
        )

    # ------------------------------------------------------------------
    def _value(self, literal: int) -> Optional[bool]:
        value = self.assignment[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def _assign(self, literal: int) -> None:
        self.assignment[abs(literal)] = literal > 0
        self.phase[abs(literal)] = literal > 0
        self.trail.append(literal)

    def _propagate(self) -> Optional[int]:
        """Unit propagation from the current trail head; returns a
        conflicting clause index or None."""
        head = getattr(self, "_head", 0)
        while head < len(self.trail):
            literal = self.trail[head]
            head += 1
            falsified = -literal
            watch_list = self.watchers.get(falsified, [])
            index_pos = 0
            while index_pos < len(watch_list):
                clause_index = watch_list[index_pos]
                clause = self.clauses[clause_index]
                pair = self.watched[clause_index]
                other = pair[0] if pair[1] == falsified else pair[1]
                if self._value(other) is True:
                    index_pos += 1
                    continue
                # Find a replacement watch.
                replacement = None
                for lit in clause:
                    if lit == other or lit == falsified:
                        continue
                    if self._value(lit) is not False:
                        replacement = lit
                        break
                if replacement is not None:
                    if pair[0] == falsified:
                        pair[0] = replacement
                    else:
                        pair[1] = replacement
                    self.watchers.setdefault(replacement, []).append(
                        clause_index
                    )
                    watch_list[index_pos] = watch_list[-1]
                    watch_list.pop()
                    continue
                other_value = self._value(other)
                if other_value is None:
                    self._assign(other)
                elif other_value is False:
                    self._head = head
                    return clause_index
                index_pos += 1
        self._head = head
        return None

    def _decide(self) -> Optional[int]:
        for var in self.order:
            if self.assignment[var] is None:
                return var if self.phase[var] else -var
        return None

    def _backtrack(self) -> Optional[int]:
        """Undo to the deepest decision with an untried phase; flips it in
        place (the flipped value re-uses the same decision level).  Returns
        the flipped literal, or None when the tree is exhausted."""
        while self.decision_stack:
            entry = self.decision_stack[-1]
            limit, decision, tried_both = entry
            for literal in self.trail[limit:]:
                self.assignment[abs(literal)] = None
            del self.trail[limit:]
            self._head = limit
            if not tried_both:
                entry[1] = -decision
                entry[2] = True
                return -decision
            self.decision_stack.pop()
        return None

    # ------------------------------------------------------------------
    def solve(self) -> SatResult:
        if self._contradiction:
            return SatResult(UNSAT)
        self._head = 0
        for unit in self._units:
            value = self._value(unit)
            if value is False:
                return SatResult(UNSAT)
            if value is None:
                self._assign(unit)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if self.conflicts > self.conflict_limit:
                    return SatResult(
                        UNKNOWN, conflicts=self.conflicts,
                        decisions=self.decisions,
                    )
                flipped = self._backtrack()
                if flipped is None:
                    return SatResult(
                        UNSAT, conflicts=self.conflicts,
                        decisions=self.decisions,
                    )
                self._assign(flipped)
                continue
            decision = self._decide()
            if decision is None:
                model = {
                    v: bool(self.assignment[v])
                    for v in range(1, self.num_vars + 1)
                    if self.assignment[v] is not None
                }
                return SatResult(
                    SAT, model, self.conflicts, self.decisions
                )
            self.decisions += 1
            self.decision_stack.append([len(self.trail), decision, False])
            self._assign(decision)


def solve(formula: CnfFormula, conflict_limit: int = 200_000) -> SatResult:
    """One-shot convenience wrapper."""
    return DpllSolver(formula, conflict_limit).solve()
