"""Netlist windowing: overlapping TFI/TFO cones for scalable optimization.

Large netlists cannot afford whole-netlist candidate rounds; the windowed
optimizer (:mod:`repro.transform.windowed`) instead optimizes small
*windows* — TFI/TFO cones around seed gates — independently and merges the
non-conflicting results.  This package is the structural half of that
scheme:

- :func:`extract_window` grows one radius-bounded cone around a seed gate,
- :func:`partition_windows` selects seeds deterministically so every logic
  gate lands in at least one window, and annotates overlap between them,
- :func:`export_window` turns a window into a self-contained sub-netlist
  plus the boundary constraints (external output loads, and slots for
  boundary input probabilities) that make window-local power estimates
  meaningful.

The soundness contract, proven gate-by-gate in ``tests/partition`` and
end-to-end by the differential oracle in ``tests/transform/test_windowed``:
a window's exported sub-netlist exposes *every* signal the rest of the
netlist can observe (external branches and primary outputs) as a
sub-netlist primary output, so any transformation preserving the
sub-netlist's output functions preserves the full netlist's primary-output
functions when replayed in place.
"""

from repro.partition.export import WindowBoundary, export_window
from repro.partition.window import (
    Window,
    extract_window,
    partition_windows,
    recompute_boundary,
)

__all__ = [
    "Window",
    "WindowBoundary",
    "extract_window",
    "export_window",
    "partition_windows",
    "recompute_boundary",
]
