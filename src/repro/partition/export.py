"""Export a window as a self-contained sub-netlist plus boundary constraints.

The exported sub-netlist keeps every name from the parent: boundary inputs
become same-named primary inputs, members become same-named gates, and each
window output is exposed through primary-output ports —

- the member's real PO ports, with their original loads, and
- when the member branches into external logic, one *synthetic* PO named
  after the member itself (falling back to ``<name>__w`` on collision with
  a real port), carrying the summed load of the external sink pins.

That makes the window-local electrical view exact: for every member,
``sub.load_of(gate) == parent.load_of(gate)``, so window-local power gains
are computed against true capacitances.  The :class:`WindowBoundary`
records the full PO-load map (BLIF carries no loads, so pool workers
re-apply it after parsing) and optional boundary-input probability
annotations taken from the parent's probability engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import NetlistError
from repro.netlist.netlist import Netlist
from repro.partition.window import Window


@dataclass
class WindowBoundary:
    """Constraints that accompany a window's sub-netlist across a pool."""

    #: Index of the window this boundary belongs to.
    window_index: int
    #: Every sub-netlist PO port -> load capacitance (real ports keep the
    #: parent's load; synthetic ports carry the external sink-pin sum).
    po_loads: dict[str, float] = field(default_factory=dict)
    #: Synthetic PO port -> member gate it observes.
    synthetic_pos: dict[str, str] = field(default_factory=dict)
    #: Boundary input -> signal probability from the parent's engine
    #: (empty when the caller supplies no annotation).
    input_probs: dict[str, float] = field(default_factory=dict)

    def apply_loads(self, sub: Netlist) -> None:
        """Re-attach PO loads after a BLIF round trip."""
        for po, load in self.po_loads.items():
            if po not in sub.outputs:
                raise NetlistError(
                    f"boundary names unknown PO port {po!r} of {sub.name!r}"
                )
            sub.output_loads[po] = load


def export_window(
    netlist: Netlist,
    window: Window,
    probabilities: Optional[Mapping[str, float]] = None,
) -> tuple[Netlist, WindowBoundary]:
    """Build the window's sub-netlist and its boundary constraints."""
    members = set(window.members)
    sub = Netlist(f"{netlist.name}__w{window.index}", netlist.library)
    boundary = WindowBoundary(window_index=window.index)

    mapping = {}
    # PI creation order follows the *parent's* declaration order, not the
    # window's first-use order: random_patterns draws one sequential RNG
    # stream across input_names, so matching the parent's order is what
    # lets a window whose inputs are all real PIs reproduce the parent's
    # exact pattern set (an all-covering window then replays the flat
    # optimizer bit for bit).
    parent_order = {name: pos for pos, name in enumerate(netlist.gates)}
    for name in sorted(window.inputs, key=parent_order.__getitem__):
        mapping[name] = sub.add_input(name)
    for name in window.members:
        gate = netlist.gate(name)
        sub_gate = sub.add_gate(
            gate.cell,
            [mapping[fanin.name] for fanin in gate.fanins],
            name=name,
        )
        mapping[name] = sub_gate

    for name in window.outputs:
        gate = netlist.gate(name)
        for po in gate.po_names:
            load = netlist.output_loads[po]
            sub.set_output(po, mapping[name], load)
            boundary.po_loads[po] = load
        external_load = 0.0
        external_sinks = 0
        for sink, pin in gate.fanouts:
            if sink.name not in members:
                external_sinks += 1
                external_load += sink.cell.pins[pin].load
        if external_sinks:
            po = name if name not in sub.outputs else f"{name}__w"
            if po in sub.outputs:
                raise NetlistError(
                    f"cannot name synthetic PO for {name!r}: "
                    f"both {name!r} and {po!r} are taken"
                )
            sub.set_output(po, mapping[name], external_load)
            boundary.po_loads[po] = external_load
            boundary.synthetic_pos[po] = name

    if probabilities is not None:
        for name in window.inputs:
            prob = probabilities.get(name)
            if prob is not None:
                boundary.input_probs[name] = float(prob)
    return sub, boundary
