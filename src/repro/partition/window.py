"""Window extraction: radius-bounded TFI/TFO cones around seed gates.

A *window* is a set of logic gates reachable from a seed within ``radius``
structural steps, walking both fanin and fanout edges, capped at
``max_gates`` members.  Its boundary splits into

- **inputs** — signals outside the window (primary inputs or external
  gates) driving some member pin, and
- **outputs** — members observed outside the window, either through a
  branch into an external gate or through a primary-output port.

Every set is ordered deterministically (members and outputs in topological
order, inputs in first-use order over that walk), so extraction is
byte-reproducible across runs and worker counts — a property the test
suite pins by comparing exported BLIF bytes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import topological_index


@dataclass(frozen=True)
class Window:
    """One optimization region plus its annotated boundary."""

    #: Position in the partition (also the deterministic merge order).
    index: int
    #: Seed gate names the cone was grown from.
    seeds: tuple[str, ...]
    #: Member logic gates, topological order.
    members: tuple[str, ...]
    #: External driving signals (gates or primary inputs), first-use order.
    inputs: tuple[str, ...]
    #: Members observable outside the window (external branch or PO port).
    outputs: tuple[str, ...]
    #: Extraction radius the cone was grown with.
    radius: int
    #: Members shared with at least one other window of the partition
    #: (filled by :func:`partition_windows`; empty for a lone extraction).
    overlap: frozenset[str] = field(default_factory=frozenset)

    @property
    def member_set(self) -> frozenset[str]:
        return frozenset(self.members)

    def __str__(self) -> str:
        return (
            f"window[{self.index}] seeds={','.join(self.seeds)} "
            f"{len(self.members)} gates, {len(self.inputs)} in, "
            f"{len(self.outputs)} out"
        )


def _collect_members(
    netlist: Netlist, seed: Gate, radius: int, max_gates: int
) -> list[Gate]:
    """Breadth-first cone growth over fanin and fanout edges."""
    members: dict[int, Gate] = {id(seed): seed}
    queue: deque[tuple[Gate, int]] = deque([(seed, 0)])
    while queue and len(members) < max_gates:
        gate, depth = queue.popleft()
        if depth >= radius:
            continue
        neighbours: list[Gate] = [
            fanin for fanin in gate.fanins if not fanin.is_input
        ]
        neighbours.extend(gate.fanout_gates())
        for neighbour in neighbours:
            if id(neighbour) in members:
                continue
            if len(members) >= max_gates:
                break
            members[id(neighbour)] = neighbour
            queue.append((neighbour, depth + 1))
    return list(members.values())


def recompute_boundary(
    netlist: Netlist, members: list[Gate]
) -> tuple[list[str], list[str]]:
    """From-scratch (inputs, outputs) of a member set — the reference the
    extraction's inline bookkeeping is tested against."""
    member_ids = {id(g) for g in members}
    index = topological_index(netlist)
    ordered = sorted(members, key=lambda g: index[id(g)])
    inputs: dict[str, None] = {}
    outputs: list[str] = []
    for gate in ordered:
        for fanin in gate.fanins:
            if id(fanin) not in member_ids:
                inputs.setdefault(fanin.name)
        external = any(
            id(sink) not in member_ids for sink, _pin in gate.fanouts
        )
        if external or gate.po_names:
            outputs.append(gate.name)
    return list(inputs), outputs


def extract_window(
    netlist: Netlist,
    seed: Gate,
    radius: int,
    max_gates: int,
    index: int = 0,
) -> Window:
    """Grow one window around ``seed`` (a logic gate of ``netlist``)."""
    if seed.is_input:
        raise NetlistError(
            f"window seed {seed.name!r} is a primary input"
        )
    if netlist.gates.get(seed.name) is not seed:
        raise NetlistError(
            f"window seed {seed.name!r} does not belong to {netlist.name!r}"
        )
    if radius < 1:
        raise NetlistError(f"window radius must be >= 1, got {radius}")
    if max_gates < 1:
        raise NetlistError(f"window size must be >= 1, got {max_gates}")
    members = _collect_members(netlist, seed, radius, max_gates)
    topo = topological_index(netlist)
    members.sort(key=lambda g: topo[id(g)])
    inputs, outputs = recompute_boundary(netlist, members)
    return Window(
        index=index,
        seeds=(seed.name,),
        members=tuple(g.name for g in members),
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        radius=radius,
    )


def partition_windows(
    netlist: Netlist, radius: int = 3, max_gates: int = 80
) -> list[Window]:
    """Cover every logic gate with at least one window.

    Seeds are chosen greedily over the topological order: the first gate
    not yet covered by an earlier window seeds the next one.  The result
    is fully determined by the netlist structure — no randomness, no
    dependence on dict iteration or worker count — and each window's
    ``overlap`` names the members it shares with the rest of the
    partition (the merge resolver's conflict currency).
    """
    covered: set[str] = set()
    windows: list[Window] = []
    order = [g for g in netlist.gates.values()]
    topo = topological_index(netlist)
    order.sort(key=lambda g: topo[id(g)])
    for gate in order:
        if gate.is_input or gate.name in covered:
            continue
        window = extract_window(
            netlist, gate, radius, max_gates, index=len(windows)
        )
        covered.update(window.members)
        windows.append(window)
    counts: dict[str, int] = {}
    for window in windows:
        for name in window.members:
            counts[name] = counts.get(name, 0) + 1
    return [
        Window(
            index=w.index,
            seeds=w.seeds,
            members=w.members,
            inputs=w.inputs,
            outputs=w.outputs,
            radius=w.radius,
            overlap=frozenset(
                name for name in w.members if counts[name] > 1
            ),
        )
        for w in windows
    ]
