"""repro — reproduction of "Reducing Power Dissipation after Technology
Mapping by Structural Transformations" (Rohfleisch, Koelbl, Wurth; DAC 1996).

The package implements the POWDER power optimizer — a greedy sequence of
ATPG-verified permissible signal substitutions on mapped netlists — together
with every substrate it needs: a Boolean-function kernel, genlib cell
libraries, a mapped-netlist DAG with bit-parallel simulation, power and
timing models, a PODEM ATPG engine, a POSE-like synthesis front-end, and the
benchmark/experiment harness that regenerates the paper's tables and figures.

Quickstart::

    from repro import standard_library, NetlistBuilder, power_optimize

    lib = standard_library()
    b = NetlistBuilder(lib)
    a, bb, c = b.inputs("a", "b", "c")
    b.output("e_out", b.and_(a, bb, name="e"))
    b.output("f_out", b.and_(b.xor_(a, c), bb))
    result = power_optimize(b.build())   # finds the paper's Fig.-2 rewiring
    print(result.summary())
"""

from repro.library import standard_library, parse_genlib, Library, Cell
from repro.netlist import Netlist, Gate, parse_blif, write_blif
from repro.netlist.build import NetlistBuilder

__version__ = "1.0.0"

__all__ = [
    "standard_library",
    "parse_genlib",
    "Library",
    "Cell",
    "Netlist",
    "Gate",
    "NetlistBuilder",
    "parse_blif",
    "write_blif",
    "power_optimize",
    "PowerOptimizer",
    "OptimizeOptions",
    "run_pipeline",
    "OptimizationContext",
    "PassManager",
    "WindowedOptimizer",
    "windowed_optimize",
    "__version__",
]


def __getattr__(name):
    # Late imports keep `import repro` light and avoid circular imports
    # while the higher layers (transform, pipeline) are built on the
    # lower ones.
    if name in ("power_optimize", "PowerOptimizer", "OptimizeOptions"):
        from repro.transform import optimizer

        return getattr(optimizer, name)
    if name in ("run_pipeline", "OptimizationContext", "PassManager"):
        import repro.pipeline as pipeline

        return getattr(pipeline, name)
    if name in ("WindowedOptimizer", "windowed_optimize"):
        from repro.transform import windowed

        return getattr(windowed, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
