"""Cube and cover algebra for two-level (sum-of-products) logic.

A :class:`Cube` over ``nvars`` inputs stores two bitmasks: ``care`` marks the
variables that appear as literals, ``values`` their polarity (bit set =
positive literal; bits outside ``care`` are kept clear).  A :class:`Cover` is
an ordered list of cubes interpreted as their OR.

The algebra here (cofactors, tautology, containment, complement, consensus)
is what the espresso-style minimizer in :mod:`repro.synth.twolevel` and the
algebraic factoring code build on.  Recursions follow the classic unate
paradigm from Brayton et al.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from repro.errors import LogicError
from repro.logic.truthtable import TruthTable


class Cube:
    """A product term: immutable pair of (care, values) bitmasks."""

    __slots__ = ("nvars", "care", "values")

    def __init__(self, nvars: int, care: int, values: int):
        if nvars < 0:
            raise LogicError("nvars must be non-negative")
        mask = (1 << nvars) - 1
        if care & ~mask:
            raise LogicError("care mask exceeds variable count")
        if values & ~care:
            raise LogicError("values must be a subset of care bits")
        object.__setattr__(self, "nvars", nvars)
        object.__setattr__(self, "care", care)
        object.__setattr__(self, "values", values)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Cube is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def universe(cls, nvars: int) -> "Cube":
        """The cube with no literals (constant 1)."""
        return cls(nvars, 0, 0)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse PLA-style notation, e.g. ``"1-0"`` (var 0 first)."""
        care = values = 0
        for i, ch in enumerate(text.strip()):
            if ch == "1":
                care |= 1 << i
                values |= 1 << i
            elif ch == "0":
                care |= 1 << i
            elif ch in "-~2":
                continue
            else:
                raise LogicError(f"bad cube character {ch!r}")
        return cls(len(text.strip()), care, values)

    @classmethod
    def from_minterm(cls, nvars: int, minterm: int) -> "Cube":
        mask = (1 << nvars) - 1
        return cls(nvars, mask, minterm & mask)

    # ------------------------------------------------------------------
    # Literal access
    # ------------------------------------------------------------------
    def literal(self, var: int) -> Optional[int]:
        """Polarity of ``var`` in this cube: 1, 0, or None when absent."""
        if not (self.care >> var) & 1:
            return None
        return (self.values >> var) & 1

    def with_literal(self, var: int, polarity: Optional[int]) -> "Cube":
        """Copy with the literal on ``var`` set (or removed when None)."""
        bit = 1 << var
        if polarity is None:
            return Cube(self.nvars, self.care & ~bit, self.values & ~bit)
        values = self.values | bit if polarity else self.values & ~bit
        return Cube(self.nvars, self.care | bit, values)

    def num_literals(self) -> int:
        return self.care.bit_count()

    def literals(self) -> Iterator[tuple[int, int]]:
        """Yield (variable, polarity) for each literal."""
        care = self.care
        while care:
            bit = care & -care
            var = bit.bit_length() - 1
            yield var, (self.values >> var) & 1
            care ^= bit

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def contains(self, other: "Cube") -> bool:
        """True if ``other``'s onset is inside this cube's onset."""
        if self.care & ~other.care:
            return False
        return (other.values ^ self.values) & self.care == 0

    def contains_minterm(self, minterm: int) -> bool:
        return (minterm ^ self.values) & self.care == 0

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """Cube intersection, or None when empty."""
        conflict = self.care & other.care & (self.values ^ other.values)
        if conflict:
            return None
        return Cube(
            self.nvars,
            self.care | other.care,
            self.values | other.values,
        )

    def distance(self, other: "Cube") -> int:
        """Number of variables on which the cubes have opposite literals."""
        return (self.care & other.care & (self.values ^ other.values)).bit_count()

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """Consensus cube when the distance is exactly 1, else None."""
        conflict = self.care & other.care & (self.values ^ other.values)
        if conflict.bit_count() != 1:
            return None
        care = (self.care | other.care) & ~conflict
        values = (self.values | other.values) & care
        return Cube(self.nvars, care, values)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both."""
        care = self.care & other.care & ~(self.values ^ other.values)
        return Cube(self.nvars, care, self.values & care)

    def cofactor(self, var: int, value: int) -> Optional["Cube"]:
        """Shannon cofactor; None when the cube vanishes."""
        lit = self.literal(var)
        if lit is not None and lit != value:
            return None
        return self.with_literal(var, None)

    def size_log2(self) -> int:
        """log2 of the number of minterms covered."""
        return self.nvars - self.care.bit_count()

    def to_truthtable(self) -> TruthTable:
        bits = 0
        for minterm in range(1 << self.nvars):
            if self.contains_minterm(minterm):
                bits |= 1 << minterm
        return TruthTable(self.nvars, bits)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Cube)
            and other.nvars == self.nvars
            and other.care == self.care
            and other.values == self.values
        )

    def __hash__(self) -> int:
        return hash((self.nvars, self.care, self.values))

    def __str__(self) -> str:
        chars = []
        for var in range(self.nvars):
            lit = self.literal(var)
            chars.append("-" if lit is None else str(lit))
        return "".join(chars)

    def __repr__(self) -> str:
        return f"Cube({str(self)!r})"


class Cover:
    """An ordered list of cubes interpreted as a sum of products."""

    __slots__ = ("nvars", "cubes")

    def __init__(self, nvars: int, cubes: Iterable[Cube] = ()):
        self.nvars = nvars
        self.cubes: list[Cube] = []
        for cube in cubes:
            if cube.nvars != nvars:
                raise LogicError("cube width mismatch in cover")
            self.cubes.append(cube)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_strings(cls, rows: Sequence[str]) -> "Cover":
        cubes = [Cube.from_string(row) for row in rows]
        if not cubes:
            raise LogicError("cannot infer width of an empty cover")
        return cls(cubes[0].nvars, cubes)

    @classmethod
    def from_truthtable(cls, table: TruthTable) -> "Cover":
        """Minterm-canonical cover of a truth table."""
        cubes = [
            Cube.from_minterm(table.nvars, m)
            for m in range(table.nrows)
            if table.value(m)
        ]
        return cls(table.nvars, cubes)

    @classmethod
    def constant(cls, nvars: int, value: bool) -> "Cover":
        return cls(nvars, [Cube.universe(nvars)] if value else [])

    def copy(self) -> "Cover":
        return Cover(self.nvars, list(self.cubes))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def num_literals(self) -> int:
        return sum(cube.num_literals() for cube in self.cubes)

    def contains_minterm(self, minterm: int) -> bool:
        return any(cube.contains_minterm(minterm) for cube in self.cubes)

    def evaluate(self, inputs: Sequence[int]) -> int:
        minterm = 0
        for var, bit in enumerate(inputs):
            if bit:
                minterm |= 1 << var
        return int(self.contains_minterm(minterm))

    def to_truthtable(self) -> TruthTable:
        bits = 0
        for cube in self.cubes:
            bits |= cube.to_truthtable().bits
        return TruthTable(self.nvars, bits)

    def is_empty(self) -> bool:
        return not self.cubes

    # ------------------------------------------------------------------
    # Cofactors and tautology
    # ------------------------------------------------------------------
    def cofactor(self, var: int, value: int) -> "Cover":
        cubes = []
        for cube in self.cubes:
            cf = cube.cofactor(var, value)
            if cf is not None:
                cubes.append(cf)
        return Cover(self.nvars, cubes)

    def cube_cofactor(self, cube: Cube) -> "Cover":
        """Cofactor with respect to every literal of ``cube``."""
        result = self
        for var, polarity in cube.literals():
            result = result.cofactor(var, polarity)
        return result

    def _most_binate_variable(self) -> Optional[int]:
        """Splitting variable: appears in both polarities most often."""
        pos = [0] * self.nvars
        neg = [0] * self.nvars
        for cube in self.cubes:
            for var, polarity in cube.literals():
                if polarity:
                    pos[var] += 1
                else:
                    neg[var] += 1
        best_var, best_score = None, -1
        for var in range(self.nvars):
            if pos[var] and neg[var]:
                score = pos[var] + neg[var]
                if score > best_score:
                    best_var, best_score = var, score
        if best_var is not None:
            return best_var
        # Unate cover: pick any variable that still appears.
        for var in range(self.nvars):
            if pos[var] or neg[var]:
                return var
        return None

    def is_tautology(self) -> bool:
        """True if the cover equals constant 1 (unate recursion)."""
        if any(cube.care == 0 for cube in self.cubes):
            return True
        if not self.cubes:
            return False
        var = self._most_binate_variable()
        if var is None:
            # No literals anywhere and no universal cube: impossible branch,
            # kept for safety.
            return False
        # Unate reduction: a variable appearing in only one polarity cannot
        # make the cover a tautology through those cubes alone, but the
        # standard recursion still terminates quickly; go straight to Shannon.
        return self.cofactor(var, 0).is_tautology() and self.cofactor(
            var, 1
        ).is_tautology()

    def covers_cube(self, cube: Cube) -> bool:
        """True if the cover contains the whole onset of ``cube``."""
        return self.cube_cofactor(cube).is_tautology()

    def covers(self, other: "Cover") -> bool:
        return all(self.covers_cube(cube) for cube in other.cubes)

    def equivalent(self, other: "Cover") -> bool:
        return self.covers(other) and other.covers(self)

    # ------------------------------------------------------------------
    # Complement (Shannon recursion with cube-list merge)
    # ------------------------------------------------------------------
    def complement(self) -> "Cover":
        if not self.cubes:
            return Cover.constant(self.nvars, True)
        if any(cube.care == 0 for cube in self.cubes):
            return Cover.constant(self.nvars, False)
        if len(self.cubes) == 1:
            # De Morgan on a single cube.
            cubes = []
            for var, polarity in self.cubes[0].literals():
                cubes.append(
                    Cube.universe(self.nvars).with_literal(var, 1 - polarity)
                )
            return Cover(self.nvars, cubes)
        var = self._most_binate_variable()
        if var is None:
            return Cover.constant(self.nvars, False)
        neg = self.cofactor(var, 0).complement()
        pos = self.cofactor(var, 1).complement()
        cubes = []
        for cube in neg.cubes:
            merged = cube.with_literal(var, 0)
            cubes.append(merged)
        for cube in pos.cubes:
            cubes.append(cube.with_literal(var, 1))
        result = Cover(self.nvars, cubes)
        result.remove_contained()
        return result

    # ------------------------------------------------------------------
    # Simplification helpers
    # ------------------------------------------------------------------
    def remove_contained(self) -> None:
        """Drop cubes single-cube-contained in another cube (in place)."""
        kept: list[Cube] = []
        for cube in sorted(self.cubes, key=lambda c: c.num_literals()):
            if not any(other.contains(cube) for other in kept):
                kept.append(cube)
        self.cubes = kept

    def merge_distance_one(self) -> bool:
        """One pass of distance-1 cube merging; True if anything merged."""
        changed = False
        i = 0
        while i < len(self.cubes):
            j = i + 1
            merged = False
            while j < len(self.cubes):
                a, b = self.cubes[i], self.cubes[j]
                if a.care == b.care and a.distance(b) == 1:
                    diff = a.values ^ b.values
                    combined = Cube(a.nvars, a.care & ~diff, a.values & ~diff)
                    self.cubes[i] = combined
                    del self.cubes[j]
                    changed = merged = True
                else:
                    j += 1
            if not merged:
                i += 1
        return changed

    def __repr__(self) -> str:
        return f"Cover({self.nvars} vars, {len(self.cubes)} cubes)"
