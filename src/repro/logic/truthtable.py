"""Dense truth tables for Boolean functions of small support.

A :class:`TruthTable` stores the function of ``n`` ordered input variables as
a ``2**n``-bit integer: bit ``i`` is the function value on the input minterm
whose binary encoding is ``i`` (variable 0 is the least significant bit of the
minterm index).  Python's arbitrary-precision integers make the bitwise
operators exact for any ``n``; the class caps ``n`` at :data:`MAX_VARS` to
keep memory and matching costs sane — that is plenty for library cells and
mapper cut functions.

Truth tables are immutable value objects: operators return new instances and
instances hash/compare by ``(nvars, bits)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import permutations

from repro.errors import LogicError

#: Largest supported number of input variables.
MAX_VARS = 16


def _full_mask(nvars: int) -> int:
    return (1 << (1 << nvars)) - 1


def _var_pattern(var: int, nvars: int) -> int:
    """Truth table bits of the projection function ``x_var`` on ``nvars`` vars."""
    block = 1 << var
    pattern = ((1 << block) - 1) << block  # `block` zeros then `block` ones
    period = block * 2
    bits = 0
    for offset in range(0, 1 << nvars, period):
        bits |= pattern << offset
    return bits


class TruthTable:
    """Immutable truth table of a Boolean function on ``nvars`` inputs."""

    __slots__ = ("nvars", "bits")

    def __init__(self, nvars: int, bits: int):
        if not 0 <= nvars <= MAX_VARS:
            raise LogicError(f"nvars must be in [0, {MAX_VARS}], got {nvars}")
        if bits < 0:
            raise LogicError("truth table bits must be non-negative")
        mask = _full_mask(nvars)
        if bits > mask:
            raise LogicError(
                f"truth table bits 0x{bits:x} exceed {1 << nvars} rows"
            )
        object.__setattr__(self, "nvars", nvars)
        object.__setattr__(self, "bits", bits)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("TruthTable is immutable")

    def __reduce__(self):
        # __slots__ + the __setattr__ guard break pickle's default state
        # restore; rebuild through the constructor instead (needed to ship
        # a Library to multiprocessing pool workers).
        return (TruthTable, (self.nvars, self.bits))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: bool, nvars: int = 0) -> "TruthTable":
        """The constant-``value`` function on ``nvars`` inputs."""
        return cls(nvars, _full_mask(nvars) if value else 0)

    @classmethod
    def variable(cls, var: int, nvars: int) -> "TruthTable":
        """The projection function returning input ``var``."""
        if not 0 <= var < nvars:
            raise LogicError(f"variable index {var} out of range for {nvars} vars")
        return cls(nvars, _var_pattern(var, nvars))

    @classmethod
    def from_rows(cls, rows: Sequence[int]) -> "TruthTable":
        """Build from an explicit output column (row *i* = minterm *i*)."""
        n = len(rows)
        if n == 0 or n & (n - 1):
            raise LogicError(f"row count must be a power of two, got {n}")
        nvars = n.bit_length() - 1
        bits = 0
        for i, value in enumerate(rows):
            if value not in (0, 1, True, False):
                raise LogicError(f"row {i} is not Boolean: {value!r}")
            if value:
                bits |= 1 << i
        return cls(nvars, bits)

    @classmethod
    def from_function(cls, func, nvars: int) -> "TruthTable":
        """Tabulate ``func(inputs: tuple[int, ...]) -> bool`` on ``nvars`` vars."""
        bits = 0
        for minterm in range(1 << nvars):
            inputs = tuple((minterm >> v) & 1 for v in range(nvars))
            if func(inputs):
                bits |= 1 << minterm
        return cls(nvars, bits)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return 1 << self.nvars

    def value(self, minterm: int) -> int:
        """Function value on the given minterm index."""
        if not 0 <= minterm < self.nrows:
            raise LogicError(f"minterm {minterm} out of range")
        return (self.bits >> minterm) & 1

    def evaluate(self, inputs: Sequence[int]) -> int:
        """Function value on an explicit input assignment."""
        if len(inputs) != self.nvars:
            raise LogicError(
                f"expected {self.nvars} inputs, got {len(inputs)}"
            )
        minterm = 0
        for var, bit in enumerate(inputs):
            if bit:
                minterm |= 1 << var
        return (self.bits >> minterm) & 1

    def count_ones(self) -> int:
        """Number of minterms on which the function is 1."""
        return self.bits.bit_count()

    def is_constant(self) -> bool:
        return self.bits in (0, _full_mask(self.nvars))

    def onset_probability(self, input_probs: Sequence[float] | None = None) -> float:
        """Probability that the function is 1.

        With no argument, inputs are equiprobable and the result is
        ``count_ones() / 2**nvars``.  Otherwise ``input_probs[v]`` is the
        probability that input ``v`` is 1 and inputs are independent.
        """
        if input_probs is None:
            return self.count_ones() / self.nrows
        if len(input_probs) != self.nvars:
            raise LogicError("one probability per input variable required")
        total = 0.0
        for minterm in range(self.nrows):
            if not (self.bits >> minterm) & 1:
                continue
            p = 1.0
            for var, pv in enumerate(input_probs):
                p *= pv if (minterm >> var) & 1 else 1.0 - pv
            total += p
        return total

    def depends_on(self, var: int) -> bool:
        """True if the function actually depends on input ``var``."""
        return self.cofactor(var, 0).bits != self.cofactor(var, 1).bits

    def support(self) -> tuple[int, ...]:
        """Indices of the variables the function depends on."""
        return tuple(v for v in range(self.nvars) if self.depends_on(v))

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "TruthTable") -> None:
        if not isinstance(other, TruthTable):
            raise LogicError(f"expected TruthTable, got {type(other).__name__}")
        if other.nvars != self.nvars:
            raise LogicError(
                f"support mismatch: {self.nvars} vs {other.nvars} variables"
            )

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.nvars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.nvars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.nvars, self.bits ^ other.bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.nvars, self.bits ^ _full_mask(self.nvars))

    def implies(self, other: "TruthTable") -> bool:
        """True if ``self <= other`` pointwise (onset containment)."""
        self._check_compatible(other)
        return self.bits & ~other.bits == 0

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def cofactor(self, var: int, value: int) -> "TruthTable":
        """Shannon cofactor with input ``var`` fixed to ``value``.

        The result keeps the same variable count (the fixed variable becomes
        vacuous), which keeps downstream code free of index remapping.
        """
        if not 0 <= var < self.nvars:
            raise LogicError(f"variable index {var} out of range")
        pattern = _var_pattern(var, self.nvars)
        block = 1 << var
        if value:
            half = self.bits & pattern
            result = half | (half >> block)
        else:
            half = self.bits & ~pattern & _full_mask(self.nvars)
            result = half | (half << block)
        return TruthTable(self.nvars, result & _full_mask(self.nvars))

    def compose(self, tables: Sequence["TruthTable"]) -> "TruthTable":
        """Substitute a function for each input variable.

        ``tables[v]`` (all on a common support of ``m`` variables) replaces
        input ``v``; the result is a function on those ``m`` variables.
        """
        if len(tables) != self.nvars:
            raise LogicError("one replacement table per input required")
        if self.nvars == 0:
            return TruthTable(0, self.bits)
        m = tables[0].nvars
        for t in tables:
            if t.nvars != m:
                raise LogicError("replacement tables must share a support")
        result = 0
        full = _full_mask(m)
        for minterm in range(self.nrows):
            if not (self.bits >> minterm) & 1:
                continue
            rows = full
            for var, t in enumerate(tables):
                rows &= t.bits if (minterm >> var) & 1 else t.bits ^ full
            result |= rows
        return TruthTable(m, result)

    def permute(self, mapping: Sequence[int]) -> "TruthTable":
        """Apply an input permutation.

        ``mapping[new] = old``: input position ``new`` of the result reads the
        variable that was at position ``old`` in ``self``.
        """
        if sorted(mapping) != list(range(self.nvars)):
            raise LogicError(f"not a permutation of {self.nvars} vars: {mapping}")
        bits = 0
        for minterm in range(self.nrows):
            src = 0
            for new, old in enumerate(mapping):
                if (minterm >> new) & 1:
                    src |= 1 << old
            if (self.bits >> src) & 1:
                bits |= 1 << minterm
        return TruthTable(self.nvars, bits)

    def extend(self, nvars: int, placement: Sequence[int] | None = None) -> "TruthTable":
        """Re-express on a larger support.

        ``placement[old] = new`` maps each current variable to its position in
        the wider support (identity when omitted).
        """
        if nvars < self.nvars:
            raise LogicError("extend target must not shrink the support")
        if placement is None:
            placement = list(range(self.nvars))
        if len(placement) != self.nvars or len(set(placement)) != self.nvars:
            raise LogicError("placement must map each variable once")
        if any(not 0 <= p < nvars for p in placement):
            raise LogicError("placement index out of range")
        tables = [TruthTable.variable(placement[v], nvars) for v in range(self.nvars)]
        return self.compose(tables)

    def shrink(self) -> tuple["TruthTable", tuple[int, ...]]:
        """Drop vacuous variables; returns (table, kept original indices)."""
        kept = self.support()
        table = self
        # Permute the live variables to the front, then truncate.
        order = list(kept) + [v for v in range(self.nvars) if v not in kept]
        inverse = [0] * self.nvars
        for new, old in enumerate(order):
            inverse[new] = old
        table = table.permute(inverse)
        bits = table.bits & _full_mask(len(kept))
        return TruthTable(len(kept), bits), kept

    # ------------------------------------------------------------------
    # Canonicalisation (used by the technology mapper)
    # ------------------------------------------------------------------
    def p_canonical(self) -> tuple["TruthTable", tuple[int, ...]]:
        """Smallest table over all input permutations.

        Returns ``(canon, mapping)`` where ``mapping`` is the permutation (in
        :meth:`permute` convention) that produced it.  Exhaustive over
        ``nvars!`` permutations — intended for mapper-sized supports.
        """
        best_bits = None
        best_perm: tuple[int, ...] = tuple(range(self.nvars))
        for perm in permutations(range(self.nvars)):
            candidate = self.permute(perm)
            if best_bits is None or candidate.bits < best_bits:
                best_bits = candidate.bits
                best_perm = perm
        return TruthTable(self.nvars, best_bits or 0), best_perm

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TruthTable)
            and other.nvars == self.nvars
            and other.bits == self.bits
        )

    def __hash__(self) -> int:
        return hash((self.nvars, self.bits))

    def __repr__(self) -> str:
        width = max(1, (self.nrows + 3) // 4)
        return f"TruthTable({self.nvars}, 0x{self.bits:0{width}x})"


def all_minterms(nvars: int) -> Iterable[tuple[int, ...]]:
    """Yield every input assignment on ``nvars`` variables in minterm order."""
    for minterm in range(1 << nvars):
        yield tuple((minterm >> v) & 1 for v in range(nvars))
