"""Genlib-style Boolean expression parser and AST.

The grammar follows SIS ``genlib`` conventions:

- ``+`` — OR (lowest precedence)
- ``*`` or juxtaposition — AND
- ``^`` — XOR (between OR and AND; an extension, some libraries use it)
- ``!a`` (prefix) and ``a'`` (postfix) — NOT
- ``CONST0`` / ``CONST1`` — constants
- parentheses group as usual

Identifiers are ``[A-Za-z_][A-Za-z0-9_<>\\[\\]]*``.  The AST is a small
immutable :class:`Expr` tree that can be evaluated, tabulated to a
:class:`~repro.logic.truthtable.TruthTable`, and pretty-printed back to genlib
syntax.
"""

from __future__ import annotations

import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParseError
from repro.logic.truthtable import TruthTable

# Node kinds
CONST = "const"
VAR = "var"
NOT = "not"
AND = "and"
OR = "or"
XOR = "xor"

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_<>\[\]]*)"
    r"|(?P<op>[()!*+^'])"
    r"|(?P<bad>\S))"
)


@dataclass(frozen=True)
class Expr:
    """Immutable Boolean expression node.

    ``kind`` is one of the module constants; ``children`` holds operand nodes
    (ordered, n-ary for AND/OR/XOR); ``name`` is the variable name for VAR
    nodes; ``value`` the constant for CONST nodes.
    """

    kind: str
    children: tuple["Expr", ...] = ()
    name: Optional[str] = None
    value: Optional[bool] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def const(value: bool) -> "Expr":
        return Expr(CONST, value=bool(value))

    @staticmethod
    def var(name: str) -> "Expr":
        return Expr(VAR, name=name)

    @staticmethod
    def not_(child: "Expr") -> "Expr":
        return Expr(NOT, (child,))

    @staticmethod
    def and_(*children: "Expr") -> "Expr":
        return Expr(AND, tuple(children))

    @staticmethod
    def or_(*children: "Expr") -> "Expr":
        return Expr(OR, tuple(children))

    @staticmethod
    def xor(*children: "Expr") -> "Expr":
        return Expr(XOR, tuple(children))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def variables(self) -> tuple[str, ...]:
        """Variable names in first-appearance order."""
        seen: dict[str, None] = {}

        def walk(node: "Expr") -> None:
            if node.kind == VAR:
                seen.setdefault(node.name or "", None)
            for child in node.children:
                walk(child)

        walk(self)
        return tuple(seen)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate under a name -> {0,1} assignment."""
        if self.kind == CONST:
            return int(bool(self.value))
        if self.kind == VAR:
            try:
                return int(bool(assignment[self.name]))
            except KeyError:
                raise ParseError(f"unbound variable {self.name!r}") from None
        values = [child.evaluate(assignment) for child in self.children]
        if self.kind == NOT:
            return 1 - values[0]
        if self.kind == AND:
            return int(all(values))
        if self.kind == OR:
            return int(any(values))
        if self.kind == XOR:
            return sum(values) & 1
        raise ParseError(f"unknown node kind {self.kind!r}")

    def to_truthtable(self, order: Sequence[str] | None = None) -> TruthTable:
        """Tabulate on the given variable order (default: appearance order)."""
        names = list(order) if order is not None else list(self.variables())
        index = {name: i for i, name in enumerate(names)}
        missing = [v for v in self.variables() if v not in index]
        if missing:
            raise ParseError(f"order is missing variables: {missing}")

        def build(node: "Expr") -> TruthTable:
            n = len(names)
            if node.kind == CONST:
                return TruthTable.constant(bool(node.value), n)
            if node.kind == VAR:
                return TruthTable.variable(index[node.name], n)
            tables = [build(child) for child in node.children]
            if node.kind == NOT:
                return ~tables[0]
            result = tables[0]
            for t in tables[1:]:
                if node.kind == AND:
                    result = result & t
                elif node.kind == OR:
                    result = result | t
                else:
                    result = result ^ t
            return result

        return build(self)

    # ------------------------------------------------------------------
    # Printing
    # ------------------------------------------------------------------
    def to_genlib(self) -> str:
        """Render in genlib syntax (``*`` for AND, ``+`` for OR, ``!`` NOT)."""

        def render(node: "Expr", parent: str) -> str:
            if node.kind == CONST:
                return "CONST1" if node.value else "CONST0"
            if node.kind == VAR:
                return node.name or "?"
            if node.kind == NOT:
                inner = render(node.children[0], NOT)
                return f"!{inner}"
            symbol = {AND: "*", OR: "+", XOR: "^"}[node.kind]
            body = symbol.join(render(c, node.kind) for c in node.children)
            needs_parens = (
                parent == NOT
                or (parent == AND and node.kind in (OR, XOR))
                or (parent == XOR and node.kind == OR)
            )
            return f"({body})" if needs_parens else body

        return render(self, "")

    def __str__(self) -> str:
        return self.to_genlib()


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.tokens = self._tokenize(text)
        self.pos = 0

    @staticmethod
    def _tokenize(text: str) -> list[str]:
        tokens: list[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                break
            if match.group("bad"):
                raise ParseError(f"unexpected character {match.group('bad')!r}")
            tokens.append(match.group("ident") or match.group("op"))
            pos = match.end()
        return tokens

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        self.pos += 1
        return token

    def parse(self) -> Expr:
        node = self.parse_or()
        if self.peek() is not None:
            raise ParseError(f"trailing input at token {self.peek()!r}")
        return node

    def parse_or(self) -> Expr:
        terms = [self.parse_xor()]
        while self.peek() == "+":
            self.take()
            terms.append(self.parse_xor())
        return terms[0] if len(terms) == 1 else Expr.or_(*terms)

    def parse_xor(self) -> Expr:
        terms = [self.parse_and()]
        while self.peek() == "^":
            self.take()
            terms.append(self.parse_and())
        return terms[0] if len(terms) == 1 else Expr.xor(*terms)

    def parse_and(self) -> Expr:
        terms = [self.parse_unary()]
        while True:
            token = self.peek()
            if token == "*":
                self.take()
                terms.append(self.parse_unary())
            elif token is not None and (token == "(" or token == "!" or _is_ident(token)):
                # juxtaposition AND, e.g. "a b" or "a!b"
                terms.append(self.parse_unary())
            else:
                break
        return terms[0] if len(terms) == 1 else Expr.and_(*terms)

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token == "!":
            self.take()
            return Expr.not_(self.parse_unary())
        node = self.parse_atom()
        while self.peek() == "'":
            self.take()
            node = Expr.not_(node)
        return node

    def parse_atom(self) -> Expr:
        token = self.take()
        if token == "(":
            node = self.parse_or()
            if self.take() != ")":
                raise ParseError("expected ')'")
            return node
        if token == "CONST0":
            return Expr.const(False)
        if token == "CONST1":
            return Expr.const(True)
        if _is_ident(token):
            return Expr.var(token)
        raise ParseError(f"unexpected token {token!r}")


def _is_ident(token: str) -> bool:
    return bool(re.fullmatch(r"[A-Za-z_][A-Za-z0-9_<>\[\]]*", token))


def parse_expression(text: str) -> Expr:
    """Parse a genlib-style Boolean expression into an :class:`Expr`."""
    if not text or not text.strip():
        raise ParseError("empty expression")
    return _Parser(text).parse()
