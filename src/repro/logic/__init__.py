"""Boolean function kernel.

This subpackage provides the function representations used throughout the
library:

- :class:`~repro.logic.truthtable.TruthTable` — dense bit-vector truth tables
  for functions of small support (library cells, cut functions, PLA outputs).
- :mod:`~repro.logic.expr` — parser/printer for genlib-style Boolean
  expressions.
- :mod:`~repro.logic.sop` — cube/cover algebra for two-level representations.
- :mod:`~repro.logic.bdd` — a reduced ordered BDD package used for exact
  signal-probability computation.
"""

from repro.logic.truthtable import TruthTable
from repro.logic.expr import Expr, parse_expression
from repro.logic.sop import Cube, Cover
from repro.logic.bdd import BddManager

__all__ = [
    "TruthTable",
    "Expr",
    "parse_expression",
    "Cube",
    "Cover",
    "BddManager",
]
