"""A compact reduced ordered BDD (ROBDD) package.

Used for *exact* signal-probability computation on small and medium circuits
(:mod:`repro.power.probability`).  The design is deliberately simple and
allocation-light:

- nodes live in parallel arrays (``var``, ``low``, ``high``) indexed by an
  integer id; ids 0 and 1 are the terminals,
- a unique table guarantees canonicity,
- binary operations go through a memoised :meth:`BddManager.apply`,
- probabilities are computed by one memoised bottom-up pass.

There is no garbage collection or dynamic reordering: managers are cheap,
callers build one per query batch and drop it.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import LogicError

#: Terminal node ids.
ZERO = 0
ONE = 1

_OP_AND = "and"
_OP_OR = "or"
_OP_XOR = "xor"

#: Safety valve against runaway BDD growth on pathological circuits.
DEFAULT_NODE_LIMIT = 2_000_000


class BddSizeError(LogicError):
    """The BDD exceeded the manager's node limit."""


class BddManager:
    """ROBDD manager over a fixed variable order ``0 .. nvars-1``."""

    def __init__(self, nvars: int, node_limit: int = DEFAULT_NODE_LIMIT):
        if nvars < 0:
            raise LogicError("nvars must be non-negative")
        self.nvars = nvars
        self.node_limit = node_limit
        # Terminals occupy slots 0 and 1; ``var`` = nvars acts as +infinity
        # so terminals sort below every decision node.
        self._var: list[int] = [nvars, nvars]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._not_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def var_of(self, node: int) -> int:
        return self._var[node]

    def low_of(self, node: int) -> int:
        return self._low[node]

    def high_of(self, node: int) -> int:
        return self._high[node]

    def num_nodes(self) -> int:
        return len(self._var)

    def mk(self, var: int, low: int, high: int) -> int:
        """Get-or-create the canonical node (var, low, high)."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if len(self._var) >= self.node_limit:
            raise BddSizeError(
                f"BDD node limit of {self.node_limit} exceeded"
            )
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def variable(self, var: int) -> int:
        """BDD of the projection function ``x_var``."""
        if not 0 <= var < self.nvars:
            raise LogicError(f"variable {var} out of range")
        return self.mk(var, ZERO, ONE)

    def constant(self, value: bool) -> int:
        return ONE if value else ZERO

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def apply_and(self, f: int, g: int) -> int:
        return self._apply(_OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self._apply(_OP_OR, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self._apply(_OP_XOR, f, g)

    def apply_not(self, f: int) -> int:
        cached = self._not_cache.get(f)
        if cached is not None:
            return cached
        if f == ZERO:
            result = ONE
        elif f == ONE:
            result = ZERO
        else:
            result = self.mk(
                self._var[f],
                self.apply_not(self._low[f]),
                self.apply_not(self._high[f]),
            )
        self._not_cache[f] = result
        return result

    def _terminal_case(self, op: str, f: int, g: int) -> int | None:
        if op == _OP_AND:
            if f == ZERO or g == ZERO:
                return ZERO
            if f == ONE:
                return g
            if g == ONE:
                return f
            if f == g:
                return f
        elif op == _OP_OR:
            if f == ONE or g == ONE:
                return ONE
            if f == ZERO:
                return g
            if g == ZERO:
                return f
            if f == g:
                return f
        else:  # XOR
            if f == ZERO:
                return g
            if g == ZERO:
                return f
            if f == g:
                return ZERO
            if f == ONE:
                return self.apply_not(g)
            if g == ONE:
                return self.apply_not(f)
        return None

    def _apply(self, op: str, f: int, g: int) -> int:
        terminal = self._terminal_case(op, f, g)
        if terminal is not None:
            return terminal
        if op != _OP_AND and op != _OP_OR and op != _OP_XOR:
            raise LogicError(f"unknown BDD operation {op!r}")
        # Commutative ops: normalise the cache key.
        key = (op, f, g) if f <= g else (op, g, f)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var_f, var_g = self._var[f], self._var[g]
        top = min(var_f, var_g)
        f0, f1 = (self._low[f], self._high[f]) if var_f == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if var_g == top else (g, g)
        result = self.mk(
            top, self._apply(op, f0, g0), self._apply(op, f1, g1)
        )
        self._apply_cache[key] = result
        return result

    def apply_ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + !f·h`` built from the binary ops."""
        return self.apply_or(
            self.apply_and(f, g), self.apply_and(self.apply_not(f), h)
        )

    # ------------------------------------------------------------------
    # Evaluation and analysis
    # ------------------------------------------------------------------
    def evaluate(self, node: int, inputs: Sequence[int]) -> int:
        while node > ONE:
            var = self._var[node]
            node = self._high[node] if inputs[var] else self._low[node]
        return node

    def probability(
        self, node: int, input_probs: Sequence[float]
    ) -> float:
        """Exact probability that the function is 1.

        ``input_probs[v]`` is P(x_v = 1); inputs are assumed independent.
        One memoised bottom-up pass, linear in BDD size.
        """
        if len(input_probs) != self.nvars:
            raise LogicError("one probability per variable required")
        memo: dict[int, float] = {ZERO: 0.0, ONE: 1.0}
        stack = [node]
        while stack:
            n = stack[-1]
            if n in memo:
                stack.pop()
                continue
            low, high = self._low[n], self._high[n]
            missing = [c for c in (low, high) if c not in memo]
            if missing:
                stack.extend(missing)
                continue
            p = input_probs[self._var[n]]
            memo[n] = (1.0 - p) * memo[low] + p * memo[high]
            stack.pop()
        return memo[node]

    def count_minterms(self, node: int) -> int:
        """Number of satisfying assignments over the full variable set."""
        memo: dict[int, int] = {}

        def solve(n: int) -> int:
            # Counts assignments of variables var(n) .. nvars-1 (terminals
            # have var = nvars, so they count a single empty assignment).
            if n == ZERO:
                return 0
            if n == ONE:
                return 1
            cached = memo.get(n)
            if cached is not None:
                return cached
            var = self._var[n]
            low, high = self._low[n], self._high[n]
            count = (solve(low) << (self._var[low] - var - 1)) + (
                solve(high) << (self._var[high] - var - 1)
            )
            memo[n] = count
            return count

        # Variables above the root are free.
        return solve(node) << self._var[node]

    def support(self, node: int) -> tuple[int, ...]:
        """Variables the function depends on."""
        seen: set[int] = set()
        visited: set[int] = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n <= ONE or n in visited:
                continue
            visited.add(n)
            seen.add(self._var[n])
            stack.append(self._low[n])
            stack.append(self._high[n])
        return tuple(sorted(seen))
