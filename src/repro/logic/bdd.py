"""A compact reduced ordered BDD (ROBDD) package.

Used for *exact* signal-probability computation on small and medium circuits
(:mod:`repro.power.probability`).  The design is deliberately simple and
allocation-light:

- nodes live in parallel arrays (``var``, ``low``, ``high``) indexed by an
  integer id; ids 0 and 1 are the terminals,
- a unique table guarantees canonicity,
- binary operations go through a memoised :meth:`BddManager.apply`,
- probabilities are computed by one memoised bottom-up pass.

There is no garbage collection or dynamic reordering: managers are cheap,
callers build one per query batch and drop it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import LogicError

#: Terminal node ids.
ZERO = 0
ONE = 1

_OP_AND = "and"
_OP_OR = "or"
_OP_XOR = "xor"

#: Safety valve against runaway BDD growth on pathological circuits.
DEFAULT_NODE_LIMIT = 2_000_000


class BddSizeError(LogicError):
    """The BDD exceeded the manager's node limit."""


class BddManager:
    """ROBDD manager over a fixed variable order ``0 .. nvars-1``."""

    def __init__(self, nvars: int, node_limit: int = DEFAULT_NODE_LIMIT):
        if nvars < 0:
            raise LogicError("nvars must be non-negative")
        self.nvars = nvars
        self.node_limit = node_limit
        # Terminals occupy slots 0 and 1; ``var`` = nvars acts as +infinity
        # so terminals sort below every decision node.
        self._var: list[int] = [nvars, nvars]
        self._low: list[int] = [0, 1]
        self._high: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._not_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def var_of(self, node: int) -> int:
        return self._var[node]

    def low_of(self, node: int) -> int:
        return self._low[node]

    def high_of(self, node: int) -> int:
        return self._high[node]

    def num_nodes(self) -> int:
        return len(self._var)

    def mk(self, var: int, low: int, high: int) -> int:
        """Get-or-create the canonical node (var, low, high)."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if len(self._var) >= self.node_limit:
            raise BddSizeError(
                f"BDD node limit of {self.node_limit} exceeded"
            )
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def variable(self, var: int) -> int:
        """BDD of the projection function ``x_var``."""
        if not 0 <= var < self.nvars:
            raise LogicError(f"variable {var} out of range")
        return self.mk(var, ZERO, ONE)

    def constant(self, value: bool) -> int:
        return ONE if value else ZERO

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def apply_and(self, f: int, g: int) -> int:
        return self._apply(_OP_AND, f, g)

    def apply_or(self, f: int, g: int) -> int:
        return self._apply(_OP_OR, f, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self._apply(_OP_XOR, f, g)

    def apply_not(self, f: int) -> int:
        cached = self._not_cache.get(f)
        if cached is not None:
            return cached
        if f == ZERO:
            result = ONE
        elif f == ONE:
            result = ZERO
        else:
            result = self.mk(
                self._var[f],
                self.apply_not(self._low[f]),
                self.apply_not(self._high[f]),
            )
        self._not_cache[f] = result
        return result

    def _terminal_case(self, op: str, f: int, g: int) -> int | None:
        if op == _OP_AND:
            if f == ZERO or g == ZERO:
                return ZERO
            if f == ONE:
                return g
            if g == ONE:
                return f
            if f == g:
                return f
        elif op == _OP_OR:
            if f == ONE or g == ONE:
                return ONE
            if f == ZERO:
                return g
            if g == ZERO:
                return f
            if f == g:
                return f
        else:  # XOR
            if f == ZERO:
                return g
            if g == ZERO:
                return f
            if f == g:
                return ZERO
            if f == ONE:
                return self.apply_not(g)
            if g == ONE:
                return self.apply_not(f)
        return None

    def _apply(self, op: str, f: int, g: int) -> int:
        terminal = self._terminal_case(op, f, g)
        if terminal is not None:
            return terminal
        if op != _OP_AND and op != _OP_OR and op != _OP_XOR:
            raise LogicError(f"unknown BDD operation {op!r}")
        # Commutative ops: normalise the cache key.
        key = (op, f, g) if f <= g else (op, g, f)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        var_f, var_g = self._var[f], self._var[g]
        top = min(var_f, var_g)
        f0, f1 = (self._low[f], self._high[f]) if var_f == top else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if var_g == top else (g, g)
        result = self.mk(
            top, self._apply(op, f0, g0), self._apply(op, f1, g1)
        )
        self._apply_cache[key] = result
        return result

    def apply_ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + !f·h`` built from the binary ops."""
        return self.apply_or(
            self.apply_and(f, g), self.apply_and(self.apply_not(f), h)
        )

    # ------------------------------------------------------------------
    # Evaluation and analysis
    # ------------------------------------------------------------------
    def evaluate(self, node: int, inputs: Sequence[int]) -> int:
        while node > ONE:
            var = self._var[node]
            node = self._high[node] if inputs[var] else self._low[node]
        return node

    def probability(
        self, node: int, input_probs: Sequence[float]
    ) -> float:
        """Exact probability that the function is 1.

        ``input_probs[v]`` is P(x_v = 1); inputs are assumed independent.
        One memoised bottom-up pass, linear in BDD size.
        """
        if len(input_probs) != self.nvars:
            raise LogicError("one probability per variable required")
        memo: dict[int, float] = {ZERO: 0.0, ONE: 1.0}
        stack = [node]
        while stack:
            n = stack[-1]
            if n in memo:
                stack.pop()
                continue
            low, high = self._low[n], self._high[n]
            missing = [c for c in (low, high) if c not in memo]
            if missing:
                stack.extend(missing)
                continue
            p = input_probs[self._var[n]]
            memo[n] = (1.0 - p) * memo[low] + p * memo[high]
            stack.pop()
        return memo[node]

    def count_minterms(self, node: int) -> int:
        """Number of satisfying assignments over the full variable set."""
        memo: dict[int, int] = {}

        def solve(n: int) -> int:
            # Counts assignments of variables var(n) .. nvars-1 (terminals
            # have var = nvars, so they count a single empty assignment).
            if n == ZERO:
                return 0
            if n == ONE:
                return 1
            cached = memo.get(n)
            if cached is not None:
                return cached
            var = self._var[n]
            low, high = self._low[n], self._high[n]
            count = (solve(low) << (self._var[low] - var - 1)) + (
                solve(high) << (self._var[high] - var - 1)
            )
            memo[n] = count
            return count

        # Variables above the root are free.
        return solve(node) << self._var[node]

    def support(self, node: int) -> tuple[int, ...]:
        """Variables the function depends on."""
        seen: set[int] = set()
        visited: set[int] = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n <= ONE or n in visited:
                continue
            visited.add(n)
            seen.add(self._var[n])
            stack.append(self._low[n])
            stack.append(self._high[n])
        return tuple(sorted(seen))

    def reachable(self, roots: Sequence[int]) -> set[int]:
        """Decision nodes reachable from ``roots`` (terminals excluded)."""
        visited: set[int] = set()
        stack = list(roots)
        while stack:
            n = stack.pop()
            if n <= ONE or n in visited:
                continue
            visited.add(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        return visited

    def transfer(
        self,
        roots: Sequence[int],
        target: "BddManager",
        var_map: Sequence[int] | None = None,
    ) -> list[int]:
        """Copy the functions rooted at ``roots`` into another manager.

        ``var_map[old] = new`` renames variable ``old`` of this manager to
        variable ``new`` of ``target`` (identity when omitted).  The copy
        goes through ``target``'s own ``ite``, so the result is a proper
        ROBDD under *target's* variable order even when the map shuffles
        levels — this is the rebuild primitive behind
        :func:`sift_weighted`.
        """
        if var_map is None:
            var_map = list(range(self.nvars))
        memo: dict[int, int] = {ZERO: ZERO, ONE: ONE}
        order = sorted(
            self.reachable(roots), key=lambda n: self._var[n], reverse=True
        )
        for n in order:
            x = target.variable(var_map[self._var[n]])
            memo[n] = target.apply_ite(
                x, memo[self._high[n]], memo[self._low[n]]
            )
        return [memo[r] for r in roots]


# ----------------------------------------------------------------------
# Probability-weighted variable reordering (rebuild-based sifting)
# ----------------------------------------------------------------------
#
# Following the low-power BDD synthesis line of work, a decision node on
# variable v is charged the switching activity of its control signal,
# w_v = 2 * p_v * (1 - p_v): a MUX decomposition of the BDD spends one
# multiplexer per node, and that multiplexer's select input toggles with
# exactly that activity.  Classic sifting minimises node count; weighting
# the count by w_v instead steers high-activity variables toward levels
# where they label few nodes.  With all probabilities at 0.5 every weight
# is 0.5 and this degenerates to plain size-driven sifting.
#
# Reordering is implemented by *rebuild*, not in-place level swaps: each
# candidate position of the sifted variable is one :meth:`BddManager.transfer`
# into a fresh manager under the candidate order.  That is asymptotically
# slower than adjacent swaps but cannot break canonicity, and the
# ``max_vars``/``growth_limit`` bounds keep it tractable at the sizes the
# resynthesis pass feeds it.

#: Small tie-break so equal weighted cost prefers the smaller BDD.
_SIZE_EPSILON = 1e-6


def activity_weights(input_probs: Sequence[float]) -> list[float]:
    """Per-variable switching activity ``2 * p * (1 - p)``."""
    return [2.0 * p * (1.0 - p) for p in input_probs]


def weighted_node_cost(
    manager: BddManager, roots: Sequence[int], weights: Sequence[float]
) -> float:
    """Activity-weighted node count of the shared BDD under ``roots``.

    ``weights[v]`` is indexed by the *manager's* variable ids.  Includes
    an ``_SIZE_EPSILON`` per-node term so orders with identical weighted
    cost (e.g. every input quiet) still rank by plain size.
    """
    total = 0.0
    for n in manager.reachable(roots):
        total += weights[manager.var_of(n)] + _SIZE_EPSILON
    return total


@dataclass
class ReorderResult:
    """Outcome of :func:`sift_weighted`.

    ``order[level] = original_var``: the variable of the input manager
    that now sits at ``level`` in ``manager``.  ``roots`` are the copies
    of the input roots inside the reordered manager.
    """

    manager: BddManager
    roots: list[int]
    order: tuple[int, ...]
    initial_cost: float
    final_cost: float

    def level_of(self, original_var: int) -> int:
        return self.order.index(original_var)


def _rebuild(
    manager: BddManager,
    roots: Sequence[int],
    order: Sequence[int],
    node_limit: int,
) -> tuple[BddManager, list[int]]:
    """Copy ``roots`` into a fresh manager whose level *l* holds
    ``order[l]``; raises :class:`BddSizeError` past ``node_limit``."""
    target = BddManager(manager.nvars, node_limit=node_limit)
    var_map = [0] * manager.nvars
    for level, original in enumerate(order):
        var_map[original] = level
    return target, manager.transfer(roots, target, var_map)


def sift_weighted(
    manager: BddManager,
    roots: Sequence[int],
    input_probs: Sequence[float] | None = None,
    max_vars: int | None = 8,
    growth_limit: float = 8.0,
) -> ReorderResult:
    """Sift variables to minimise the activity-weighted node count.

    Each of the ``max_vars`` most expensive variables (by current
    weighted contribution; ``None`` sifts all) is tried at every level;
    the best position is kept before moving to the next variable.  Every
    candidate order is evaluated by rebuilding the shared BDD from
    scratch, with a per-rebuild node budget of ``growth_limit`` times
    the current size — candidates that blow past it are discarded, so a
    pathological order cannot stall the pass.  Fully deterministic:
    ties keep the earlier position / lower variable id.
    """
    nvars = manager.nvars
    if input_probs is None:
        input_probs = [0.5] * nvars
    if len(input_probs) != nvars:
        raise LogicError("one probability per variable required")
    weights = activity_weights(input_probs)

    order = list(range(nvars))
    initial_cost = weighted_node_cost(manager, roots, weights)
    cost = initial_cost
    live_size = len(manager.reachable(roots))
    # Every candidate order is rebuilt from the *input* manager, whose
    # variable ids are the original ones each ``order`` speaks in —
    # transferring out of an already-reordered manager would misread its
    # level-indexed variables as original ids.
    best_build: tuple[BddManager, list[int]] | None = None

    # Rank original variables by what they currently cost us.
    contribution = [0.0] * nvars
    for n in manager.reachable(roots):
        contribution[manager.var_of(n)] += (
            weights[manager.var_of(n)] + _SIZE_EPSILON
        )
    candidates = sorted(
        range(nvars), key=lambda v: (-contribution[v], v)
    )
    candidates = [v for v in candidates if contribution[v] > 0.0]
    if max_vars is not None:
        candidates = candidates[:max_vars]

    for var in candidates:
        home = order.index(var)
        best_pos, best_cost = home, cost
        var_build: tuple[BddManager, list[int]] | None = None
        # The rebuild budget covers live nodes plus the garbage the
        # target's own ite calls leave behind, hence the slack factor.
        budget = int(max(live_size, 64) * growth_limit * 4) + 2
        for pos in range(nvars):
            if pos == home:
                continue
            trial = order.copy()
            trial.remove(var)
            trial.insert(pos, var)
            try:
                built, built_roots = _rebuild(manager, roots, trial, budget)
            except BddSizeError:
                continue
            # Weights are indexed by ORIGINAL variable: remap per level.
            level_weights = [weights[v] for v in trial]
            trial_cost = weighted_node_cost(
                built, built_roots, level_weights
            )
            if trial_cost < best_cost:
                best_pos, best_cost = pos, trial_cost
                var_build = (built, built_roots)
        if var_build is not None and best_pos != home:
            order.remove(var)
            order.insert(best_pos, var)
            cost = best_cost
            best_build = var_build
            live_size = len(var_build[0].reachable(var_build[1]))

    if best_build is None:
        # No move helped: still hand back a copy so callers can drop the
        # input manager uniformly.
        best_build = _rebuild(manager, roots, order, manager.node_limit)
    return ReorderResult(
        manager=best_build[0],
        roots=best_build[1],
        order=tuple(order),
        initial_cost=initial_cost,
        final_cost=cost,
    )
