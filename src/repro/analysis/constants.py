"""Ternary constant propagation.

Forward analysis over :class:`~repro.analysis.lattice.TernaryLattice`:
primary inputs are ``TOP`` (free), tie cells are their constant, and a
gate is a constant when *every* completion of its unknown fanins
produces the same output bit — evaluated by enumerating the cell's
truth table over the free inputs (cells are tiny; at most ``2**nvars``
probes with an early exit once both output values appear).

The dataflow pass alone misses constants that need Boolean reasoning
across reconvergent paths (``AND(x, INV(x))`` is 0, but both fanins are
``TOP``).  The suite closes that gap with the second tier: any gate
whose simulation signature is all-zeros or all-ones — and that dataflow
did not already prove — is handed to the SAT oracle, and only
UNSAT-confirmed candidates become facts.  Both tiers are sound;
dataflow facts carry ``proof="dataflow"``, oracle facts ``proof="sat"``.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.netlist.netlist import Gate

from repro.analysis.engine import DataflowAnalysis
from repro.analysis.lattice import BOTTOM, TOP, TernaryLattice


class ConstantAnalysis(DataflowAnalysis):
    """Forward ternary constant propagation."""

    name = "constants"
    direction = "forward"
    lattice = TernaryLattice()

    def transfer(self, gate: Gate, values: Mapping[str, Hashable]) -> Hashable:
        if gate.is_input:
            return TOP
        cell = gate.cell
        nvars = cell.function.nvars
        if nvars == 0:
            return cell.function.bits & 1
        bits = cell.function.bits
        # Ternary fanin vector: 0/1 when proven, None when free.  An
        # unresolved (bottom) fanin reads as free too — enlarging the
        # completion set only weakens the claim, never unsounds it.
        pins = []
        for fanin in gate.fanins:
            value = values.get(fanin.name, BOTTOM)
            pins.append(value if value in (0, 1) else None)
        seen0 = False
        seen1 = False
        for assignment in range(1 << nvars):
            consistent = True
            for var, pin in enumerate(pins):
                if pin is not None and ((assignment >> var) & 1) != pin:
                    consistent = False
                    break
            if not consistent:
                continue
            if (bits >> assignment) & 1:
                seen1 = True
            else:
                seen0 = True
            if seen0 and seen1:
                return TOP
        return 1 if seen1 else 0
