"""Static analysis: a fixed-point dataflow engine plus builtin analyses.

The package has three layers:

- :mod:`repro.analysis.lattice` / :mod:`repro.analysis.engine` — the
  reusable machinery: explicit lattices (bottom / join / widening) and a
  worklist solver prioritised by the topological levels the packed
  kernels already compute, with incremental re-analysis after edits via
  the same dirty-region protocol the observability maps use.
- the builtin analyses — ternary constant propagation
  (:mod:`~repro.analysis.constants`), a static observability
  approximation (:mod:`~repro.analysis.observability`), phase/parity
  tracking through inverter chains (:mod:`~repro.analysis.phase`), and
  functional-equivalence classes (:mod:`~repro.analysis.equivalence`).
  Each follows the two-tier recipe of "Simulation-Guided Boolean
  Resubstitution": cheap approximate facts (dataflow / simulation
  signatures) filtered by SAT confirmation, so every emitted fact is
  *proven*, not heuristic.
- :class:`~repro.analysis.suite.AnalysisSuite` — the facade consumers
  use: it owns the shared simulation state and SAT oracle, caches the
  fact base per structural netlist state, and accepts
  ``update_after_edit`` dirty sets from the optimizer loop.

Soundness contract: every fact in a :class:`~repro.analysis.facts.
NetlistFacts` holds for *all* input assignments of the netlist it was
computed on.  ``powder analyze --check-soundness`` (and the Hypothesis
suite in ``tests/analysis``) re-derive each fact from exhaustive
simulation or a fresh SAT instance.
"""

from repro.analysis.engine import DataflowAnalysis, DataflowEngine
from repro.analysis.facts import (
    ConstantFact,
    EquivClass,
    NetlistFacts,
    PhaseFact,
    UnobservableFact,
)
from repro.analysis.lattice import FlatLattice, Lattice, TernaryLattice
from repro.analysis.suite import AnalysisSuite

__all__ = [
    "AnalysisSuite",
    "ConstantFact",
    "DataflowAnalysis",
    "DataflowEngine",
    "EquivClass",
    "FlatLattice",
    "Lattice",
    "NetlistFacts",
    "PhaseFact",
    "TernaryLattice",
    "UnobservableFact",
]
