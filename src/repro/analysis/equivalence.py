"""Functional-equivalence classes over netlist signals.

The two-tier recipe from "Simulation-Guided Boolean Resubstitution":

1. **Seeding.**  Every signal's packed simulation signature is
   canonicalised by phase (complemented when its first bit is 1, so a
   signal and its inverse land in the same bucket) and bucketed by the
   canonical bytes.  Signals in different buckets are *proven* distinct
   by the simulation witness; only intra-bucket pairs are candidates.
   Structural duplicates — same cell, same fanin tuple — are promoted
   immediately (``proof="structural"``): identical functions of
   identical inputs.
2. **Confirmation.**  Every remaining candidate is checked against its
   bucket's existing class representatives with the incremental SAT
   oracle (an XOR difference variable per pair; UNSAT proves the pair
   equal or antiphase).  A refuted or budget-limited candidate starts
   its own class — UNKNOWN can only lose a merge, never create a wrong
   one.

The result is a partition into :class:`~repro.analysis.facts.EquivClass`
entries: a representative (the lexicographically smallest member, for
deterministic output) plus each member's parity relative to it.
Primary inputs participate (``BUF(x)`` classes with ``x``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.netlist.netlist import Netlist
from repro.netlist.traverse import topological_order

from repro.analysis.facts import EquivClass
from repro.analysis.oracle import FactOracle

_ONE = np.uint64(1)
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class _Class:
    __slots__ = ("rep", "members", "proofs")

    def __init__(self, rep: str):
        self.rep = rep
        #: member name -> parity relative to ``rep``.
        self.members: Dict[str, int] = {rep: 0}
        #: member name -> proof kind ("structural" | "sat").
        self.proofs: Dict[str, str] = {}


def find_equivalences(
    netlist: Netlist,
    values: Dict[str, np.ndarray],
    oracle: Optional[FactOracle],
) -> List[EquivClass]:
    """Partition signals into proven equivalence classes.

    ``values`` is the shared simulation state (name -> packed words);
    ``oracle`` may be ``None``, in which case only structural duplicates
    merge (signature buckets alone are never trusted).
    """
    buckets: Dict[bytes, List[Tuple[str, int]]] = {}
    structural: Dict[Tuple[str, Tuple[str, ...]], str] = {}
    structural_twin: Dict[str, str] = {}
    for gate in topological_order(netlist):
        word = values.get(gate.name)
        if word is None:
            continue
        phase = int(word[0] & _ONE)
        canon = (word ^ _ALL_ONES).tobytes() if phase else word.tobytes()
        buckets.setdefault(canon, []).append((gate.name, phase))
        if not gate.is_input:
            key = (gate.cell.name, tuple(f.name for f in gate.fanins))
            first = structural.get(key)
            if first is None:
                structural[key] = gate.name
            else:
                structural_twin[gate.name] = first

    classes: List[EquivClass] = []
    for canon in sorted(buckets):
        members = buckets[canon]
        if len(members) < 2:
            continue
        groups: List[_Class] = []
        index: Dict[str, _Class] = {}
        for name, phase in members:
            placed = None
            twin = structural_twin.get(name)
            if twin is not None and twin in index:
                placed = index[twin]
                parity = placed.members[twin]  # same function as twin
                placed.members[name] = parity
                placed.proofs[name] = "structural"
            elif oracle is not None:
                for group in groups:
                    rep_phase = index_phase(values, group.rep)
                    parity = phase ^ rep_phase
                    verdict = oracle.prove_equivalent(
                        name, group.rep, parity
                    )
                    if verdict is True:
                        group.members[name] = parity
                        group.proofs[name] = "sat"
                        placed = group
                        break
            if placed is None:
                placed = _Class(name)
                groups.append(placed)
            index[name] = placed
        for group in groups:
            if len(group.members) < 2:
                continue
            rep = min(group.members)
            rep_parity = group.members[rep]
            classes.append(
                EquivClass(
                    representative=rep,
                    members={
                        name: parity ^ rep_parity
                        for name, parity in group.members.items()
                    },
                    proofs=dict(group.proofs),
                )
            )
    classes.sort(key=lambda cls: cls.representative)
    return classes


def index_phase(values: Dict[str, np.ndarray], name: str) -> int:
    return int(values[name][0] & _ONE)
