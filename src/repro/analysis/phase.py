"""Phase/parity tracking through buffer and inverter chains.

Forward analysis whose value is ``(root, parity, depth)``: the nearest
non-buffer/non-inverter ancestor driving this signal, whether the
signal equals that root (parity 0) or its complement (parity 1), and
how many BUF/INV hops separate them.  Every signal that is not itself a
buffer or inverter is its own root at parity 0 / depth 0, so the facts
are sound *by construction* — a BUF output equals its fanin, an INV
output equals its fanin's complement, and composition telescopes the
chain (ALGORITHMS.md §18).

Consumers: the S004 lint rule flags chains of depth >= 2 (a superset
generalisation of Q003's adjacent double inverter), and the optimizer's
equivalence classes absorb the parity so an inverter chain lands in the
same class as its root.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Tuple

from repro.netlist.netlist import Gate

from repro.analysis.engine import DataflowAnalysis
from repro.analysis.lattice import FlatLattice

#: (root name, parity relative to the root, BUF/INV hops to the root)
PhaseValue = Tuple[str, int, int]


class PhaseAnalysis(DataflowAnalysis):
    """Forward root/parity propagation through BUF/INV cells."""

    name = "phase"
    direction = "forward"
    lattice = FlatLattice()

    def transfer(self, gate: Gate, values: Mapping[str, Hashable]) -> Hashable:
        if gate.is_input or gate.cell is None:
            return (gate.name, 0, 0)
        cell = gate.cell
        if not (cell.is_buffer() or cell.is_inverter()):
            return (gate.name, 0, 0)
        fanin = gate.fanins[0]
        value = values.get(fanin.name)
        if not isinstance(value, tuple):
            # Unresolved fanin (mid-iteration): the fanin itself is a
            # sound root for now; the worklist revisits once it lands.
            value = (fanin.name, 0, 0)
        root, parity, depth = value
        if cell.is_inverter():
            parity ^= 1
        return (root, parity, depth + 1)
