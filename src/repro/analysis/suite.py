"""The analysis facade consumers hold: facts + incremental upkeep.

An :class:`AnalysisSuite` binds one netlist to the dataflow engine, a
shared packed simulation state (the signature seed), and the SAT
oracle, and exposes one product — :attr:`facts`, the current
:class:`~repro.analysis.facts.NetlistFacts` — under the same
structural-state protocol the triage checker and packed views use: the
identity of ``topological_order(netlist)`` names the state, so facts
are recomputed exactly when the structure changed.

Between refreshes the optimizer reports edits via
:meth:`update_after_edit` (the observability-maps dirty contract).  The
next ``facts`` access then repairs the dataflow value maps
incrementally — re-seeding the engine's worklist with the dirty region
instead of starting from bottom — and re-runs only the cheap seeded
tiers plus SAT confirmation on the (typically tiny) candidate sets.
The oracle itself is rebuilt per state: a proof against the old
structure says nothing about the new one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.netlist.simulate import SimState, random_patterns
from repro.netlist.traverse import topological_order

from repro.analysis.constants import ConstantAnalysis
from repro.analysis.engine import DataflowEngine
from repro.analysis.equivalence import find_equivalences
from repro.analysis.facts import (
    ConstantFact,
    NetlistFacts,
    PhaseFact,
    UnobservableFact,
)
from repro.analysis.observability import ObservabilityAnalysis, po_reachable
from repro.analysis.oracle import FactOracle
from repro.analysis.phase import PhaseAnalysis

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class AnalysisSuite:
    """Whole-netlist static facts with incremental re-analysis."""

    def __init__(
        self,
        netlist: Netlist,
        num_patterns: int = 256,
        seed: int = 11,
        conflict_limit: int = 50_000,
        use_sat: bool = True,
    ):
        self.netlist = netlist
        self.num_patterns = num_patterns
        self.seed = seed
        self.use_sat = use_sat
        self.conflict_limit = conflict_limit
        self.engine = DataflowEngine(netlist)
        self.oracle: Optional[FactOracle] = None
        #: refresh tallies: full vs incremental recomputations.
        self.counters: Dict[str, int] = {"full": 0, "incremental": 0}
        self._constant_analysis = ConstantAnalysis()
        self._phase_analysis = PhaseAnalysis()
        self._sim: Optional[SimState] = None
        self._state_key: Optional[list] = None
        self._pending: Dict[str, None] = {}
        self._facts: Optional[NetlistFacts] = None
        self._const_values: Dict[str, object] = {}
        self._phase_values: Dict[str, object] = {}
        self._obs_values: Dict[str, object] = {}
        self._const_map: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # The dirty-region protocol (mirrors ObservabilityMaps)
    # ------------------------------------------------------------------
    def update_after_edit(self, dirty_gates: Iterable[str]) -> None:
        """Report gates whose cell/fanins/fanouts changed since the last
        refresh.  Cheap: work happens on the next ``facts`` access."""
        for name in dirty_gates:
            self._pending[name] = None

    # ------------------------------------------------------------------
    @property
    def facts(self) -> NetlistFacts:
        return self.refresh()

    def refresh(self, force: bool = False) -> NetlistFacts:
        key = topological_order(self.netlist)
        if not force and self._facts is not None and key is self._state_key:
            return self._facts
        netlist = self.netlist
        gates = netlist.gates
        incremental = (
            not force
            and self._facts is not None
            and self._sim is not None
            and bool(self._pending)
        )
        if incremental:
            self.counters["incremental"] += 1
            live_dirty = [n for n in self._pending if n in gates]
            self._sim.resimulate_fanout([gates[n] for n in live_dirty])
            self.engine.update_after_edit(
                self._constant_analysis, self._const_values, live_dirty
            )
            self.engine.update_after_edit(
                self._phase_analysis, self._phase_values, live_dirty
            )
        else:
            self.counters["full"] += 1
            self._sim = SimState(
                netlist,
                random_patterns(
                    netlist.input_names, self.num_patterns, self.seed
                ),
            )
            self._const_values = self.engine.run(self._constant_analysis)
            self._phase_values = self.engine.run(self._phase_analysis)
            live_dirty = []
        self.oracle = (
            FactOracle(netlist, self.conflict_limit) if self.use_sat else None
        )

        const_map, constants = self._constant_facts()
        obs_dirty = set(live_dirty)
        # The observability transfer reads proven constants at sink side
        # pins; every sink of a gate whose constant status changed must
        # be re-transferred along with the structural dirty region.
        for name in set(self._const_map) | set(const_map):
            if self._const_map.get(name) != const_map.get(name):
                self._mark_const_dirty(name, obs_dirty)
        obs_analysis = ObservabilityAnalysis(const_map)
        if incremental:
            self.engine.update_after_edit(
                obs_analysis, self._obs_values, obs_dirty
            )
        else:
            self._obs_values = self.engine.run(obs_analysis)

        facts = NetlistFacts(netlist_name=netlist.name)
        facts.constants = constants
        facts.unobservables = self._unobservable_facts()
        facts.phases = self._phase_facts()
        facts.equivalences = find_equivalences(
            netlist, self._sim.values, self.oracle
        )
        self._const_map = const_map
        self._facts = facts
        self._state_key = key
        self._pending.clear()
        return facts

    # ------------------------------------------------------------------
    # Fact assembly
    # ------------------------------------------------------------------
    def _mark_const_dirty(self, name: str, obs_dirty: set) -> None:
        gate = self.netlist.gates.get(name)
        if gate is None:
            return
        obs_dirty.add(name)
        obs_dirty.update(sink.name for sink, _pin in gate.fanouts)

    def _constant_facts(self):
        const_map: Dict[str, int] = {}
        constants: list = []
        sim = self._sim
        oracle = self.oracle
        for gate in topological_order(self.netlist):
            name = gate.name
            value = self._const_values.get(name)
            if value in (0, 1):
                const_map[name] = int(value)  # type: ignore[arg-type]
                constants.append(ConstantFact(name, int(value), "dataflow"))
                continue
            if oracle is None or gate.is_input:
                continue
            # Second tier: a flat simulation signature nominates the
            # gate; only an UNSAT answer promotes it to a fact.
            word = sim.values.get(name) if sim is not None else None
            if word is None:
                continue
            if not word.any():
                candidate = 0
            elif bool((word == _ALL_ONES).all()):
                candidate = 1
            else:
                continue
            if oracle.prove_constant(name, candidate) is True:
                const_map[name] = candidate
                constants.append(ConstantFact(name, candidate, "sat"))
        return const_map, constants

    def _unobservable_facts(self):
        netlist = self.netlist
        reachable = po_reachable(netlist)
        oracle = self.oracle
        unobservables = []
        for name in sorted(netlist.gates):
            if name not in reachable:
                unobservables.append(
                    UnobservableFact(name, "dead", "structural")
                )
                continue
            if self._obs_values.get(name) is not False or oracle is None:
                continue
            if oracle.prove_unobservable(name) is True:
                unobservables.append(UnobservableFact(name, "blocked", "sat"))
        return unobservables

    def _phase_facts(self):
        phases = []
        for name in sorted(self.netlist.gates):
            value = self._phase_values.get(name)
            if isinstance(value, tuple) and value[2] >= 1:
                root, parity, depth = value
                phases.append(PhaseFact(name, root, parity, depth))
        return phases
