"""Static observability don't-care approximation.

Backward analysis computing, per gate, whether any path to a primary
output can still propagate a value change — ``True`` ("may be
observable", the sound default) or ``False`` ("statically blocked").
A gate driving a PO is observable; otherwise it is observable iff some
fanout edge is, and an edge into sink pin ``p`` is blocked when the
sink's function is insensitive to ``p`` once the *proven-constant*
sibling pins are fixed at their constants (for every completion of the
remaining free pins).  Proven constants come from the constant analysis
and are parameters of the transfer function, not part of the lattice.

**The dataflow verdict is a candidate, not a fact.**  "Unobservable"
facts promise that flipping the gate's output never changes any PO —
but a proven-constant side input that lies in the gate's own transitive
fanout can change *under the flip*: with ``s = OR(g, INV(g))``, ``s``
is constant 1 and blocks nothing usefully, yet flipping ``g`` rewrites
``s`` itself.  The suite therefore promotes a blocked candidate to a
fact only after the SAT flip-miter (the PR-6 cone-duplication encoding
with the gate's literal inverted) returns UNSAT — except for **dead
cones**, gates with no structural path to any PO, where the flip
provably reaches nothing and the fact is structural
(ALGORITHMS.md §18).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Set

from repro.library.cell import Cell
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import transitive_fanin

from repro.analysis.engine import DataflowAnalysis
from repro.analysis.lattice import FlatLattice


def pin_blocked(cell: Cell, pin: int, fixed: Mapping[int, int]) -> bool:
    """Is ``cell``'s output insensitive to ``pin`` given ``fixed`` pins?

    ``fixed`` maps pin index -> proven constant.  Checks every
    completion of the unfixed pins; sensitivity anywhere means the edge
    may propagate.
    """
    bits = cell.function.bits
    nvars = cell.function.nvars
    for assignment in range(1 << nvars):
        if (assignment >> pin) & 1:
            continue
        consistent = True
        for index, value in fixed.items():
            if index != pin and ((assignment >> index) & 1) != value:
                consistent = False
                break
        if not consistent:
            continue
        flipped = assignment | (1 << pin)
        if ((bits >> assignment) & 1) != ((bits >> flipped) & 1):
            return False
    return True


class ObservabilityAnalysis(DataflowAnalysis):
    """Backward blocked-path propagation over proven constants."""

    name = "observability"
    direction = "backward"
    lattice = FlatLattice()

    def __init__(self, constants: Mapping[str, Hashable]):
        #: name -> 0/1 for every gate proven constant (both tiers).
        self.constants = {
            name: value
            for name, value in constants.items()
            if value in (0, 1)
        }

    def transfer(self, gate: Gate, values: Mapping[str, Hashable]) -> Hashable:
        if gate.po_names:
            return True
        for sink, pin in gate.fanouts:
            # An unresolved sink reads as observable: the claim must
            # over-approximate, and the worklist revisits on resolution.
            if values.get(sink.name) is False:
                continue
            if sink.cell is None:  # pragma: no cover - sinks are gates
                return True
            fixed: Dict[int, int] = {}
            for index, fanin in enumerate(sink.fanins):
                constant = self.constants.get(fanin.name)
                if constant is not None:
                    fixed[index] = constant
            if not pin_blocked(sink.cell, pin, fixed):
                return True
        return False


def po_reachable(netlist: Netlist) -> Set[str]:
    """Names of gates with a structural path to some primary output."""
    drivers = {gate.name: gate for gate in netlist.outputs.values()}
    region = transitive_fanin(netlist, list(drivers.values()))
    reachable = set(drivers)
    reachable.update(gate.name for gate in region)
    return reachable
