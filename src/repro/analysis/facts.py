"""Typed facts the analyses emit and the fact base that holds them.

Every fact is a *proven* global property of the netlist it was computed
on — "for all input assignments" claims, each carrying its provenance:

- ``dataflow`` / ``structural`` — proven by the abstract interpretation
  or by construction (no oracle involved),
- ``sat`` — confirmed by an UNSAT answer from the incremental oracle.

:class:`NetlistFacts` is what consumers receive: the lint rules iterate
it, ``powder analyze`` serialises it, and the optimizer's pruning reads
the derived name sets / equivalence tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ConstantFact:
    """``name`` evaluates to ``value`` for every input assignment."""

    name: str
    value: int
    proof: str  # "dataflow" | "sat"

    def to_dict(self) -> dict:
        return {"name": self.name, "value": self.value, "proof": self.proof}


@dataclass(frozen=True)
class UnobservableFact:
    """Flipping ``name`` never changes any primary output.

    ``reason`` is ``"dead"`` (no structural path to a PO) or
    ``"blocked"`` (paths exist but are blocked by proven constants,
    confirmed by the SAT flip miter).
    """

    name: str
    reason: str  # "dead" | "blocked"
    proof: str  # "structural" | "sat"

    def to_dict(self) -> dict:
        return {"name": self.name, "reason": self.reason, "proof": self.proof}


@dataclass(frozen=True)
class PhaseFact:
    """``name`` equals ``root`` (parity 0) or its complement (parity 1)
    through a chain of ``depth`` BUF/INV cells."""

    name: str
    root: str
    parity: int
    depth: int

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "root": self.root,
            "parity": self.parity,
            "depth": self.depth,
        }


@dataclass(frozen=True)
class EquivClass:
    """A proven functional-equivalence class.

    ``members`` maps every member (including the representative) to its
    parity relative to the representative; ``proofs`` maps non-seed
    members to how their membership was established.
    """

    representative: str
    members: Dict[str, int]
    proofs: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "representative": self.representative,
            "members": dict(sorted(self.members.items())),
            "proofs": dict(sorted(self.proofs.items())),
        }


@dataclass
class NetlistFacts:
    """Every fact one analysis run produced, plus derived lookups."""

    netlist_name: str = ""
    constants: List[ConstantFact] = field(default_factory=list)
    unobservables: List[UnobservableFact] = field(default_factory=list)
    phases: List[PhaseFact] = field(default_factory=list)
    equivalences: List[EquivClass] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived lookups (computed lazily, cached on first use)
    # ------------------------------------------------------------------
    def constant_values(self) -> Dict[str, int]:
        """name -> proven constant value."""
        return {fact.name: fact.value for fact in self.constants}

    def unobservable_names(self) -> frozenset:
        return frozenset(fact.name for fact in self.unobservables)

    def phase_roots(self) -> Dict[str, Tuple[str, int]]:
        """name -> (root, parity) for every tracked BUF/INV chain."""
        return {fact.name: (fact.root, fact.parity) for fact in self.phases}

    def equiv_tokens(self) -> Dict[str, Tuple[str, int]]:
        """name -> (representative, parity) for every class member.

        Two names with the *same* token are proven pointwise-identical
        signals (equal simulation words); antiphase members of one
        class get distinct tokens.  This is the key the optimizer's
        duplicate pruning groups by.
        """
        tokens: Dict[str, Tuple[str, int]] = {}
        for cls in self.equivalences:
            for name, parity in cls.members.items():
                tokens[name] = (cls.representative, parity)
        return tokens

    def class_of(self, name: str) -> Optional[EquivClass]:
        for cls in self.equivalences:
            if name in cls.members:
                return cls
        return None

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        return {
            "constants": len(self.constants),
            "unobservables": len(self.unobservables),
            "phases": len(self.phases),
            "equivalences": len(self.equivalences),
        }

    def total(self) -> int:
        return sum(self.counts().values())

    def to_dict(self) -> dict:
        return {
            "netlist": self.netlist_name,
            "counts": self.counts(),
            "constants": [fact.to_dict() for fact in self.constants],
            "unobservables": [fact.to_dict() for fact in self.unobservables],
            "phases": [fact.to_dict() for fact in self.phases],
            "equivalences": [cls.to_dict() for cls in self.equivalences],
        }

    def format_text(self) -> str:
        lines = [f"analysis facts for {self.netlist_name!r}:"]
        counts = self.counts()
        lines.append(
            "  "
            + ", ".join(f"{name}: {count}" for name, count in counts.items())
        )
        for fact in self.constants:
            lines.append(
                f"  constant    {fact.name} == {fact.value}  [{fact.proof}]"
            )
        for fact in self.unobservables:
            lines.append(
                f"  unobservable {fact.name}  ({fact.reason})  [{fact.proof}]"
            )
        for fact in self.phases:
            op = "==" if fact.parity == 0 else "== NOT"
            lines.append(
                f"  phase       {fact.name} {op} {fact.root}"
                f"  (depth {fact.depth})"
            )
        for cls in self.equivalences:
            parts = []
            for name, parity in sorted(cls.members.items()):
                if name == cls.representative:
                    continue
                prefix = "~" if parity else ""
                parts.append(f"{prefix}{name}")
            lines.append(
                f"  equiv       {cls.representative} ~ {{{', '.join(parts)}}}"
            )
        return "\n".join(lines)
