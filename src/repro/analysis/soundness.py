"""Independent re-derivation of every emitted fact.

``powder analyze --check-soundness`` (and the Hypothesis suite) cross-
check a :class:`~repro.analysis.facts.NetlistFacts` against an oracle
that shares nothing with the pass that produced it:

- netlists with at most :data:`EXHAUSTIVE_LIMIT` primary inputs are
  checked against **exhaustive simulation** — every input assignment,
  so the check is complete, not probabilistic: constants compare the
  full value word, unobservability checks the packed flip mask
  (``stem_observability``) is identically zero, phase and equivalence
  compare whole words under the claimed parity;
- larger netlists fall back to a **fresh SAT instance** (new Tseitin
  encoding, new solver, a generous conflict budget) asking the same
  for-all questions.

Verdicts are three-valued per fact: confirmed, unsound (a concrete
counterexample exists — this is the failure the suite's two-tier design
must make impossible), or unverified (SAT budget ran out; counted
separately and not treated as a failure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.netlist.simulate import SimState, exhaustive_patterns
from repro.analysis.facts import NetlistFacts
from repro.analysis.observability import po_reachable
from repro.analysis.oracle import FactOracle

#: Inputs at or below this bound are checked exhaustively.
EXHAUSTIVE_LIMIT = 20

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass
class SoundnessReport:
    """Per-fact verdicts from one independent re-derivation."""

    method: str = ""  # "exhaustive" | "sat"
    checked: int = 0
    confirmed: int = 0
    unverified: int = 0
    #: human-readable descriptions of every unsound fact (empty = sound).
    unsound: List[str] = field(default_factory=list)
    by_category: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.unsound

    def _tally(self, category: str, verdict: Optional[bool], text: str) -> None:
        bucket = self.by_category.setdefault(
            category, {"checked": 0, "confirmed": 0, "unverified": 0, "unsound": 0}
        )
        bucket["checked"] += 1
        self.checked += 1
        if verdict is True:
            bucket["confirmed"] += 1
            self.confirmed += 1
        elif verdict is None:
            bucket["unverified"] += 1
            self.unverified += 1
        else:
            bucket["unsound"] += 1
            self.unsound.append(text)

    def format_text(self) -> str:
        lines = [
            f"soundness check ({self.method}): {self.checked} facts, "
            f"{self.confirmed} confirmed, {self.unverified} unverified, "
            f"{len(self.unsound)} unsound"
        ]
        for category in sorted(self.by_category):
            counts = self.by_category[category]
            lines.append(
                f"  {category:13s} checked {counts['checked']:4d}  "
                f"confirmed {counts['confirmed']:4d}  "
                f"unverified {counts['unverified']:4d}  "
                f"unsound {counts['unsound']:4d}"
            )
        for text in self.unsound:
            lines.append(f"  UNSOUND: {text}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "checked": self.checked,
            "confirmed": self.confirmed,
            "unverified": self.unverified,
            "unsound": list(self.unsound),
            "by_category": self.by_category,
            "ok": self.ok,
        }


def check_soundness(
    netlist: Netlist,
    facts: NetlistFacts,
    conflict_limit: int = 200_000,
) -> SoundnessReport:
    """Re-derive every fact independently; see the module docstring."""
    if len(netlist.input_names) <= EXHAUSTIVE_LIMIT:
        return _check_exhaustive(netlist, facts)
    return _check_sat(netlist, facts, conflict_limit)


def _check_exhaustive(netlist: Netlist, facts: NetlistFacts) -> SoundnessReport:
    report = SoundnessReport(method="exhaustive")
    sim = SimState(netlist, exhaustive_patterns(netlist.input_names))

    def word(name: str) -> np.ndarray:
        return sim.values[name]

    for fact in facts.constants:
        target = _ALL_ONES if fact.value else np.uint64(0)
        verdict = bool((word(fact.name) == target).all())
        report._tally(
            "constant", verdict, f"constant {fact.name} == {fact.value}"
        )
    for fact in facts.unobservables:
        gate = netlist.gates[fact.name]
        mask = sim.stem_observability(gate)
        verdict = not bool(np.asarray(mask).any())
        report._tally(
            "unobservable", verdict, f"unobservable {fact.name} ({fact.reason})"
        )
    for fact in facts.phases:
        expected = word(fact.root)
        if fact.parity:
            expected = expected ^ _ALL_ONES
        verdict = bool((word(fact.name) == expected).all())
        report._tally(
            "phase",
            verdict,
            f"phase {fact.name} ~ {fact.root} (parity {fact.parity})",
        )
    for cls in facts.equivalences:
        rep_word = word(cls.representative)
        for name, parity in sorted(cls.members.items()):
            if name == cls.representative:
                continue
            expected = rep_word ^ _ALL_ONES if parity else rep_word
            verdict = bool((word(name) == expected).all())
            report._tally(
                "equivalence",
                verdict,
                f"equiv {name} ~ {cls.representative} (parity {parity})",
            )
    return report


def _check_sat(
    netlist: Netlist, facts: NetlistFacts, conflict_limit: int
) -> SoundnessReport:
    report = SoundnessReport(method="sat")
    oracle = FactOracle(netlist, conflict_limit=conflict_limit)
    for fact in facts.constants:
        verdict = oracle.prove_constant(fact.name, fact.value)
        report._tally(
            "constant", verdict, f"constant {fact.name} == {fact.value}"
        )
    reachable = po_reachable(netlist)
    for fact in facts.unobservables:
        if fact.reason == "dead":
            verdict: Optional[bool] = fact.name not in reachable
        else:
            verdict = oracle.prove_unobservable(fact.name)
        report._tally(
            "unobservable", verdict, f"unobservable {fact.name} ({fact.reason})"
        )
    for fact in facts.phases:
        verdict = oracle.prove_equivalent(fact.name, fact.root, fact.parity)
        report._tally(
            "phase",
            verdict,
            f"phase {fact.name} ~ {fact.root} (parity {fact.parity})",
        )
    for cls in facts.equivalences:
        for name, parity in sorted(cls.members.items()):
            if name == cls.representative:
                continue
            verdict = oracle.prove_equivalent(
                name, cls.representative, parity
            )
            report._tally(
                "equivalence",
                verdict,
                f"equiv {name} ~ {cls.representative} (parity {parity})",
            )
    return report
