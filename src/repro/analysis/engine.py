"""The fixed-point worklist solver.

One :class:`DataflowEngine` is bound to a netlist and runs any
:class:`DataflowAnalysis` — a direction, a lattice, and a pure transfer
function — to a fixed point:

- the worklist is a priority heap keyed by the node's **topological
  level** (taken from the packed-kernel view when numpy is available,
  from :func:`repro.netlist.traverse.logic_levels` otherwise), so a
  forward analysis over a DAG visits every node exactly once and a
  backward analysis visits in reverse level order — the classic
  "chaotic iteration converges, ordered iteration converges in one
  sweep" argument (ALGORITHMS.md §18);
- transfer functions are pure: the value of a node is a function of its
  neighbours' values only, so re-running transfer is always safe and
  the incremental path below needs no monotonicity assumption;
- nodes revisited more than ``widen_after`` times have their value
  widened (default: straight to ``TOP``), which bounds the iteration
  count at ``nodes x (widen_after + lattice height)`` even for
  non-monotone transfers or cyclic graphs.

Incremental re-analysis (:meth:`DataflowEngine.update_after_edit`)
mirrors ``ObservabilityMaps.update_after_edit``: the caller reports the
dirty gates (gates whose cell, fanins, or fanout lists changed); the
engine re-seeds the worklist with the dirty region — plus its
transitive fanout for a forward analysis, transitive fanin for a
backward one — and lets value changes propagate outward.  Nodes outside
the affected region keep their values: a forward value depends only on
the node's input cone, and every node whose cone changed is, by
construction of the dirty set, in the dirty region's fanout.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, Mapping, Optional

from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import (
    logic_levels,
    topological_order,
    transitive_fanin,
    transitive_fanout,
)

from repro.analysis.lattice import Lattice

ValueMap = Dict[str, Hashable]


class DataflowAnalysis:
    """One analysis: a direction, a lattice, and a transfer function."""

    #: Stable identifier used in fact provenance and error messages.
    name: str = "analysis"
    #: ``"forward"`` (values flow fanin -> fanout) or ``"backward"``.
    direction: str = "forward"
    #: The value lattice.
    lattice: Lattice = Lattice()

    def transfer(self, gate: Gate, values: Mapping[str, Hashable]) -> Hashable:
        """The new value of ``gate`` given its neighbours' values.

        Must be *pure*: read only ``gate`` and ``values`` (missing
        neighbours read as bottom via ``values.get``).
        """
        raise NotImplementedError


class DataflowEngine:
    """Runs analyses to fixed point over one netlist."""

    def __init__(self, netlist: Netlist, widen_after: int = 4):
        if widen_after < 1:
            raise ValueError("widen_after must be >= 1")
        self.netlist = netlist
        self.widen_after = widen_after
        self._levels: Optional[Dict[str, int]] = None
        self._levels_key: Optional[list] = None

    # ------------------------------------------------------------------
    # Level priorities
    # ------------------------------------------------------------------
    def levels(self) -> Dict[str, int]:
        """Topological level per gate, cached per structural state."""
        key = topological_order(self.netlist)
        if self._levels is None or self._levels_key is not key:
            self._levels = self._compute_levels()
            self._levels_key = key
        return self._levels

    def _compute_levels(self) -> Dict[str, int]:
        from repro.kernels.packed import HAVE_NUMPY

        if HAVE_NUMPY:
            from repro.kernels.packed import packed_view

            packed = packed_view(self.netlist)
            return {
                name: int(packed.levels[index])
                for name, index in packed.index.items()
            }
        return logic_levels(self.netlist)

    # ------------------------------------------------------------------
    # Full analysis
    # ------------------------------------------------------------------
    def run(self, analysis: DataflowAnalysis) -> ValueMap:
        """Fixed-point values for every gate, from a bottom start."""
        bottom = analysis.lattice.bottom()
        values: ValueMap = {
            gate.name: bottom for gate in topological_order(self.netlist)
        }
        self._solve(analysis, values, seeds=list(values))
        return values

    # ------------------------------------------------------------------
    # Incremental re-analysis
    # ------------------------------------------------------------------
    def update_after_edit(
        self,
        analysis: DataflowAnalysis,
        values: ValueMap,
        dirty_gates: Iterable[str],
    ) -> set:
        """Repair ``values`` in place after a structural edit.

        ``dirty_gates`` follows the observability-maps contract: every
        gate whose cell, fanin list, or fanout list changed (dead names
        are tolerated and dropped).  Returns the set of gate names whose
        value changed.
        """
        gates = self.netlist.gates
        live_dirty = [name for name in dirty_gates if name in gates]
        # Drop values of removed gates; new gates enter at bottom.
        stale = [name for name in values if name not in gates]
        for name in stale:
            del values[name]
        bottom = analysis.lattice.bottom()
        roots = [gates[name] for name in live_dirty]
        if analysis.direction == "forward":
            region = transitive_fanout(self.netlist, roots)
        else:
            region = transitive_fanin(self.netlist, roots)
        seeds = list(live_dirty)
        seeds.extend(gate.name for gate in region)
        for name in seeds:
            values.setdefault(name, bottom)
        before = {name: values[name] for name in seeds}
        changed = self._solve(analysis, values, seeds=seeds)
        changed.update(
            name for name, old in before.items() if values[name] != old
        )
        return changed

    # ------------------------------------------------------------------
    # The worklist core
    # ------------------------------------------------------------------
    def _solve(
        self,
        analysis: DataflowAnalysis,
        values: ValueMap,
        seeds: Iterable[str],
    ) -> set:
        lattice = analysis.lattice
        forward = analysis.direction == "forward"
        if not forward and analysis.direction != "backward":
            raise ValueError(
                f"analysis {analysis.name!r} has unknown direction "
                f"{analysis.direction!r}"
            )
        levels = self.levels()
        gates = self.netlist.gates
        sign = 1 if forward else -1

        def priority(name: str) -> int:
            return sign * levels.get(name, 0)

        heap = [(priority(name), name) for name in seeds if name in gates]
        heapq.heapify(heap)
        queued = {name for _, name in heap}
        visits: Dict[str, int] = {}
        changed: set = set()
        while heap:
            _, name = heapq.heappop(heap)
            queued.discard(name)
            gate = gates.get(name)
            if gate is None:
                continue
            new = analysis.transfer(gate, values)
            old = values.get(name, lattice.bottom())
            if new == old:
                continue
            count = visits.get(name, 0) + 1
            visits[name] = count
            if count > self.widen_after:
                new = lattice.widen(old, new)
                if new == old:
                    continue
            values[name] = new
            changed.add(name)
            if forward:
                neighbours: Iterable[Gate] = gate.fanout_gates()
            else:
                neighbours = gate.fanins
            for neighbour in neighbours:
                if neighbour.name not in queued:
                    queued.add(neighbour.name)
                    heapq.heappush(
                        heap, (priority(neighbour.name), neighbour.name)
                    )
        return changed
