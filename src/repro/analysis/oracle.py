"""The SAT confirmation oracle behind the analysis facts.

One :class:`FactOracle` owns a Tseitin encoding of the netlist plus an
incremental CDCL solver (the same pair the PR-6 triage engine keeps per
structural state) and answers the three queries the analyses need:

- ``prove_constant(name, value)`` — UNSAT of the opposite literal,
- ``prove_equivalent(a, b, parity)`` — UNSAT of an XOR difference
  variable (reused per pair, so the antiphase query is one more
  ``solve`` on the same clauses),
- ``prove_unobservable(name)`` — the flip miter: the gate's transitive
  fanout cone is duplicated with the gate's literal *inverted* at the
  rewired point, per-PO XOR difference variables are ORed under an
  activation assumption, and UNSAT means no input assignment lets the
  flip reach any output.

Every query runs under a conflict limit; UNKNOWN means "not proven" and
the caller must drop the candidate — budget exhaustion can only lose
facts, never fabricate them.  All proofs are against the netlist state
the oracle was built on; the suite rebuilds the oracle whenever the
structural state key changes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.netlist.netlist import Netlist
from repro.netlist.traverse import topological_order, transitive_fanout
from repro.sat.cnf import CnfFormula, cell_templates, tseitin_encode
from repro.sat.incremental import IncrementalSolver


def encode_cell(
    solver: IncrementalSolver,
    formula: CnfFormula,
    out: int,
    fanin_literals: Iterable[int],
    cell,
) -> None:
    """Add the Tseitin clauses tying ``out`` to ``cell(fanins)``."""
    literals = list(fanin_literals)
    onset, offset = cell_templates(cell)
    for cube in onset:
        clause = [out]
        for var, polarity in cube:
            literal = literals[var]
            clause.append(-literal if polarity else literal)
        solver.add_clause(*clause)
    for cube in offset:
        clause = [-out]
        for var, polarity in cube:
            literal = literals[var]
            clause.append(-literal if polarity else literal)
        solver.add_clause(*clause)


class FactOracle:
    """Incremental SAT queries over one structural netlist state."""

    def __init__(self, netlist: Netlist, conflict_limit: int = 50_000):
        self.netlist = netlist
        self.conflict_limit = conflict_limit
        self.formula = tseitin_encode(netlist)
        self.solver = IncrementalSolver(self.formula)
        #: query tallies for telemetry / reports.
        self.counters: Dict[str, int] = {
            "solve_calls": 0,
            "proofs": 0,
            "refuted": 0,
            "unknown": 0,
        }
        self._diff_vars: Dict[Tuple[str, str], int] = {}
        self._flip_vars: Dict[str, Optional[int]] = {}

    # ------------------------------------------------------------------
    def _solve(self, assumptions) -> Optional[bool]:
        """True = proven (UNSAT), False = refuted (SAT), None = budget."""
        self.counters["solve_calls"] += 1
        result = self.solver.solve(
            assumptions, conflict_limit=self.conflict_limit
        )
        if result.status == "unsat":
            self.counters["proofs"] += 1
            return True
        if result.status == "sat":
            self.counters["refuted"] += 1
            return False
        self.counters["unknown"] += 1
        return None

    def var(self, name: str) -> int:
        return self.formula.var_of[name]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def prove_constant(self, name: str, value: int) -> Optional[bool]:
        """Is ``name`` equal to ``value`` for every input assignment?"""
        literal = self.var(name)
        return self._solve([-literal if value else literal])

    def prove_equivalent(
        self, a: str, b: str, parity: int
    ) -> Optional[bool]:
        """Is ``a == b`` (parity 0) / ``a == not b`` (parity 1) always?"""
        key = (a, b) if a <= b else (b, a)
        diff = self._diff_vars.get(key)
        if diff is None:
            diff = self.formula.new_var()
            self.solver.ensure_vars(self.formula.num_vars)
            va, vb = self.var(key[0]), self.var(key[1])
            # diff <-> va XOR vb
            self.solver.add_clause(-diff, va, vb)
            self.solver.add_clause(-diff, -va, -vb)
            self.solver.add_clause(diff, -va, vb)
            self.solver.add_clause(diff, va, -vb)
            self._diff_vars[key] = diff
        # Equality is "diff never 1"; antiphase is "diff never 0".
        return self._solve([diff if parity == 0 else -diff])

    def prove_unobservable(self, name: str) -> Optional[bool]:
        """Can flipping ``name``'s value ever change a primary output?

        Encodes the flip miter once per gate (cached): every gate in
        the transitive fanout is re-encoded reading ``-var(name)`` at
        the flipped point, and the per-PO differences are ORed under an
        activation literal so refutations stay incremental.
        """
        if name in self._flip_vars:
            activation = self._flip_vars[name]
        else:
            activation = self._encode_flip_miter(name)
            self._flip_vars[name] = activation
        if activation is None:
            # No PO structurally depends on the gate: the flip reaches
            # nothing, which is a (stronger, structural) proof.
            return True
        return self._solve([activation])

    # ------------------------------------------------------------------
    def _encode_flip_miter(self, name: str) -> Optional[int]:
        netlist = self.netlist
        gate = netlist.gates[name]
        affected = transitive_fanout(netlist, [gate])
        affected_names = {sink.name for sink in affected}
        flipped = -self.var(name)
        copies: Dict[str, int] = {}
        order = [
            g for g in topological_order(netlist) if g.name in affected_names
        ]
        for sink in order:
            literals = []
            for fanin in sink.fanins:
                if fanin.name == name:
                    literals.append(flipped)
                elif fanin.name in copies:
                    literals.append(copies[fanin.name])
                else:
                    literals.append(self.var(fanin.name))
            out = self.formula.new_var()
            self.solver.ensure_vars(self.formula.num_vars)
            encode_cell(self.solver, self.formula, out, literals, sink.cell)
            copies[sink.name] = out
        diff_vars = []
        for po_name in sorted(netlist.outputs):
            driver = netlist.outputs[po_name]
            if driver.name == name:
                new_literal = flipped
            elif driver.name in copies:
                new_literal = copies[driver.name]
            else:
                continue
            old = self.var(driver.name)
            diff = self.formula.new_var()
            self.solver.ensure_vars(self.formula.num_vars)
            self.solver.add_clause(-diff, old, new_literal)
            self.solver.add_clause(-diff, -old, -new_literal)
            self.solver.add_clause(diff, -old, new_literal)
            self.solver.add_clause(diff, old, -new_literal)
            diff_vars.append(diff)
        if not diff_vars:
            return None
        activation = self.formula.new_var()
        self.solver.ensure_vars(self.formula.num_vars)
        self.solver.add_clause(-activation, *diff_vars)
        return activation
