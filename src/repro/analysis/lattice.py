"""Explicit lattices for the dataflow engine.

A lattice supplies the engine with the four operations fixed-point
iteration needs: the least element (``bottom``), the least upper bound
(``join``), the partial order (``leq``, used by tests to state
monotonicity), and ``widen`` — an upper-bound accelerator applied after
a node has been revisited more than the engine's ``widen_after``
threshold.  Mapped netlists are DAGs, so a level-ordered pass converges
without widening; the widening hook is the termination guarantee for
analyses whose transfer functions are not strictly monotone (or for
callers feeding the engine cyclic graphs) — see ALGORITHMS.md §18.

Values are required to be hashable and comparable with ``==``; the
engine detects convergence by value equality, not by ``leq``.
"""

from __future__ import annotations

from typing import Hashable, Iterable


class _Sentinel:
    """A named singleton that survives ``repr`` in test failures."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: The least element: "not yet computed / unreachable".
BOTTOM = _Sentinel("BOTTOM")
#: The greatest element: "no static information".
TOP = _Sentinel("TOP")


class Lattice:
    """Base lattice protocol.  Subclasses override the four operations."""

    def bottom(self) -> Hashable:
        return BOTTOM

    def top(self) -> Hashable:
        return TOP

    def is_bottom(self, value: Hashable) -> bool:
        return value is BOTTOM

    def leq(self, a: Hashable, b: Hashable) -> bool:
        raise NotImplementedError

    def join(self, a: Hashable, b: Hashable) -> Hashable:
        raise NotImplementedError

    def widen(self, old: Hashable, new: Hashable) -> Hashable:
        """Default widening jumps straight to ``TOP`` on oscillation."""
        if old == new:
            return old
        return TOP

    def join_all(self, values: Iterable[Hashable]) -> Hashable:
        result: Hashable = self.bottom()
        for value in values:
            result = self.join(result, value)
        return result


class FlatLattice(Lattice):
    """The flat (three-level) lattice: BOTTOM < constants < TOP.

    Any two distinct non-extremal values are incomparable and join to
    ``TOP``.  This is the shape every builtin analysis uses: the value
    domain carries the fact, the lattice structure only encodes "known /
    unknown / conflicting".
    """

    def leq(self, a: Hashable, b: Hashable) -> bool:
        return a is BOTTOM or b is TOP or a == b

    def join(self, a: Hashable, b: Hashable) -> Hashable:
        if a is BOTTOM:
            return b
        if b is BOTTOM:
            return a
        if a == b:
            return a
        return TOP


class TernaryLattice(FlatLattice):
    """Flat lattice over {0, 1}: the constant-propagation domain.

    ``TOP`` reads as "not statically constant"; 0/1 read as "provably
    that constant for every input assignment".
    """

    ZERO = 0
    ONE = 1

    def from_bool(self, value: bool) -> int:
        return self.ONE if value else self.ZERO
