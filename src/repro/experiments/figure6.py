"""Figure 6: the power-delay trade-off.

The paper runs POWDER over a set of 18 circuits with delay constraints of
0 %, 10 %, ... 200 % above the initial delay, sums power and delay over the
set, and plots relative power vs relative delay.  Expected shape: monotone
decreasing power with increasing allowance, about −26 % at 0 % rising to
about −38 % at +200 %, with two thirds of the extra gain already reached by
+30 % and saturation beyond +80 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bench.suite import TRADEOFF_SUITE, build_benchmark
from repro.experiments.common import ExperimentConfig, initial_metrics
from repro.library.standard import standard_library
from repro.timing.analysis import TimingAnalysis
from repro.transform.optimizer import power_optimize

#: The paper's sweep points (delay increase allowed, percent).
DEFAULT_SLACK_PERCENTS = (0, 10, 20, 30, 50, 80, 120, 200)


@dataclass
class TradeoffPoint:
    """One point of the Figure-6 curve (summed over the circuit set)."""

    slack_percent: float
    relative_power: float  # optimized / initial, summed over circuits
    relative_delay: float  # final delay / initial delay, summed

    @property
    def power_reduction_pct(self) -> float:
        return 100.0 * (1.0 - self.relative_power)


@dataclass
class Figure6Result:
    points: list[TradeoffPoint]
    circuits: list[str]


def run_figure6(
    circuits: Optional[Sequence[str]] = None,
    slack_percents: Sequence[float] = DEFAULT_SLACK_PERCENTS,
    config: ExperimentConfig = ExperimentConfig(),
    progress: bool = False,
) -> Figure6Result:
    library = standard_library()
    names = list(circuits) if circuits is not None else list(TRADEOFF_SUITE)
    bases = {}
    initials = {}
    for name in names:
        netlist = build_benchmark(name, library, map_mode=config.map_mode)
        bases[name] = netlist
        initials[name] = initial_metrics(netlist, config)

    total_power0 = sum(p for p, _a, _d in initials.values())
    total_delay0 = sum(d for _p, _a, d in initials.values())
    points: list[TradeoffPoint] = []
    for slack in slack_percents:
        total_power = 0.0
        total_delay = 0.0
        for name in names:
            trial = bases[name].copy(f"{name}_s{slack}")
            result = power_optimize(
                trial, config.optimizer_options(delay_slack_percent=float(slack))
            )
            total_power += result.final_power
            total_delay += TimingAnalysis(trial).circuit_delay
        point = TradeoffPoint(
            slack_percent=float(slack),
            relative_power=total_power / total_power0,
            relative_delay=total_delay / total_delay0,
        )
        points.append(point)
        if progress:
            print(
                f"  slack +{slack:5.0f}%: power x{point.relative_power:.3f} "
                f"({point.power_reduction_pct:5.1f}% red.), "
                f"delay x{point.relative_delay:.3f}"
            )
    return Figure6Result(points=points, circuits=names)


def format_figure6(result: Figure6Result) -> str:
    lines = [
        "Figure 6 — power-delay trade-off "
        f"({len(result.circuits)} circuits: {', '.join(result.circuits)})",
        f"{'constraint':>11s} {'rel. delay':>11s} {'rel. power':>11s} "
        f"{'power red.%':>12s}",
    ]
    for p in result.points:
        lines.append(
            f"{p.slack_percent:+10.0f}% {p.relative_delay:11.3f} "
            f"{p.relative_power:11.3f} {p.power_reduction_pct:12.1f}"
        )
    lines.append(
        "paper shape: ~26% reduction at +0%, rising to ~38% at +200%, "
        "saturating beyond +80%"
    )
    # ASCII sketch of the curve.
    lines.append("")
    lines.append("relative power vs relative delay:")
    for p in result.points:
        bar = int(round((p.relative_power) * 50))
        lines.append(
            f"  +{p.slack_percent:3.0f}% | " + "#" * bar + f" {p.relative_power:.3f}"
        )
    return "\n".join(lines)
