"""Experiment harnesses regenerating the paper's tables and figures.

- :mod:`~repro.experiments.common` — shared circuit runner and row types,
- :mod:`~repro.experiments.table1` — Table 1 (per-circuit power/area/delay,
  unconstrained and delay-constrained POWDER),
- :mod:`~repro.experiments.table2` — Table 2 (per-class contributions),
- :mod:`~repro.experiments.figure6` — Figure 6 (power-delay trade-off).
"""

from repro.experiments.common import CircuitRun, ExperimentConfig, run_circuit
from repro.experiments.table1 import Table1Row, run_table1, format_table1
from repro.experiments.table2 import run_table2, format_table2
from repro.experiments.figure6 import TradeoffPoint, run_figure6, format_figure6

__all__ = [
    "CircuitRun",
    "ExperimentConfig",
    "run_circuit",
    "Table1Row",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "TradeoffPoint",
    "run_figure6",
    "format_figure6",
]
