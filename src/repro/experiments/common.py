"""Shared experiment infrastructure.

One :func:`run_circuit` call reproduces the per-circuit protocol of §4:
synthesize the low-power starting netlist (the POSE stand-in), then run
POWDER — once without delay constraints (§4.1) and once constrained to the
initial circuit delay (§4.2).  All knobs live in :class:`ExperimentConfig`
so the benchmark harness, the CLI and the tests run the identical protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.bench.suite import build_benchmark
from repro.library.cell import Library
from repro.library.standard import standard_library
from repro.netlist.netlist import Netlist
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.timing.analysis import TimingAnalysis
from repro.transform.optimizer import (
    OptimizeOptions,
    OptimizeResult,
    power_optimize,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Protocol parameters shared by all experiments."""

    num_patterns: int = 2048
    seed: int = 2024
    map_mode: str = "power"
    repeat: int = 25
    max_rounds: int = 20
    backtrack_limit: int = 20000
    #: Optional cap on moves per run, to bound experiment time.
    max_moves: Optional[int] = None

    def optimizer_options(
        self, delay_slack_percent: Optional[float] = None
    ) -> OptimizeOptions:
        return OptimizeOptions(
            repeat=self.repeat,
            delay_slack_percent=delay_slack_percent,
            num_patterns=self.num_patterns,
            seed=self.seed,
            backtrack_limit=self.backtrack_limit,
            max_rounds=self.max_rounds,
            max_moves=self.max_moves,
        )


#: Reduced-effort configuration for tests and quick demo runs.
QUICK_CONFIG = ExperimentConfig(
    num_patterns=1024, repeat=10, max_rounds=4, max_moves=12,
    backtrack_limit=5000,
)


@dataclass
class CircuitRun:
    """All measurements for one benchmark circuit."""

    name: str
    initial_power: float
    initial_area: float
    initial_delay: float
    num_gates: int
    unconstrained: Optional[OptimizeResult] = None
    constrained: Optional[OptimizeResult] = None
    cpu_seconds: float = 0.0


def initial_metrics(
    netlist: Netlist, config: ExperimentConfig
) -> tuple[float, float, float]:
    """(power, area, delay) of a netlist under the experiment protocol."""
    estimator = PowerEstimator(
        netlist,
        SimulationProbability(
            netlist, num_patterns=config.num_patterns, seed=config.seed
        ),
    )
    timing = TimingAnalysis(netlist)
    return estimator.total(), netlist.total_area(), timing.circuit_delay


def run_circuit(
    name: str,
    config: ExperimentConfig = ExperimentConfig(),
    library: Optional[Library] = None,
    constrained: bool = True,
    unconstrained: bool = True,
) -> CircuitRun:
    """Synthesize one benchmark and run POWDER in the requested modes."""
    library = library or standard_library()
    start = time.perf_counter()
    base = build_benchmark(name, library, map_mode=config.map_mode)
    power, area, delay = initial_metrics(base, config)
    run = CircuitRun(
        name=name,
        initial_power=power,
        initial_area=area,
        initial_delay=delay,
        num_gates=base.num_gates(),
    )
    if unconstrained:
        run.unconstrained = power_optimize(
            base.copy(name + "_unc"), config.optimizer_options(None)
        )
    if constrained:
        run.constrained = power_optimize(
            base.copy(name + "_con"),
            config.optimizer_options(delay_slack_percent=0.0),
        )
    run.cpu_seconds = time.perf_counter() - start
    return run
