"""Table 2: contribution of substitution classes to power and area.

The paper sums the per-move power and area savings by class over the whole
unconstrained benchmark run and reports each class's share (power: OS2
32.5 %, IS2 36.5 %, OS3 27.6 %, IS3 3.4 %; area: OS2 171.5 %, IS2 −11.6 %,
OS3 −27.7 %, IS3 −32.2 % — i.e. only OS2 shrinks circuits).  This module
aggregates the optimizer's move logs the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import CircuitRun, ExperimentConfig
from repro.experiments.table1 import Table1Result, run_table1
from repro.transform.report import ALL_CLASSES, ClassStats, class_statistics

#: The paper's Table 2 for shape comparison.
PAPER_POWER_SHARES = {"OS2": 32.5, "IS2": 36.5, "OS3": 27.6, "IS3": 3.4}
PAPER_AREA_SHARES = {"OS2": 171.5, "IS2": -11.6, "OS3": -27.7, "IS3": -32.2}


@dataclass
class Table2Result:
    stats: dict[str, ClassStats]
    total_power_gain: float
    total_area_delta: float

    def power_share_pct(self, kind: str) -> float:
        if self.total_power_gain == 0:
            return 0.0
        return 100.0 * self.stats[kind].power_gain / self.total_power_gain

    def area_share_pct(self, kind: str) -> float:
        """Share of the total area *reduction* (negative delta = reduction)."""
        reduction = -self.total_area_delta
        if reduction == 0:
            return 0.0
        return 100.0 * (-self.stats[kind].area_delta) / reduction


def table2_from_runs(runs: Sequence[CircuitRun]) -> Table2Result:
    """Aggregate class statistics over the unconstrained move logs."""
    moves = []
    for run in runs:
        if run.unconstrained is not None:
            moves.extend(run.unconstrained.moves)
    stats = class_statistics(moves)
    return Table2Result(
        stats=stats,
        total_power_gain=sum(s.power_gain for s in stats.values()),
        total_area_delta=sum(s.area_delta for s in stats.values()),
    )


def run_table2(
    circuits: Optional[Sequence[str]] = None,
    config: ExperimentConfig = ExperimentConfig(),
    table1: Optional[Table1Result] = None,
    progress: bool = False,
) -> Table2Result:
    """Run (or reuse) the Table-1 protocol and aggregate per class."""
    if table1 is None:
        table1 = run_table1(circuits, config, progress=progress)
    return table2_from_runs(table1.runs)


def format_table2(result: Table2Result) -> str:
    header = (
        f"{'substitution':>14s} " + " ".join(f"{k:>8s}" for k in ALL_CLASSES)
    )
    lines = [header, "-" * len(header)]
    lines.append(
        f"{'moves':>14s} "
        + " ".join(f"{result.stats[k].count:8d}" for k in ALL_CLASSES)
    )
    lines.append(
        f"{'power red. %':>14s} "
        + " ".join(f"{result.power_share_pct(k):8.1f}" for k in ALL_CLASSES)
    )
    lines.append(
        f"{'(paper)':>14s} "
        + " ".join(f"{PAPER_POWER_SHARES[k]:8.1f}" for k in ALL_CLASSES)
    )
    lines.append(
        f"{'area red. %':>14s} "
        + " ".join(f"{result.area_share_pct(k):8.1f}" for k in ALL_CLASSES)
    )
    lines.append(
        f"{'(paper)':>14s} "
        + " ".join(f"{PAPER_AREA_SHARES[k]:8.1f}" for k in ALL_CLASSES)
    )
    return "\n".join(lines)
