"""Table 1: POWDER on the benchmark suite.

Reproduces the paper's per-circuit columns — initial power/area/delay,
unconstrained optimization (power, reduction %, area) and delay-constrained
optimization (power, reduction %, area, delay, CPU seconds) — plus the
bottom totals row (paper: −26.1 % power unconstrained, −21.4 % power /
−6.8 % delay constrained).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bench.suite import DEFAULT_SUITE
from repro.experiments.common import CircuitRun, ExperimentConfig, run_circuit


@dataclass
class Table1Row:
    """One line of Table 1."""

    circuit: str
    initial_power: float
    initial_area: float
    initial_delay: float
    unc_power: float
    unc_reduction_pct: float
    unc_area: float
    con_power: float
    con_reduction_pct: float
    con_area: float
    con_delay: float
    cpu_seconds: float

    @classmethod
    def from_run(cls, run: CircuitRun) -> "Table1Row":
        unc = run.unconstrained
        con = run.constrained
        return cls(
            circuit=run.name,
            initial_power=run.initial_power,
            initial_area=run.initial_area,
            initial_delay=run.initial_delay,
            unc_power=unc.final_power if unc else run.initial_power,
            unc_reduction_pct=unc.power_reduction_percent if unc else 0.0,
            unc_area=unc.final_area if unc else run.initial_area,
            con_power=con.final_power if con else run.initial_power,
            con_reduction_pct=con.power_reduction_percent if con else 0.0,
            con_area=con.final_area if con else run.initial_area,
            con_delay=con.final_delay if con else run.initial_delay,
            cpu_seconds=run.cpu_seconds,
        )


@dataclass
class Table1Result:
    rows: list[Table1Row]
    runs: list[CircuitRun]

    # Aggregates matching the paper's bottom rows.
    @property
    def total_initial_power(self) -> float:
        return sum(r.initial_power for r in self.rows)

    @property
    def total_unc_power(self) -> float:
        return sum(r.unc_power for r in self.rows)

    @property
    def total_con_power(self) -> float:
        return sum(r.con_power for r in self.rows)

    @property
    def unc_power_reduction_pct(self) -> float:
        return 100.0 * (1 - self.total_unc_power / self.total_initial_power)

    @property
    def con_power_reduction_pct(self) -> float:
        return 100.0 * (1 - self.total_con_power / self.total_initial_power)

    @property
    def unc_area_reduction_pct(self) -> float:
        total_area = sum(r.initial_area for r in self.rows)
        return 100.0 * (1 - sum(r.unc_area for r in self.rows) / total_area)

    @property
    def con_area_reduction_pct(self) -> float:
        total_area = sum(r.initial_area for r in self.rows)
        return 100.0 * (1 - sum(r.con_area for r in self.rows) / total_area)

    @property
    def con_delay_reduction_pct(self) -> float:
        total_delay = sum(r.initial_delay for r in self.rows)
        return 100.0 * (1 - sum(r.con_delay for r in self.rows) / total_delay)


def run_table1(
    circuits: Optional[Sequence[str]] = None,
    config: ExperimentConfig = ExperimentConfig(),
    progress: bool = False,
) -> Table1Result:
    """Run the Table-1 protocol over the suite (or a subset)."""
    names = list(circuits) if circuits is not None else list(DEFAULT_SUITE)
    rows: list[Table1Row] = []
    runs: list[CircuitRun] = []
    for name in names:
        run = run_circuit(name, config)
        runs.append(run)
        rows.append(Table1Row.from_run(run))
        if progress:
            row = rows[-1]
            print(
                f"  {name:10s} power {row.initial_power:8.2f} -> "
                f"{row.unc_power:8.2f} ({row.unc_reduction_pct:5.1f}%) unc | "
                f"{row.con_power:8.2f} ({row.con_reduction_pct:5.1f}%) con "
                f"[{row.cpu_seconds:6.1f}s]"
            )
    return Table1Result(rows=rows, runs=runs)


def format_table1(result: Table1Result) -> str:
    """Render the table in the paper's column layout."""
    header = (
        f"{'circuit':10s} {'power':>9s} {'area':>9s} {'delay':>7s} | "
        f"{'power':>9s} {'red.%':>6s} {'area':>9s} | "
        f"{'power':>9s} {'red.%':>6s} {'area':>9s} {'delay':>7s} {'CPU':>7s}"
    )
    title = (
        f"{'':10s} {'initial':>27s} | {'no delay constraints':>26s} | "
        f"{'with delay constraints':>42s}"
    )
    lines = [title, header, "-" * len(header)]
    for r in result.rows:
        lines.append(
            f"{r.circuit:10s} {r.initial_power:9.2f} {r.initial_area:9.0f} "
            f"{r.initial_delay:7.1f} | {r.unc_power:9.2f} "
            f"{r.unc_reduction_pct:6.1f} {r.unc_area:9.0f} | "
            f"{r.con_power:9.2f} {r.con_reduction_pct:6.1f} "
            f"{r.con_area:9.0f} {r.con_delay:7.1f} {r.cpu_seconds:7.1f}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'total':10s} {result.total_initial_power:9.2f} "
        f"{sum(r.initial_area for r in result.rows):9.0f} "
        f"{sum(r.initial_delay for r in result.rows):7.1f} | "
        f"{result.total_unc_power:9.2f} {result.unc_power_reduction_pct:6.1f} "
        f"{sum(r.unc_area for r in result.rows):9.0f} | "
        f"{result.total_con_power:9.2f} {result.con_power_reduction_pct:6.1f} "
        f"{sum(r.con_area for r in result.rows):9.0f} "
        f"{sum(r.con_delay for r in result.rows):7.1f}"
    )
    lines.append(
        f"{'reduction%':10s} {'':9s} {'':9s} {'':7s} | "
        f"{'':9s} {result.unc_power_reduction_pct:6.1f} "
        f"{result.unc_area_reduction_pct:9.1f} | "
        f"{'':9s} {result.con_power_reduction_pct:6.1f} "
        f"{result.con_area_reduction_pct:9.1f} "
        f"{result.con_delay_reduction_pct:7.1f}"
    )
    lines.append(
        "paper:      power -26.1% / area -8.9% unconstrained; "
        "power -21.4% / area -7.5% / delay -6.8% constrained"
    )
    return "\n".join(lines)
