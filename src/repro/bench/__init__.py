"""Benchmark circuits.

The paper evaluates on MCNC benchmarks synthesized by POSE with
``lib2.genlib``.  The original netlists are not redistributable, so this
package provides (see DESIGN.md for the substitution rationale):

- :mod:`~repro.bench.pla` — a PLA container with Berkeley ``.pla`` I/O and a
  seeded random-PLA generator,
- :mod:`~repro.bench.functions` — functional generators for circuits whose
  behaviour is public knowledge (weight functions rd84-style, the 9sym
  symmetric family, comparators, adders/ALUs, parity, multipliers),
- :mod:`~repro.bench.suite` — the named registry mirroring Table 1, each
  entry buildable into a mapped netlist through the synthesis flow.
"""

from repro.bench.pla import Pla, parse_pla, write_pla, random_pla
from repro.bench.suite import (
    BenchmarkSpec,
    SUITE,
    DEFAULT_SUITE,
    TRADEOFF_SUITE,
    build_benchmark,
    available_benchmarks,
)

__all__ = [
    "Pla",
    "parse_pla",
    "write_pla",
    "random_pla",
    "BenchmarkSpec",
    "SUITE",
    "DEFAULT_SUITE",
    "TRADEOFF_SUITE",
    "build_benchmark",
    "available_benchmarks",
]
