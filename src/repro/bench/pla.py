"""PLA (two-level) circuit specifications.

:class:`Pla` is the input format of the synthesis flow: named inputs, and
per-output ON-set / DC-set covers.  Berkeley espresso ``.pla`` files (types
``f``, ``fd``, ``fr``) parse and print losslessly for the constructs used
by the MCNC benchmarks, so genuine benchmark files can be dropped in.

:func:`random_pla` generates seeded synthetic PLAs used as stand-ins for
benchmarks whose functions are not public; the generator biases literal
density and output sharing to produce the reconvergent, multi-output
structure multi-level synthesis expects (a uniform random PLA would
minimize to almost nothing).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ParseError
from repro.logic.sop import Cover, Cube


@dataclass
class Pla:
    """A multi-output two-level specification."""

    name: str
    input_names: list[str]
    output_names: list[str]
    on: dict[str, Cover] = field(default_factory=dict)
    dc: dict[str, Cover] = field(default_factory=dict)

    @property
    def num_inputs(self) -> int:
        return len(self.input_names)

    @property
    def num_outputs(self) -> int:
        return len(self.output_names)

    def cover(self, output: str) -> Cover:
        return self.on.get(output, Cover(self.num_inputs, []))

    def total_cubes(self) -> int:
        return sum(len(c.cubes) for c in self.on.values())

    def validate(self) -> None:
        for po, cover in list(self.on.items()) + list(self.dc.items()):
            if po not in self.output_names:
                raise ParseError(f"cover for unknown output {po!r}")
            if cover.nvars != self.num_inputs:
                raise ParseError(
                    f"output {po!r}: cover width {cover.nvars} != "
                    f"{self.num_inputs} inputs"
                )


def parse_pla(text: str, name: str = "pla") -> Pla:
    """Parse Berkeley ``.pla`` text (types f / fd / fr)."""
    num_inputs = num_outputs = None
    input_names: list[str] = []
    output_names: list[str] = []
    pla_type = "fd"
    rows: list[tuple[str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            tokens = line.split()
            key = tokens[0]
            if key == ".i":
                num_inputs = int(tokens[1])
            elif key == ".o":
                num_outputs = int(tokens[1])
            elif key == ".ilb":
                input_names = tokens[1:]
            elif key == ".ob":
                output_names = tokens[1:]
            elif key == ".type":
                pla_type = tokens[1]
            elif key in (".p", ".e", ".end"):
                continue
            else:
                raise ParseError(f"unsupported PLA directive {key}", lineno)
            continue
        parts = line.split()
        if len(parts) == 2:
            in_part, out_part = parts
        elif num_inputs is not None and len(parts) == 1:
            in_part = line[:num_inputs]
            out_part = line[num_inputs:].strip()
        else:
            in_part = "".join(parts[:-1])
            out_part = parts[-1]
        rows.append((in_part, out_part))

    if num_inputs is None or num_outputs is None:
        raise ParseError("PLA needs .i and .o")
    if not input_names:
        input_names = [f"x{i}" for i in range(num_inputs)]
    if not output_names:
        output_names = [f"y{i}" for i in range(num_outputs)]
    if len(input_names) != num_inputs or len(output_names) != num_outputs:
        raise ParseError("PLA label counts disagree with .i/.o")

    pla = Pla(name, input_names, output_names)
    on_cubes: dict[str, list[Cube]] = {po: [] for po in output_names}
    dc_cubes: dict[str, list[Cube]] = {po: [] for po in output_names}
    for in_part, out_part in rows:
        if len(in_part) != num_inputs or len(out_part) != num_outputs:
            raise ParseError(f"bad PLA row {in_part} {out_part}")
        cube = Cube.from_string(in_part)
        for po, flag in zip(output_names, out_part):
            if flag in ("1", "4"):
                on_cubes[po].append(cube)
            elif flag in ("-", "2", "~"):
                if pla_type in ("fd", "fdr"):
                    dc_cubes[po].append(cube)
            elif flag in ("0", "3"):
                continue
            else:
                raise ParseError(f"bad output flag {flag!r}")
    for po in output_names:
        pla.on[po] = Cover(num_inputs, on_cubes[po])
        if dc_cubes[po]:
            pla.dc[po] = Cover(num_inputs, dc_cubes[po])
    pla.validate()
    return pla


def parse_pla_file(path: str | Path) -> Pla:
    path = Path(path)
    return parse_pla(path.read_text(), name=path.stem)


def write_pla(pla: Pla) -> str:
    """Render to ``.pla`` text (type fd)."""
    lines = [
        f".i {pla.num_inputs}",
        f".o {pla.num_outputs}",
        ".ilb " + " ".join(pla.input_names),
        ".ob " + " ".join(pla.output_names),
        ".type fd",
    ]
    # Collect distinct input cubes, then emit one row per cube.
    cube_flags: dict[Cube, list[str]] = {}
    order: list[Cube] = []
    for po_index, po in enumerate(pla.output_names):
        for kind, cover in (("1", pla.on.get(po)), ("-", pla.dc.get(po))):
            if cover is None:
                continue
            for cube in cover.cubes:
                if cube not in cube_flags:
                    cube_flags[cube] = ["0"] * pla.num_outputs
                    order.append(cube)
                cube_flags[cube][po_index] = kind
    lines.append(f".p {len(order)}")
    for cube in order:
        lines.append(f"{cube} {''.join(cube_flags[cube])}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def random_pla(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_cubes: int,
    seed: int,
    literal_low: int = 2,
    literal_high: Optional[int] = None,
    outputs_per_cube: int = 2,
) -> Pla:
    """A seeded synthetic PLA with benchmark-like structure.

    Cubes draw ``literal_low..literal_high`` literals over a *biased* subset
    of the inputs (earlier inputs appear more often, giving the reconvergence
    real benchmarks have) and tag one or more outputs, so outputs share
    product terms the way multi-output MCNC PLAs do.
    """
    rng = random.Random(seed)
    if literal_high is None:
        literal_high = max(literal_low, min(num_inputs, num_inputs // 2 + 2))
    input_names = [f"x{i}" for i in range(num_inputs)]
    output_names = [f"y{i}" for i in range(num_outputs)]
    # Variable popularity bias: quadratic preference toward low indices.
    weights = [(num_inputs - i) ** 2 for i in range(num_inputs)]
    on_cubes: dict[str, list[Cube]] = {po: [] for po in output_names}
    for _ in range(num_cubes):
        k = rng.randint(literal_low, literal_high)
        variables = set()
        while len(variables) < k:
            variables.add(rng.choices(range(num_inputs), weights=weights)[0])
        cube = Cube.universe(num_inputs)
        for var in variables:
            cube = cube.with_literal(var, rng.randint(0, 1))
        tagged = rng.sample(
            output_names, k=min(num_outputs, rng.randint(1, outputs_per_cube))
        )
        for po in tagged:
            on_cubes[po].append(cube)
    pla = Pla(name, input_names, output_names)
    for po in output_names:
        cover = Cover(num_inputs, on_cubes[po])
        cover.remove_contained()
        pla.on[po] = cover
    pla.validate()
    return pla
