"""The named benchmark registry (mirrors the paper's Table 1).

Every entry builds — deterministically — a mapped netlist through the full
synthesis flow.  Circuits whose functions are public knowledge (the rd/sym
families, comparators, arithmetic) are generated functionally; the rest are
seeded synthetic PLAs with the original I/O counts, scaled to sizes a
pure-Python ATPG can optimize in sensible time (see DESIGN.md §6).

``DEFAULT_SUITE`` is what the Table-1/Table-2 experiments run;
``TRADEOFF_SUITE`` is the Figure-6 subset; the full registry (including the
larger configurations) is ``SUITE``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.bench.functions import (
    ExprBundle,
    alu_exprs,
    adder_exprs,
    comparator_exprs,
    decoder_exprs,
    multiplier_exprs,
    mux_tree_exprs,
    parity_exprs,
    priority_encoder_exprs,
    sym_exprs,
    weight_exprs,
    weight_pla,
)
from repro.bench.pla import Pla, random_pla
from repro.errors import ReproError
from repro.library.cell import Library
from repro.netlist.netlist import Netlist
from repro.synth.flow import SynthesisOptions, synthesize
from repro.synth.mapper import MapOptions, technology_map
from repro.synth.subject import SubjectGraph

SpecBuilder = Callable[[], Union[Pla, ExprBundle]]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registry entry."""

    name: str
    builder: SpecBuilder
    description: str
    #: Corresponding Table-1 circuit, when this is a stand-in.
    paper_name: str
    #: True when the function is a seeded synthetic PLA, not the original.
    synthetic: bool = False
    #: Included in the default experiment run.
    default: bool = False
    #: Included in the Figure-6 trade-off sweep.
    tradeoff: bool = False


def _spec(
    name: str,
    builder: SpecBuilder,
    description: str,
    paper_name: Optional[str] = None,
    synthetic: bool = False,
    default: bool = False,
    tradeoff: bool = False,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        builder=builder,
        description=description,
        paper_name=paper_name or name,
        synthetic=synthetic,
        default=default,
        tradeoff=tradeoff,
    )


SUITE: dict[str, BenchmarkSpec] = {}


def _register(spec: BenchmarkSpec) -> None:
    if spec.name in SUITE:
        raise ReproError(f"duplicate benchmark {spec.name!r}")
    SUITE[spec.name] = spec


# ----------------------------------------------------------------------
# Functional circuits (real behaviour)
# ----------------------------------------------------------------------
_register(_spec(
    "comp", lambda: comparator_exprs("comp", 8),
    "8-bit magnitude comparator (scaled-down MCNC comp)",
    default=True, tradeoff=True,
))
_register(_spec(
    "rd84", lambda: weight_exprs("rd84", 8),
    "8-input ones-count (the rd84 function, multi-level form)",
    default=True, tradeoff=True,
))
_register(_spec(
    "rd53", lambda: weight_pla("rd53", 5),
    "5-input ones-count, two-level spec (rd53)",
    default=True,
))
_register(_spec(
    "9sym", lambda: sym_exprs("9sym", 9, 3, 6),
    "9-input symmetric: 1 iff weight in [3,6]",
    default=True, tradeoff=True,
))
_register(_spec(
    "9symml", lambda: sym_exprs("9symml", 9, 3, 6, linear=True),
    "9sym, alternate (linear-count) multi-level implementation",
    default=True,
))
_register(_spec(
    "Z9sym", lambda: sym_exprs("Z9sym", 9, 3, 6, linear=True, reverse=True),
    "9sym variant (third implementation structure)",
))
_register(_spec(
    "f51m", lambda: multiplier_exprs("f51m", 4),
    "4x4 array multiplier (arithmetic stand-in for f51m)",
    default=True, tradeoff=True,
))
_register(_spec(
    "alu2", lambda: alu_exprs("alu2", 4),
    "4-bit 4-op ALU (stand-in for alu2)",
    default=True, tradeoff=True,
))
_register(_spec(
    "alu4", lambda: alu_exprs("alu4", 8),
    "8-bit 4-op ALU (stand-in for alu4)",
))
_register(_spec(
    "c8", lambda: adder_exprs("c8", 8, carry_in=True),
    "8-bit ripple adder with carry-in (stand-in for c8)",
    default=True,
))
_register(_spec(
    "term1", lambda: mux_tree_exprs("term1", 4),
    "16:1 selector, control-dominated (stand-in for term1)",
    default=True, tradeoff=True,
))
_register(_spec(
    "t481", lambda: random_pla("t481", 16, 1, 36, seed=481, literal_low=3, literal_high=7),
    "16-in/1-out seeded synthetic PLA (t481 I/O counts)",
    synthetic=True, default=True,
))

# ----------------------------------------------------------------------
# Seeded synthetic PLAs with the original I/O counts
# ----------------------------------------------------------------------
_register(_spec(
    "Z5xp1", lambda: random_pla("Z5xp1", 7, 10, 30, seed=51, literal_low=2, literal_high=5, outputs_per_cube=3),
    "7-in/10-out synthetic PLA (Z5xp1 I/O counts)",
    synthetic=True, default=True, tradeoff=True,
))
_register(_spec(
    "clip", lambda: random_pla("clip", 9, 5, 32, seed=909, literal_low=3, literal_high=6, outputs_per_cube=2),
    "9-in/5-out synthetic PLA (clip I/O counts)",
    synthetic=True, default=True, tradeoff=True,
))
_register(_spec(
    "bw", lambda: random_pla("bw", 5, 28, 40, seed=28, literal_low=2, literal_high=4, outputs_per_cube=4),
    "5-in/28-out synthetic PLA (bw I/O counts)",
    synthetic=True, default=True,
))
_register(_spec(
    "misex1", lambda: random_pla("misex1", 8, 7, 24, seed=81, literal_low=2, literal_high=5, outputs_per_cube=3),
    "8-in/7-out synthetic PLA (misex1 I/O counts)",
    synthetic=True, default=True,
))
_register(_spec(
    "sqrt8", lambda: random_pla("sqrt8", 8, 4, 26, seed=64, literal_low=2, literal_high=6, outputs_per_cube=2),
    "8-in/4-out synthetic PLA",
    synthetic=True, default=True,
))
_register(_spec(
    "ttt2", lambda: random_pla("ttt2", 24, 21, 36, seed=242, literal_low=3, literal_high=7, outputs_per_cube=3),
    "24-in/21-out synthetic PLA (ttt2 I/O counts)",
    synthetic=True, default=True,
))
_register(_spec(
    "frg1", lambda: random_pla("frg1", 28, 3, 30, seed=283, literal_low=3, literal_high=8, outputs_per_cube=1),
    "28-in/3-out synthetic PLA (frg1 I/O counts)",
    synthetic=True, default=True,
))
_register(_spec(
    "duke2", lambda: random_pla("duke2", 22, 29, 60, seed=2229, literal_low=3, literal_high=8, outputs_per_cube=3),
    "22-in/29-out synthetic PLA (duke2 I/O counts)",
    synthetic=True,
))
_register(_spec(
    "misex3", lambda: random_pla("misex3", 14, 14, 60, seed=1414, literal_low=3, literal_high=8, outputs_per_cube=3),
    "14-in/14-out synthetic PLA (misex3 I/O counts)",
    synthetic=True,
))
_register(_spec(
    "vda", lambda: random_pla("vda", 17, 39, 70, seed=1739, literal_low=3, literal_high=9, outputs_per_cube=4),
    "17-in/39-out synthetic PLA (vda I/O counts)",
    synthetic=True,
))
_register(_spec(
    "parity16", lambda: parity_exprs("parity16", 16),
    "16-input parity tree",
))
_register(_spec(
    "adder16", lambda: adder_exprs("adder16", 16, carry_in=True),
    "16-bit ripple adder",
))

# Larger Table-1 names for patient (`--full`-style) runs; same protocol,
# just bigger seeded synthetic PLAs with the original I/O counts.
_register(_spec(
    "apex7", lambda: random_pla("apex7", 49, 37, 80, seed=4937, literal_low=3, literal_high=9, outputs_per_cube=3),
    "49-in/37-out synthetic PLA (apex7 I/O counts)", synthetic=True,
))
_register(_spec(
    "x1", lambda: random_pla("x1", 51, 35, 80, seed=5135, literal_low=3, literal_high=9, outputs_per_cube=3),
    "51-in/35-out synthetic PLA (x1 I/O counts)", synthetic=True,
))
_register(_spec(
    "x4", lambda: random_pla("x4", 94, 71, 90, seed=9471, literal_low=3, literal_high=9, outputs_per_cube=3),
    "94-in/71-out synthetic PLA (x4 I/O counts)", synthetic=True,
))
_register(_spec(
    "example2", lambda: random_pla("example2", 85, 66, 90, seed=8566, literal_low=3, literal_high=9, outputs_per_cube=3),
    "85-in/66-out synthetic PLA (example2 I/O counts)", synthetic=True,
))
_register(_spec(
    "ex5", lambda: random_pla("ex5", 8, 63, 80, seed=863, literal_low=2, literal_high=6, outputs_per_cube=5),
    "8-in/63-out synthetic PLA (ex5 I/O counts)", synthetic=True,
))
_register(_spec(
    "C432", lambda: random_pla("C432", 36, 7, 70, seed=432, literal_low=4, literal_high=10, outputs_per_cube=2),
    "36-in/7-out synthetic PLA (C432 I/O counts)", synthetic=True,
))
_register(_spec(
    "i2", lambda: random_pla("i2", 201, 1, 60, seed=201, literal_low=4, literal_high=12, outputs_per_cube=1),
    "201-in/1-out synthetic PLA (i2 I/O counts)", synthetic=True,
))
_register(_spec(
    "pdc", lambda: random_pla("pdc", 16, 40, 90, seed=1640, literal_low=3, literal_high=8, outputs_per_cube=4),
    "16-in/40-out synthetic PLA (pdc I/O counts)", synthetic=True,
))
_register(_spec(
    "spla", lambda: random_pla("spla", 16, 46, 90, seed=1646, literal_low=3, literal_high=8, outputs_per_cube=4),
    "16-in/46-out synthetic PLA (spla I/O counts)", synthetic=True,
))
_register(_spec(
    "table5", lambda: random_pla("table5", 17, 15, 90, seed=1715, literal_low=3, literal_high=9, outputs_per_cube=3),
    "17-in/15-out synthetic PLA (table5 I/O counts)", synthetic=True,
))
_register(_spec(
    "alu4tl", lambda: alu_exprs("alu4tl", 6),
    "6-bit 4-op ALU (stand-in for alu4tl)",
))
_register(_spec(
    "rd73", lambda: weight_exprs("rd73", 7),
    "7-input ones-count (the rd73 function)",
))
_register(_spec(
    "comp16", lambda: comparator_exprs("comp16", 16),
    "16-bit magnitude comparator (full-size comp)",
))
_register(_spec(
    "mul6", lambda: multiplier_exprs("mul6", 6),
    "6x6 array multiplier (larger arithmetic block)",
))
_register(_spec(
    "penc8", lambda: priority_encoder_exprs("penc8", 8),
    "8-input priority encoder",
))
_register(_spec(
    "dec4", lambda: decoder_exprs("dec4", 4),
    "4-to-16 decoder with enable",
))

DEFAULT_SUITE: tuple[str, ...] = tuple(
    name for name, spec in SUITE.items() if spec.default
)
TRADEOFF_SUITE: tuple[str, ...] = tuple(
    name for name, spec in SUITE.items() if spec.tradeoff
)

#: Registry circuits small enough for the full differential-verification
#: pipeline (``powder fuzz --bench``): every oracle tier applies (at most
#: 16 inputs keeps exhaustive simulation in play) and the optimizer runs
#: the circuit several times over within the CI fuzz budget.
FUZZ_SUITE: tuple[str, ...] = ("rd53", "misex1", "sqrt8", "Z5xp1")


def available_benchmarks() -> list[str]:
    return list(SUITE)


def build_benchmark(
    name: str,
    library: Library,
    map_mode: str = "power",
    synthesis_options: Optional[SynthesisOptions] = None,
) -> Netlist:
    """Build a registry circuit into a mapped netlist.

    ``map_mode`` selects the mapper cost ("power" reproduces the paper's
    POSE-style low-power starting point; "area" gives a conventional start).
    """
    spec = SUITE.get(name)
    if spec is None:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {', '.join(SUITE)}"
        )
    built = spec.builder()
    options = synthesis_options or SynthesisOptions(
        map_options=MapOptions(mode=map_mode)
    )
    if isinstance(built, Pla):
        return synthesize(
            built.input_names,
            built.on,
            library,
            dont_cares=built.dc or None,
            options=options,
            name=spec.name,
        )
    graph = SubjectGraph(spec.name)
    for pi in built.input_names:
        graph.add_pi(pi)
    for po, expr in built.outputs.items():
        graph.set_output(po, graph.add_expr(expr))
    return technology_map(graph, library, options.map_options, spec.name)
