"""Functional benchmark generators.

Each function returns either a :class:`~repro.bench.pla.Pla` (for
PLA-style specs) or an expression bundle (input names + per-output
:class:`~repro.logic.expr.Expr`) for circuits, like wide comparators, whose
two-level form would explode.

These implement the circuits whose behaviour is public knowledge:

- ``weight_pla`` — the rd53/rd73/rd84 family: outputs are the binary count
  of ones of the inputs,
- ``sym_pla`` — the 9sym family: 1 iff the input weight lies in a window,
- ``comparator_exprs`` — n-bit magnitude comparator (the ``comp`` family),
- ``adder_exprs`` / ``alu_exprs`` — ripple adders and a small ALU (the
  ``alu2``/``alu4`` stand-ins),
- ``multiplier_exprs`` — array multiplier (``f51m``-style arithmetic),
- ``parity_exprs`` — XOR trees,
- ``mux_tree_exprs`` — wide selectors (term1/example-style control logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.expr import Expr
from repro.logic.sop import Cover, Cube
from repro.bench.pla import Pla


@dataclass
class ExprBundle:
    """Multi-output circuit given as expressions over shared inputs."""

    name: str
    input_names: list[str]
    outputs: dict[str, Expr] = field(default_factory=dict)


# ----------------------------------------------------------------------
# PLA-style specs
# ----------------------------------------------------------------------
def weight_pla(name: str, num_inputs: int) -> Pla:
    """Outputs = binary encoding of the number of ones (rd84 family)."""
    num_outputs = max(1, (num_inputs).bit_length())
    input_names = [f"x{i}" for i in range(num_inputs)]
    output_names = [f"s{j}" for j in range(num_outputs)]
    pla = Pla(name, input_names, output_names)
    cubes: dict[str, list[Cube]] = {po: [] for po in output_names}
    for minterm in range(1 << num_inputs):
        weight = bin(minterm).count("1")
        for j, po in enumerate(output_names):
            if (weight >> j) & 1:
                cubes[po].append(Cube.from_minterm(num_inputs, minterm))
    for po in output_names:
        pla.on[po] = Cover(num_inputs, cubes[po])
    return pla


def sym_pla(name: str, num_inputs: int, low: int, high: int) -> Pla:
    """Single output, 1 iff ``low <= weight <= high`` (9sym: 9, 3, 6)."""
    input_names = [f"x{i}" for i in range(num_inputs)]
    pla = Pla(name, input_names, ["f"])
    cubes = [
        Cube.from_minterm(num_inputs, m)
        for m in range(1 << num_inputs)
        if low <= bin(m).count("1") <= high
    ]
    pla.on["f"] = Cover(num_inputs, cubes)
    return pla


# ----------------------------------------------------------------------
# Expression-style specs
# ----------------------------------------------------------------------
def comparator_exprs(name: str, width: int) -> ExprBundle:
    """n-bit magnitude comparator: gt / lt / eq (the comp family)."""
    a = [f"a{i}" for i in range(width)]
    b = [f"b{i}" for i in range(width)]
    eq_bits = [
        Expr.not_(Expr.xor(Expr.var(a[i]), Expr.var(b[i])))
        for i in range(width)
    ]
    gt_terms = []
    lt_terms = []
    for i in reversed(range(width)):  # bit width-1 is most significant
        higher_eq = eq_bits[i + 1 :]
        gt_core = Expr.and_(Expr.var(a[i]), Expr.not_(Expr.var(b[i])))
        lt_core = Expr.and_(Expr.not_(Expr.var(a[i])), Expr.var(b[i]))
        if higher_eq:
            gt_terms.append(Expr.and_(gt_core, *higher_eq))
            lt_terms.append(Expr.and_(lt_core, *higher_eq))
        else:
            gt_terms.append(gt_core)
            lt_terms.append(lt_core)
    bundle = ExprBundle(name, a + b)
    bundle.outputs["gt"] = (
        gt_terms[0] if len(gt_terms) == 1 else Expr.or_(*gt_terms)
    )
    bundle.outputs["lt"] = (
        lt_terms[0] if len(lt_terms) == 1 else Expr.or_(*lt_terms)
    )
    bundle.outputs["eq"] = (
        eq_bits[0] if len(eq_bits) == 1 else Expr.and_(*eq_bits)
    )
    return bundle


def adder_exprs(name: str, width: int, carry_in: bool = False) -> ExprBundle:
    """Ripple-carry adder: sum bits plus carry out."""
    a = [f"a{i}" for i in range(width)]
    b = [f"b{i}" for i in range(width)]
    inputs = a + b + (["cin"] if carry_in else [])
    bundle = ExprBundle(name, inputs)
    carry: Expr | None = Expr.var("cin") if carry_in else None
    for i in range(width):
        ai, bi = Expr.var(a[i]), Expr.var(b[i])
        if carry is None:
            bundle.outputs[f"s{i}"] = Expr.xor(ai, bi)
            carry = Expr.and_(ai, bi)
        else:
            bundle.outputs[f"s{i}"] = Expr.xor(ai, bi, carry)
            carry = Expr.or_(
                Expr.and_(ai, bi),
                Expr.and_(carry, Expr.xor(ai, bi)),
            )
    bundle.outputs["cout"] = carry
    return bundle


def alu_exprs(name: str, width: int) -> ExprBundle:
    """A small ALU: op selects among ADD / AND / OR / XOR (alu2 stand-in).

    Inputs: a[width], b[width], op0, op1.  Outputs: r[width], cout.
    op = 00 -> ADD, 01 -> AND, 10 -> OR, 11 -> XOR.
    """
    a = [f"a{i}" for i in range(width)]
    b = [f"b{i}" for i in range(width)]
    inputs = a + b + ["op0", "op1"]
    bundle = ExprBundle(name, inputs)
    op0, op1 = Expr.var("op0"), Expr.var("op1")
    is_add = Expr.and_(Expr.not_(op1), Expr.not_(op0))
    is_and = Expr.and_(Expr.not_(op1), op0)
    is_or = Expr.and_(op1, Expr.not_(op0))
    is_xor = Expr.and_(op1, op0)
    carry: Expr | None = None
    for i in range(width):
        ai, bi = Expr.var(a[i]), Expr.var(b[i])
        if carry is None:
            add_bit = Expr.xor(ai, bi)
            carry = Expr.and_(ai, bi)
        else:
            add_bit = Expr.xor(ai, bi, carry)
            carry = Expr.or_(
                Expr.and_(ai, bi), Expr.and_(carry, Expr.xor(ai, bi))
            )
        bundle.outputs[f"r{i}"] = Expr.or_(
            Expr.and_(is_add, add_bit),
            Expr.and_(is_and, Expr.and_(ai, bi)),
            Expr.and_(is_or, Expr.or_(ai, bi)),
            Expr.and_(is_xor, Expr.xor(ai, bi)),
        )
    bundle.outputs["cout"] = Expr.and_(is_add, carry)
    return bundle


def multiplier_exprs(name: str, width: int) -> ExprBundle:
    """Array multiplier: 2·width inputs, 2·width product outputs."""
    a = [f"a{i}" for i in range(width)]
    b = [f"b{i}" for i in range(width)]
    bundle = ExprBundle(name, a + b)
    # Column sums by ripple reduction of partial products.
    columns: list[list[Expr]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(
                Expr.and_(Expr.var(a[i]), Expr.var(b[j]))
            )
    def push_carry(col: int, carry: Expr) -> None:
        # The 2^(2w) bit of a w x w product is always 0, so a carry out of
        # the top column can be dropped without changing the function.
        if col < 2 * width:
            columns[col].append(carry)

    for col in range(2 * width):
        bits = columns[col]
        while len(bits) > 2:
            x, y, z = bits.pop(), bits.pop(), bits.pop()
            bits.append(Expr.xor(x, y, z))  # sum
            push_carry(
                col + 1,
                Expr.or_(
                    Expr.and_(x, y), Expr.and_(x, z), Expr.and_(y, z)
                ),
            )
        if len(bits) == 2:
            x, y = bits
            columns[col] = [Expr.xor(x, y)]
            push_carry(col + 1, Expr.and_(x, y))
        if columns[col]:
            bundle.outputs[f"p{col}"] = columns[col][0]
        else:
            bundle.outputs[f"p{col}"] = Expr.const(False)
    return bundle


def parity_exprs(name: str, num_inputs: int) -> ExprBundle:
    """Single-output odd parity of all inputs."""
    inputs = [f"x{i}" for i in range(num_inputs)]
    bundle = ExprBundle(name, inputs)
    bundle.outputs["p"] = Expr.xor(*[Expr.var(x) for x in inputs])
    return bundle


def mux_tree_exprs(name: str, select_bits: int) -> ExprBundle:
    """A 2^k:1 selector — control-dominated logic (term1-like shape)."""
    n = 1 << select_bits
    data = [f"d{i}" for i in range(n)]
    sels = [f"s{j}" for j in range(select_bits)]
    bundle = ExprBundle(name, data + sels)
    terms = []
    for i in range(n):
        literals = [Expr.var(data[i])]
        for j in range(select_bits):
            s = Expr.var(sels[j])
            literals.append(s if (i >> j) & 1 else Expr.not_(s))
        terms.append(Expr.and_(*literals))
    bundle.outputs["y"] = Expr.or_(*terms)
    return bundle


# ----------------------------------------------------------------------
# Bit-counting (symmetric) circuits, multi-level form
# ----------------------------------------------------------------------
def _add_bit_vectors(a_bits: list[Expr], b_bits: list[Expr]) -> list[Expr]:
    """Ripple addition of two little-endian expression vectors."""
    width = max(len(a_bits), len(b_bits))
    result: list[Expr] = []
    carry: Expr | None = None
    for i in range(width):
        terms = []
        if i < len(a_bits):
            terms.append(a_bits[i])
        if i < len(b_bits):
            terms.append(b_bits[i])
        if carry is not None:
            terms.append(carry)
        if not terms:
            result.append(Expr.const(False))
            continue
        result.append(terms[0] if len(terms) == 1 else Expr.xor(*terms))
        if len(terms) == 2:
            carry = Expr.and_(terms[0], terms[1])
        elif len(terms) == 3:
            x, y, z = terms
            carry = Expr.or_(
                Expr.and_(x, y), Expr.and_(x, z), Expr.and_(y, z)
            )
        else:
            carry = None
    if carry is not None:
        result.append(carry)
    return result


def _count_ones(inputs: list[Expr], linear: bool = False) -> list[Expr]:
    """Little-endian bit vector counting the ones among the inputs.

    ``linear=True`` accumulates one input at a time instead of splitting
    balanced halves — same function, different multi-level structure (used
    to model the 9sym/9symml/Z9sym implementation variants).
    """
    if len(inputs) == 1:
        return [inputs[0]]
    if linear:
        bits = [inputs[0]]
        for x in inputs[1:]:
            bits = _add_bit_vectors(bits, [x])
        return bits
    mid = len(inputs) // 2
    return _add_bit_vectors(
        _count_ones(inputs[:mid]), _count_ones(inputs[mid:])
    )


def weight_exprs(name: str, num_inputs: int) -> ExprBundle:
    """Multi-level rd84-style circuit: outputs = binary weight of inputs."""
    inputs = [f"x{i}" for i in range(num_inputs)]
    bundle = ExprBundle(name, inputs)
    bits = _count_ones([Expr.var(x) for x in inputs])
    for j, bit in enumerate(bits):
        bundle.outputs[f"s{j}"] = bit
    return bundle


def sym_exprs(
    name: str,
    num_inputs: int,
    low: int,
    high: int,
    linear: bool = False,
    reverse: bool = False,
) -> ExprBundle:
    """Multi-level 9sym-style circuit: 1 iff low <= weight <= high."""
    inputs = [f"x{i}" for i in range(num_inputs)]
    bundle = ExprBundle(name, inputs)
    ordered = list(reversed(inputs)) if reverse else inputs
    bits = _count_ones([Expr.var(x) for x in ordered], linear=linear)
    terms = []
    for value in range(low, high + 1):
        literals = []
        for j, bit in enumerate(bits):
            literals.append(bit if (value >> j) & 1 else Expr.not_(bit))
        terms.append(literals[0] if len(literals) == 1 else Expr.and_(*literals))
    bundle.outputs["f"] = terms[0] if len(terms) == 1 else Expr.or_(*terms)
    return bundle


def priority_encoder_exprs(name: str, num_inputs: int) -> ExprBundle:
    """Priority encoder: index of the highest asserted input, plus valid.

    Outputs: e{j} (binary index, highest input wins) and ``valid``.
    """
    inputs = [f"r{i}" for i in range(num_inputs)]
    bundle = ExprBundle(name, inputs)
    width = max(1, (num_inputs - 1).bit_length())

    def wins(i: int) -> Expr:
        literals = [Expr.var(inputs[i])]
        for higher in range(i + 1, num_inputs):
            literals.append(Expr.not_(Expr.var(inputs[higher])))
        return literals[0] if len(literals) == 1 else Expr.and_(*literals)

    win_exprs = [wins(i) for i in range(num_inputs)]
    for j in range(width):
        terms = [win_exprs[i] for i in range(num_inputs) if (i >> j) & 1]
        bundle.outputs[f"e{j}"] = (
            Expr.const(False)
            if not terms
            else (terms[0] if len(terms) == 1 else Expr.or_(*terms))
        )
    vars_ = [Expr.var(x) for x in inputs]
    bundle.outputs["valid"] = vars_[0] if len(vars_) == 1 else Expr.or_(*vars_)
    return bundle


def decoder_exprs(name: str, select_bits: int, enable: bool = True) -> ExprBundle:
    """Binary decoder: 2^k one-hot outputs (optionally gated by enable)."""
    sels = [f"s{j}" for j in range(select_bits)]
    inputs = sels + (["en"] if enable else [])
    bundle = ExprBundle(name, inputs)
    for value in range(1 << select_bits):
        literals = []
        if enable:
            literals.append(Expr.var("en"))
        for j in range(select_bits):
            s = Expr.var(sels[j])
            literals.append(s if (value >> j) & 1 else Expr.not_(s))
        bundle.outputs[f"d{value}"] = (
            literals[0] if len(literals) == 1 else Expr.and_(*literals)
        )
    return bundle
