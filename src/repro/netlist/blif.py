"""BLIF I/O for mapped netlists.

Supported constructs:

- ``.model``, ``.inputs``, ``.outputs``, ``.end`` (with ``\\`` continuation),
- ``.gate <cell> pin=net ... out=net`` — a mapped library gate,
- ``.names`` — only the degenerate forms a mapped netlist needs: constant
  drivers and single-input buffers/inverters (general ``.names`` logic belongs
  to the synthesis front-end, see :mod:`repro.bench.pla`).

Nets that feed primary outputs through a distinct name are connected
directly; a buffer cell is only inserted when the library demands it.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ParseError
from repro.library.cell import Library
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import topological_order


def _logical_lines(text: str) -> list[tuple[int, str]]:
    """Join continuation lines; strip comments; return (lineno, line)."""
    lines: list[tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not pending:
            continue
        if pending:
            line = pending + " " + line.strip()
            pending = ""
        else:
            pending_line = lineno
        if line.endswith("\\"):
            pending = line[:-1].rstrip()
            continue
        if line.strip():
            lines.append((pending_line, line.strip()))
    if pending:
        lines.append((pending_line, pending))
    return lines


def parse_blif(text: str, library: Library, name: str | None = None) -> Netlist:
    """Parse a mapped BLIF description into a :class:`Netlist`."""
    model_name = name or "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    gate_specs: list[tuple[int, str, dict[str, str]]] = []
    names_specs: list[tuple[int, list[str], list[str]]] = []

    lines = _logical_lines(text)
    index = 0
    while index < len(lines):
        lineno, line = lines[index]
        index += 1
        tokens = line.split()
        directive = tokens[0]
        if directive == ".model":
            if len(tokens) > 1 and name is None:
                model_name = tokens[1]
        elif directive == ".inputs":
            inputs.extend(tokens[1:])
        elif directive == ".outputs":
            outputs.extend(tokens[1:])
        elif directive == ".gate":
            if len(tokens) < 3:
                raise ParseError("malformed .gate line", lineno)
            cell_name = tokens[1]
            bindings: dict[str, str] = {}
            for pair in tokens[2:]:
                if "=" not in pair:
                    raise ParseError(f"bad pin binding {pair!r}", lineno)
                pin, net = pair.split("=", 1)
                bindings[pin] = net
            gate_specs.append((lineno, cell_name, bindings))
        elif directive == ".names":
            nets = tokens[1:]
            rows: list[str] = []
            while index < len(lines) and not lines[index][1].startswith("."):
                rows.append(lines[index][1])
                index += 1
            names_specs.append((lineno, nets, rows))
        elif directive == ".end":
            break
        elif directive in (".latch", ".subckt"):
            raise ParseError(f"unsupported construct {directive}", lineno)
        else:
            raise ParseError(f"unknown directive {directive!r}", lineno)

    netlist = Netlist(model_name, library)
    drivers: dict[str, Gate] = {}
    for pi in inputs:
        drivers[pi] = netlist.add_input(pi)

    # Two passes so gates may appear in any order.
    unresolved = list(gate_specs) + [
        (lineno, None, (nets, rows)) for lineno, nets, rows in names_specs
    ]
    progress = True
    while unresolved and progress:
        progress = False
        remaining = []
        for item in unresolved:
            if item[1] is not None:
                lineno, cell_name, bindings = item
                if cell_name not in library:
                    raise ParseError(f"unknown cell {cell_name!r}", lineno)
                cell = library[cell_name]
                extra = set(bindings) - set(cell.pin_names) - {cell.output}
                if extra:
                    raise ParseError(
                        f"cell {cell_name!r}: unknown pins {sorted(extra)}", lineno
                    )
                out_net = bindings.get(cell.output)
                if out_net is None:
                    raise ParseError(
                        f"cell {cell_name!r}: output {cell.output!r} unbound", lineno
                    )
                fanin_nets = []
                ready = True
                for pin in cell.pin_names:
                    net = bindings.get(pin)
                    if net is None:
                        raise ParseError(
                            f"cell {cell_name!r}: input {pin!r} unbound", lineno
                        )
                    if net not in drivers:
                        ready = False
                        break
                    fanin_nets.append(net)
                if not ready:
                    remaining.append(item)
                    continue
                gate = netlist.add_gate(
                    cell, [drivers[n] for n in fanin_nets], name=_unique_net(netlist, out_net)
                )
                drivers[out_net] = gate
                progress = True
            else:
                lineno, _marker, (nets, rows) = item
                gate = _resolve_names(netlist, library, drivers, nets, rows, lineno)
                if gate is None:
                    remaining.append(item)
                    continue
                drivers[nets[-1]] = gate
                progress = True
        unresolved = remaining
    if unresolved:
        raise ParseError(
            f"unresolvable driver for line {unresolved[0][0]} (cycle or missing net)"
        )

    for po in outputs:
        if po not in drivers:
            raise ParseError(f"primary output {po!r} has no driver")
        netlist.set_output(po, drivers[po])
    return netlist


def _unique_net(netlist: Netlist, net: str) -> str:
    return net if net not in netlist.gates else netlist.fresh_name(net + "_")


def _resolve_names(netlist, library, drivers, nets, rows, lineno):
    """Handle the degenerate .names forms used in mapped files."""
    *fanin_nets, out_net = nets
    if len(fanin_nets) == 0:
        value = bool(rows and rows[0].strip() == "1")
        cell = library.constant(value)
        if cell is None:
            raise ParseError(
                f"library lacks a constant-{int(value)} cell for {out_net!r}", lineno
            )
        return netlist.add_gate(cell, [], name=_unique_net(netlist, out_net))
    if len(fanin_nets) == 1:
        if fanin_nets[0] not in drivers:
            return None
        src = drivers[fanin_nets[0]]
        row = rows[0].split() if rows else ["1", "1"]
        if row == ["1", "1"]:
            # Pure alias: connect the sink nets straight to the source stem.
            return src
        if row == ["0", "1"]:
            cell = library.inverter()
            return netlist.add_gate(cell, [src], name=_unique_net(netlist, out_net))
        raise ParseError(f"unsupported .names rows {rows}", lineno)
    raise ParseError(
        ".names with multiple inputs is not a mapped-netlist construct", lineno
    )


def parse_blif_file(path: str | Path, library: Library) -> Netlist:
    path = Path(path)
    return parse_blif(path.read_text(), library, name=path.stem)


def write_blif(netlist: Netlist) -> str:
    """Render a mapped netlist as BLIF ``.gate`` lines."""
    lines = [f".model {netlist.name}"]
    if netlist.input_names:
        lines.append(".inputs " + " ".join(netlist.input_names))
    if netlist.outputs:
        lines.append(".outputs " + " ".join(netlist.outputs))
    # PO ports whose name differs from the driving stem need an alias line.
    for po, driver in netlist.outputs.items():
        if po != driver.name:
            lines.append(f".names {driver.name} {po}")
            lines.append("1 1")
    for gate in topological_order(netlist):
        if gate.is_input:
            continue
        bindings = [
            f"{pin}={fanin.name}"
            for pin, fanin in zip(gate.cell.pin_names, gate.fanins)
        ]
        bindings.append(f"{gate.cell.output}={gate.name}")
        lines.append(f".gate {gate.cell.name} " + " ".join(bindings))
    lines.append(".end")
    return "\n".join(lines) + "\n"
