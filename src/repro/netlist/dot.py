"""Graphviz (DOT) export of netlists.

For quick visual inspection of small circuits and optimizer before/after
diffs:  ``write_dot(netlist)`` renders inputs as boxes, gates as ellipses
labelled ``name\\ncell``, primary outputs as double octagons, and can
highlight a set of gates (e.g. a substitution's dying region or TFO).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.netlist.netlist import Netlist
from repro.netlist.traverse import topological_order


def _quote(name: str) -> str:
    escaped = name.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def write_dot(
    netlist: Netlist,
    highlight: Optional[Iterable[str]] = None,
    rankdir: str = "LR",
) -> str:
    """Render the netlist as a Graphviz digraph."""
    marked = set(highlight or ())
    lines = [
        f"digraph {_quote(netlist.name)} {{",
        f"  rankdir={rankdir};",
        "  node [fontsize=10];",
    ]
    for pi in netlist.input_names:
        lines.append(f"  {_quote(pi)} [shape=box, style=filled, fillcolor=lightblue];")
    for gate in topological_order(netlist):
        if gate.is_input:
            continue
        attrs = [f'label="{gate.name}\\n{gate.cell.name}"']
        if gate.name in marked:
            attrs.append("style=filled")
            attrs.append("fillcolor=orange")
        lines.append(f"  {_quote(gate.name)} [{', '.join(attrs)}];")
    for po, driver in netlist.outputs.items():
        node = f"PO:{po}"
        lines.append(
            f"  {_quote(node)} [shape=doubleoctagon, style=filled, "
            "fillcolor=lightgrey];"
        )
        lines.append(f"  {_quote(driver.name)} -> {_quote(node)};")
    for gate in topological_order(netlist):
        for pin, fanin in enumerate(gate.fanins):
            lines.append(
                f"  {_quote(fanin.name)} -> {_quote(gate.name)} "
                f'[taillabel="", headlabel="{pin}"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
