"""Mapped-netlist data structures and algorithms.

- :mod:`~repro.netlist.netlist` — the mutable gate-level DAG with ordered
  pins, stems/branches and incremental edit operations.
- :mod:`~repro.netlist.traverse` — topological orders, transitive fanin/
  fanout, maximum fanout-free cones (the paper's dominated regions).
- :mod:`~repro.netlist.simulate` — bit-parallel logic simulation with
  incremental re-simulation of fanout cones.
- :mod:`~repro.netlist.blif` — BLIF I/O for mapped netlists.
- :mod:`~repro.netlist.verify` — structural invariant checking.
"""

from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import (
    topological_order,
    transitive_fanin,
    transitive_fanout,
    mffc,
    logic_levels,
)
from repro.netlist.simulate import SimState, random_patterns, exhaustive_patterns
from repro.netlist.blif import parse_blif, write_blif
from repro.netlist.verilog import write_verilog
from repro.netlist.verify import check_netlist

__all__ = [
    "Gate",
    "Netlist",
    "topological_order",
    "transitive_fanin",
    "transitive_fanout",
    "mffc",
    "logic_levels",
    "SimState",
    "random_patterns",
    "exhaustive_patterns",
    "parse_blif",
    "write_blif",
    "write_verilog",
    "check_netlist",
]
