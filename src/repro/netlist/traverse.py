"""Graph traversals over netlists.

Includes the paper's structural notions: transitive fanout ``TFO(s)``,
transitive fanin, and the *dominated region* ``Dom(s)`` — the set of gates
every one of whose output paths passes through ``s``.  When a stem is
substituted away, exactly this region becomes dead; it coincides with the
maximum fanout-free cone (MFFC) rooted at the gate, which :func:`mffc`
computes by virtual fanout peeling.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import NetlistError
from repro.netlist.netlist import Gate, Netlist


def topological_order(netlist: Netlist) -> list[Gate]:
    """Gates in fanin-before-fanout order (PIs first).  Cached per edit."""
    cached = netlist._topo_cache
    if cached is not None:
        return cached
    order: list[Gate] = []
    state: dict[int, int] = {}  # 0 = visiting, 1 = done
    for root in netlist.gates.values():
        if id(root) in state:
            continue
        stack: list[tuple[Gate, int]] = [(root, 0)]
        while stack:
            gate, child = stack[-1]
            if child == 0:
                marker = state.get(id(gate))
                if marker == 1:
                    stack.pop()
                    continue
                if marker == 0:
                    raise NetlistError(
                        f"combinational cycle through {gate.name!r}"
                    )
                state[id(gate)] = 0
            if child < len(gate.fanins):
                stack[-1] = (gate, child + 1)
                nxt = gate.fanins[child]
                if state.get(id(nxt)) != 1:
                    stack.append((nxt, 0))
            else:
                state[id(gate)] = 1
                order.append(gate)
                stack.pop()
    netlist._topo_cache = order
    return order


def topological_index(netlist: Netlist) -> dict[int, int]:
    """``id(gate) -> position`` in the topological order (cached per edit)."""
    cached = getattr(netlist, "_topo_index_cache", None)
    order = topological_order(netlist)
    if cached is not None and cached[0] is order:
        return cached[1]
    index = {id(g): i for i, g in enumerate(order)}
    netlist._topo_index_cache = (order, index)
    return index


def transitive_fanout(netlist: Netlist, roots: Iterable[Gate]) -> list[Gate]:
    """TFO of the given stems, in topological order (roots excluded).

    One forward sweep carrying reachability as an integer bitset over
    topological positions — considerably cheaper than per-gate set lookups
    on the optimizer's hot path.
    """
    order = topological_order(netlist)
    index = topological_index(netlist)
    root_bits = 0
    for gate in roots:
        root_bits |= 1 << index[id(gate)]
    if not root_bits:
        return []
    reach_bits = 0
    start = (root_bits & -root_bits).bit_length()  # first position after min root
    for i in range(start, len(order)):
        gate = order[i]
        bit = 1 << i
        if root_bits & bit:
            continue
        for fanin in gate.fanins:
            j = index[id(fanin)]
            if (root_bits | reach_bits) >> j & 1:
                reach_bits |= bit
                break
    return [order[i] for i in range(len(order)) if (reach_bits >> i) & 1]


def transitive_fanin(netlist: Netlist, roots: Iterable[Gate]) -> list[Gate]:
    """TFI of the given gates, topological order (roots excluded)."""
    seen: set[int] = set()
    result_ids: set[int] = set()
    stack = list(roots)
    root_ids = {id(g) for g in stack}
    while stack:
        gate = stack.pop()
        for fanin in gate.fanins:
            if id(fanin) not in seen:
                seen.add(id(fanin))
                result_ids.add(id(fanin))
                stack.append(fanin)
    result_ids -= root_ids
    return [g for g in topological_order(netlist) if id(g) in result_ids]


def mffc(netlist: Netlist, root: Gate) -> list[Gate]:
    """Maximum fanout-free cone of ``root`` — the paper's ``Dom(root)``.

    Returns the logic gates (root included, primary inputs excluded) that die
    when the root's stem is disconnected, i.e. the gates all of whose paths
    to primary outputs run through ``root``.  Computed by virtually removing
    the root and peeling gates whose remaining fanout count reaches zero.
    """
    if root.is_input:
        return []
    region: list[Gate] = [root]
    region_ids = {id(root)}
    # Remaining external fanout count for gates we are considering.
    pending: dict[int, int] = {}
    worklist = list(root.fanins)
    for gate in worklist:
        pending[id(gate)] = pending.get(id(gate), 0)
    # Breadth: repeatedly try to absorb fanins whose every branch lands in
    # the region and that drive no primary output.
    changed = True
    while changed:
        changed = False
        candidates: dict[int, Gate] = {}
        for gate in region:
            for fanin in gate.fanins:
                if not fanin.is_input and id(fanin) not in region_ids:
                    candidates[id(fanin)] = fanin
        for gate in candidates.values():
            if gate.po_names:
                continue
            if all(id(sink) in region_ids for sink, _pin in gate.fanouts):
                region.append(gate)
                region_ids.add(id(gate))
                changed = True
    return region


def region_inputs(netlist: Netlist, region: list[Gate]) -> list[Gate]:
    """Gates outside the region with a direct fanout into it.

    This is the paper's ``inputs(Dom(s))`` (eq. 3's second sum).
    """
    region_ids = {id(g) for g in region}
    found: dict[int, Gate] = {}
    for gate in region:
        for fanin in gate.fanins:
            if id(fanin) not in region_ids:
                found.setdefault(id(fanin), fanin)
    return list(found.values())


def logic_levels(netlist: Netlist) -> dict[str, int]:
    """Level of each gate: PIs at 0, otherwise 1 + max fanin level."""
    levels: dict[str, int] = {}
    for gate in topological_order(netlist):
        if gate.is_input or not gate.fanins:
            levels[gate.name] = 0
        else:
            levels[gate.name] = 1 + max(levels[f.name] for f in gate.fanins)
    return levels
