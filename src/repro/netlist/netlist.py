"""The mapped netlist: a DAG of library gates with ordered pins.

Terminology follows the paper (§2): the output signal of a gate is a *stem*;
each connection of that stem to a fanout pin is a *branch*.  A gate is
identified by its unique name, which also names its output signal.

Primary inputs are gates with ``cell is None``.  Primary outputs are named
ports; each port connects to one driving gate and contributes a fixed load
capacitance to its stem.

The class supports the incremental edits the optimizer needs —
:meth:`Netlist.replace_fanin` (input substitution), :meth:`Netlist.replace_fanouts`
(output substitution), :meth:`Netlist.add_gate`, :meth:`Netlist.remove_gate`,
and :meth:`Netlist.sweep_dead` — keeping fanout bookkeeping consistent and
rejecting edits that would create a combinational cycle.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from repro.errors import NetlistError
from repro.library.cell import Cell, Library

#: Default capacitive load a primary output presents to its driver.
DEFAULT_PO_LOAD = 1.0


class Gate:
    """One gate instance (or primary input) in a netlist."""

    __slots__ = ("name", "cell", "fanins", "fanouts", "po_names", "uid")

    def __init__(self, name: str, cell: Optional[Cell], uid: int):
        self.name = name
        self.cell = cell
        #: Ordered driving gates, one per input pin.
        self.fanins: list["Gate"] = []
        #: (sink gate, pin index) pairs fed by this gate's stem.
        self.fanouts: list[tuple["Gate", int]] = []
        #: Primary-output ports driven by this gate.
        self.po_names: list[str] = []
        self.uid = uid

    # ------------------------------------------------------------------
    @property
    def is_input(self) -> bool:
        return self.cell is None

    @property
    def num_inputs(self) -> int:
        return len(self.fanins)

    def fanout_count(self) -> int:
        """Number of branches (gate pins plus PO ports)."""
        return len(self.fanouts) + len(self.po_names)

    def fanout_gates(self) -> list["Gate"]:
        """Distinct sink gates, in connection order."""
        seen: dict[int, Gate] = {}
        for sink, _pin in self.fanouts:
            seen.setdefault(id(sink), sink)
        return list(seen.values())

    def __repr__(self) -> str:
        kind = "PI" if self.is_input else self.cell.name
        return f"Gate({self.name!r}, {kind})"


class Netlist:
    """A combinational gate-level netlist."""

    def __init__(self, name: str, library: Optional[Library] = None):
        self.name = name
        self.library = library
        self.gates: dict[str, Gate] = {}
        self.input_names: list[str] = []
        #: PO port name -> driving gate.
        self.outputs: dict[str, Gate] = {}
        #: PO port name -> load capacitance.
        self.output_loads: dict[str, float] = {}
        self._uid_counter = 0
        self._name_counter = 0
        self._topo_cache: Optional[list[Gate]] = None
        #: Bumped on every structural edit; lets observers (the pipeline
        #: contract checker) detect mutation without hashing the graph.
        self.structural_version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _fresh_uid(self) -> int:
        self._uid_counter += 1
        return self._uid_counter

    def fresh_name(self, prefix: str = "n") -> str:
        """A gate name not yet used in this netlist."""
        while True:
            self._name_counter += 1
            name = f"{prefix}{self._name_counter}"
            if name not in self.gates and name not in self.outputs:
                return name

    def add_input(self, name: str) -> Gate:
        if name in self.gates:
            raise NetlistError(f"duplicate gate name {name!r}")
        gate = Gate(name, None, self._fresh_uid())
        self.gates[name] = gate
        self.input_names.append(name)
        self._invalidate()
        return gate

    def add_gate(
        self,
        cell: Cell,
        fanins: Sequence[Gate],
        name: Optional[str] = None,
    ) -> Gate:
        """Instantiate ``cell`` driven by ``fanins`` (pin order = cell order)."""
        if len(fanins) != cell.num_inputs:
            raise NetlistError(
                f"cell {cell.name!r} needs {cell.num_inputs} fanins, got {len(fanins)}"
            )
        if name is None:
            name = self.fresh_name()
        if name in self.gates:
            raise NetlistError(f"duplicate gate name {name!r}")
        for driver in fanins:
            self._check_member(driver)
        gate = Gate(name, cell, self._fresh_uid())
        self.gates[name] = gate
        for pin, driver in enumerate(fanins):
            gate.fanins.append(driver)
            driver.fanouts.append((gate, pin))
        self._invalidate()
        return gate

    def set_output(
        self, po_name: str, driver: Gate, load: float = DEFAULT_PO_LOAD
    ) -> None:
        """Connect (or reconnect) a primary-output port to ``driver``."""
        self._check_member(driver)
        old = self.outputs.get(po_name)
        if old is not None:
            old.po_names.remove(po_name)
        self.outputs[po_name] = driver
        self.output_loads[po_name] = load
        driver.po_names.append(po_name)
        self._invalidate()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _check_member(self, gate: Gate) -> None:
        if self.gates.get(gate.name) is not gate:
            raise NetlistError(f"gate {gate.name!r} does not belong to {self.name!r}")

    def gate(self, name: str) -> Gate:
        try:
            return self.gates[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r}") from None

    def inputs(self) -> list[Gate]:
        return [self.gates[n] for n in self.input_names]

    def output_names(self) -> list[str]:
        return list(self.outputs)

    def logic_gates(self) -> Iterator[Gate]:
        """All non-input gates (arbitrary order)."""
        return (g for g in self.gates.values() if not g.is_input)

    def num_gates(self) -> int:
        """Number of logic gates (primary inputs excluded)."""
        return sum(1 for _ in self.logic_gates())

    def __contains__(self, name: str) -> bool:
        return name in self.gates

    def __len__(self) -> int:
        return len(self.gates)

    # ------------------------------------------------------------------
    # Electrical quantities
    # ------------------------------------------------------------------
    def load_of(self, gate: Gate) -> float:
        """Total capacitance C(s) driven by the gate's stem (eq. 1)."""
        total = 0.0
        for sink, pin in gate.fanouts:
            total += sink.cell.pins[pin].load
        for po in gate.po_names:
            total += self.output_loads[po]
        return total

    def total_area(self) -> float:
        return sum(g.cell.area for g in self.logic_gates())

    # ------------------------------------------------------------------
    # Incremental edits
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._topo_cache = None
        self.structural_version += 1

    def would_create_cycle(self, driver: Gate, sink: Gate) -> bool:
        """True if connecting driver -> sink closes a combinational loop."""
        if driver is sink:
            return True
        # Cycle iff sink reaches driver through existing edges.
        stack = [sink]
        seen = {id(sink)}
        while stack:
            gate = stack.pop()
            for out, _pin in gate.fanouts:
                if out is driver:
                    return True
                if id(out) not in seen:
                    seen.add(id(out))
                    stack.append(out)
        return False

    def replace_fanin(self, sink: Gate, pin: int, new_driver: Gate) -> Gate:
        """Reconnect one input branch (the IS2 edit).  Returns the old driver."""
        self._check_member(sink)
        self._check_member(new_driver)
        if not 0 <= pin < sink.num_inputs:
            raise NetlistError(f"gate {sink.name!r} has no pin {pin}")
        old_driver = sink.fanins[pin]
        if old_driver is new_driver:
            return old_driver
        if self.would_create_cycle(new_driver, sink):
            raise NetlistError(
                f"connecting {new_driver.name!r} to {sink.name!r} creates a cycle"
            )
        old_driver.fanouts.remove((sink, pin))
        sink.fanins[pin] = new_driver
        new_driver.fanouts.append((sink, pin))
        self._invalidate()
        return old_driver

    def replace_fanouts(self, old: Gate, new: Gate) -> None:
        """Move every branch of ``old`` (pins and POs) to ``new`` (OS2 edit)."""
        self._check_member(old)
        self._check_member(new)
        if old is new:
            return
        for sink, _pin in old.fanouts:
            if sink is not old and self.would_create_cycle(new, sink):
                raise NetlistError(
                    f"substituting {old.name!r} by {new.name!r} creates a cycle"
                )
        for sink, pin in list(old.fanouts):
            sink.fanins[pin] = new
            new.fanouts.append((sink, pin))
        old.fanouts.clear()
        for po in list(old.po_names):
            self.outputs[po] = new
            new.po_names.append(po)
        old.po_names.clear()
        self._invalidate()

    def remove_gate(self, gate: Gate) -> None:
        """Delete a fanout-free logic gate."""
        self._check_member(gate)
        if gate.is_input:
            raise NetlistError(f"cannot remove primary input {gate.name!r}")
        if gate.fanout_count():
            raise NetlistError(f"gate {gate.name!r} still has fanout")
        for pin, driver in enumerate(gate.fanins):
            driver.fanouts.remove((gate, pin))
        gate.fanins.clear()
        del self.gates[gate.name]
        self._invalidate()

    def sweep_dead(self, boundary: Optional[list["Gate"]] = None) -> list[str]:
        """Remove all fanout-free logic gates transitively; returns names.

        When ``boundary`` is given, surviving drivers of removed gates are
        appended to it (deduplicated) — these are the gates whose fanout
        lists the sweep shrank, which incremental caches must treat as
        dirty.
        """
        removed: list[str] = []
        touched: dict[int, Gate] = {}
        worklist = [g for g in self.logic_gates() if not g.fanout_count()]
        while worklist:
            gate = worklist.pop()
            if gate.name not in self.gates or gate.fanout_count():
                continue
            drivers = list(gate.fanins)
            self.remove_gate(gate)
            removed.append(gate.name)
            for driver in drivers:
                touched[id(driver)] = driver
                if not driver.is_input and not driver.fanout_count():
                    worklist.append(driver)
        if boundary is not None:
            seen = {id(g) for g in boundary}
            for driver in touched.values():
                if driver.name in self.gates and id(driver) not in seen:
                    boundary.append(driver)
        return removed

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep structural copy (cells are shared, gates re-created)."""
        clone = Netlist(name or self.name, self.library)
        mapping: dict[int, Gate] = {}
        for pi in self.input_names:
            mapping[id(self.gates[pi])] = clone.add_input(pi)
        from repro.netlist.traverse import topological_order

        for gate in topological_order(self):
            if gate.is_input:
                continue
            fanins = [mapping[id(f)] for f in gate.fanins]
            mapping[id(gate)] = clone.add_gate(gate.cell, fanins, name=gate.name)
        for po, driver in self.outputs.items():
            clone.set_output(po, mapping[id(driver)], self.output_loads[po])
        # Keep fresh_name in lockstep with the source so a move log
        # recorded on the original replays verbatim on the copy (replayed
        # moves may reference gates earlier moves created by fresh name).
        clone._name_counter = self._name_counter
        return clone

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, {len(self.input_names)} PI, "
            f"{len(self.outputs)} PO, {self.num_gates()} gates)"
        )


def signals(netlist: Netlist) -> Iterable[Gate]:
    """All stem signals (primary inputs and gate outputs)."""
    return netlist.gates.values()
