"""Structural Verilog writer for mapped netlists.

Emits one module per netlist: library cells become module instances, the
cell library itself is emitted as behavioural leaf modules (``assign``
expressions derived from each cell's genlib function), so the output is
self-contained and simulates in any Verilog tool.

Identifiers are sanitised to Verilog rules; a name map is returned for
callers that need to correlate signals.
"""

from __future__ import annotations

import re

from repro.library.cell import Cell
from repro.logic.expr import AND, CONST, NOT, OR, VAR, XOR, Expr
from repro.netlist.netlist import Netlist
from repro.netlist.traverse import topological_order

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")
_KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "assign", "not",
    "and", "or", "xor", "nand", "nor", "xnor", "buf", "reg", "always",
}


def _sanitize(name: str, used: set[str]) -> str:
    candidate = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    if not candidate or not _ID_RE.match(candidate) or candidate in _KEYWORDS:
        candidate = "n_" + candidate
    base = candidate
    suffix = 1
    while candidate in used:
        suffix += 1
        candidate = f"{base}_{suffix}"
    used.add(candidate)
    return candidate


def _expr_to_verilog(expr: Expr) -> str:
    if expr.kind == CONST:
        return "1'b1" if expr.value else "1'b0"
    if expr.kind == VAR:
        return expr.name
    if expr.kind == NOT:
        return f"~({_expr_to_verilog(expr.children[0])})"
    symbol = {AND: " & ", OR: " | ", XOR: " ^ "}[expr.kind]
    return "(" + symbol.join(_expr_to_verilog(c) for c in expr.children) + ")"


def _cell_module(cell: Cell) -> str:
    ports = list(cell.pin_names) + [cell.output]
    lines = [f"module {cell.name} (" + ", ".join(ports) + ");"]
    for pin in cell.pin_names:
        lines.append(f"  input {pin};")
    lines.append(f"  output {cell.output};")
    lines.append(
        f"  assign {cell.output} = {_expr_to_verilog(cell.expression)};"
    )
    lines.append("endmodule")
    return "\n".join(lines)


def write_verilog(
    netlist: Netlist, include_cell_models: bool = True
) -> str:
    """Render the netlist as self-contained structural Verilog."""
    used: set[str] = set()
    names: dict[str, str] = {}
    for gate_name in netlist.gates:
        names[gate_name] = _sanitize(gate_name, used)
    po_names = {po: _sanitize(po, used) for po in netlist.outputs}

    ports = [names[pi] for pi in netlist.input_names] + list(po_names.values())
    lines = [f"module {_sanitize(netlist.name, set())} ("]
    lines.append("  " + ",\n  ".join(ports))
    lines.append(");")
    for pi in netlist.input_names:
        lines.append(f"  input {names[pi]};")
    for po in netlist.outputs:
        lines.append(f"  output {po_names[po]};")
    wires = [
        names[g.name]
        for g in netlist.logic_gates()
    ]
    if wires:
        lines.append("  wire " + ", ".join(sorted(wires)) + ";")

    used_cells: dict[str, Cell] = {}
    for index, gate in enumerate(topological_order(netlist)):
        if gate.is_input:
            continue
        used_cells[gate.cell.name] = gate.cell
        bindings = [
            f".{pin}({names[fanin.name]})"
            for pin, fanin in zip(gate.cell.pin_names, gate.fanins)
        ]
        bindings.append(f".{gate.cell.output}({names[gate.name]})")
        lines.append(
            f"  {gate.cell.name} u{index} (" + ", ".join(bindings) + ");"
        )
    for po, driver in netlist.outputs.items():
        lines.append(f"  assign {po_names[po]} = {names[driver.name]};")
    lines.append("endmodule")

    if include_cell_models:
        for cell in sorted(used_cells.values(), key=lambda c: c.name):
            lines.append("")
            lines.append(_cell_module(cell))
    return "\n".join(lines) + "\n"
