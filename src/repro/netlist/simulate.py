"""Bit-parallel logic simulation.

Signal values are numpy ``uint64`` arrays: bit *b* of word *w* is the value
under pattern ``64*w + b``.  A :class:`SimState` binds a netlist to a pattern
set and keeps one value array per stem, supporting:

- full evaluation in topological order,
- incremental re-simulation of the transitive fanout of edited gates
  (what makes the optimizer's ``PG_C`` re-estimation cheap),
- forced-value propagation without touching the committed state, used to
  compute observability masks for stems and branches.

Gate evaluation goes through a per-cell compiled cube list (an irredundant
SOP of the cell function), so any library cell simulates in a handful of
vector ops.  Full re-simulation and forced-value propagation run on the
packed flat-array kernels (:mod:`repro.kernels.packed`) — one vectorized
operation per level × op group instead of a dict walk per gate — and are
bit-identical to the per-gate evaluation they replace.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Optional

import numpy as np

from repro.errors import NetlistError
from repro.kernels.words import (
    WORD_BITS,
    popcount,
    validate_num_patterns,
)
from repro.library.cell import Cell
from repro.logic.sop import Cover
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import (
    topological_index,
    topological_order,
    transitive_fanout,
)

#: Default number of random patterns for probability estimation.
DEFAULT_NUM_PATTERNS = 16384

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

# Compiled cube lists, keyed by (nvars, truth-table bits).
_CELL_CUBES: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}


def _compiled_cubes(cell: Cell) -> tuple[tuple[int, int], ...]:
    """(care, values) literal masks of an irredundant SOP of the cell."""
    key = (cell.function.nvars, cell.function.bits)
    cached = _CELL_CUBES.get(key)
    if cached is None:
        cover = Cover.from_truthtable(cell.function)
        while cover.merge_distance_one():
            pass
        cover.remove_contained()
        cached = tuple((cube.care, cube.values) for cube in cover.cubes)
        _CELL_CUBES[key] = cached
    return cached


def evaluate_cell(cell: Cell, fanin_words: Sequence[np.ndarray], nwords: int) -> np.ndarray:
    """Vector-evaluate one cell on its fanin value words."""
    if cell.num_inputs != len(fanin_words):
        raise NetlistError(
            f"cell {cell.name!r}: expected {cell.num_inputs} fanin words"
        )
    result = np.zeros(nwords, dtype=np.uint64)
    for care, values in _compiled_cubes(cell):
        term = np.full(nwords, _ALL_ONES, dtype=np.uint64)
        var = 0
        care_left = care
        while care_left:
            if care_left & 1:
                word = fanin_words[var]
                term &= word if (values >> var) & 1 else ~word
            care_left >>= 1
            var += 1
        result |= term
    return result


def random_patterns(
    input_names: Sequence[str],
    num_patterns: int = DEFAULT_NUM_PATTERNS,
    seed: int = 2024,
    input_probs: Optional[Mapping[str, float]] = None,
) -> dict[str, np.ndarray]:
    """Generate per-input random pattern words.

    ``input_probs`` gives P(input = 1) per name (default 0.5).  Biased
    probabilities are realised by thresholding uniform bytes per bit, so the
    sample respects the requested bias in expectation.
    """
    nwords = validate_num_patterns(num_patterns)
    rng = np.random.default_rng(seed)
    patterns: dict[str, np.ndarray] = {}
    for name in input_names:
        p = 0.5 if input_probs is None else float(input_probs.get(name, 0.5))
        if p == 0.5:
            patterns[name] = rng.integers(
                0, 2**64, size=nwords, dtype=np.uint64
            )
        else:
            bits = rng.random(num_patterns) < p
            packed = np.packbits(bits, bitorder="little")
            patterns[name] = packed.view(np.uint64).copy()
    return patterns


def exhaustive_patterns(input_names: Sequence[str]) -> dict[str, np.ndarray]:
    """All ``2**n`` input combinations (n <= 20 to stay bounded)."""
    n = len(input_names)
    if n > 20:
        raise NetlistError("exhaustive simulation limited to 20 inputs")
    total = max(WORD_BITS, 1 << n)
    nwords = total // WORD_BITS
    patterns: dict[str, np.ndarray] = {}
    index = np.arange(total, dtype=np.uint64)
    for var, name in enumerate(input_names):
        bits = (index >> np.uint64(var)) & np.uint64(1)
        packed = np.packbits(bits.astype(bool), bitorder="little")
        patterns[name] = packed.view(np.uint64).copy()
    return patterns


class SimState:
    """Committed simulation values for one netlist and pattern set."""

    def __init__(self, netlist: Netlist, patterns: Mapping[str, np.ndarray]):
        self.netlist = netlist
        missing = [n for n in netlist.input_names if n not in patterns]
        if missing:
            raise NetlistError(f"patterns missing for inputs {missing}")
        first = patterns[netlist.input_names[0]] if netlist.input_names else None
        self.nwords = len(first) if first is not None else 1
        self.num_patterns = self.nwords * WORD_BITS
        self.values: dict[str, np.ndarray] = {}
        for name in netlist.input_names:
            word = np.asarray(patterns[name], dtype=np.uint64)
            if len(word) != self.nwords:
                raise NetlistError("inconsistent pattern word counts")
            self.values[name] = word
        #: Committed values as one packed (num_gates, nwords) matrix, row
        #: order matching the packed view it was built against.  Lazy:
        #: ``None`` whenever values changed since the last build.
        self._matrix: Optional[np.ndarray] = None
        self._matrix_packed = None
        self.resimulate_all()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _eval(self, gate: Gate, values: Mapping[str, np.ndarray]) -> np.ndarray:
        fanin_words = [values[f.name] for f in gate.fanins]
        return evaluate_cell(gate.cell, fanin_words, self.nwords)

    def matrix(self) -> np.ndarray:
        """Committed values as the packed view's ``(num_gates, nwords)`` matrix.

        Row *i* is the value word of ``packed_view(netlist).order[i]``.
        Rebuilt lazily after any value change or structural edit; the
        returned array is never mutated in place (kernels copy), so rows
        may be aliased by ``values`` entries safely.
        """
        from repro.kernels.packed import packed_view

        packed = packed_view(self.netlist)
        if self._matrix is not None and self._matrix_packed is packed:
            return self._matrix
        self._matrix = np.stack([self.values[name] for name in packed.names])
        self._matrix_packed = packed
        return self._matrix

    def resimulate_all(self) -> None:
        """Full forward evaluation on the packed level-grouped kernels."""
        from repro.kernels.packed import packed_view

        packed = packed_view(self.netlist)
        matrix = packed.simulate(self.values, self.nwords)
        # Rebind every stem to its matrix row: dead gates drop out, rows
        # are views (the matrix is immutable once built).
        self.values = {
            name: matrix[i] for i, name in enumerate(packed.names)
        }
        self._matrix = matrix
        self._matrix_packed = packed

    def _drop_stale(self) -> None:
        live = set(self.netlist.gates)
        for name in [n for n in self.values if n not in live]:
            del self.values[name]

    def resimulate_fanout(self, roots: Iterable[Gate]) -> list[Gate]:
        """Re-evaluate roots and their TFO; returns gates whose value changed.

        Each gate is evaluated exactly once, in topological order: a root
        lying inside another root's transitive fanout is *not* visited twice
        (and consequently appears at most once in the returned list).
        """
        changed: list[Gate] = []
        root_list = list(roots)
        pending: list[Gate] = []
        seen: set[int] = set()
        for gate in root_list + transitive_fanout(self.netlist, root_list):
            if gate.is_input or id(gate) in seen:
                continue
            seen.add(id(gate))
            pending.append(gate)
        index = topological_index(self.netlist)
        pending.sort(key=lambda g: index[id(g)])
        for gate in pending:
            new = self._eval(gate, self.values)
            old = self.values.get(gate.name)
            if old is None or not np.array_equal(new, old):
                self.values[gate.name] = new
                changed.append(gate)
        self._drop_stale()
        self._matrix = None
        return changed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def value(self, name: str) -> np.ndarray:
        try:
            return self.values[name]
        except KeyError:
            raise NetlistError(f"no simulated value for {name!r}") from None

    def ones_count(self, name: str) -> int:
        return int(popcount(self.value(name)))

    def signal_probability(self, name: str) -> float:
        return self.ones_count(name) / self.num_patterns

    def output_words(self) -> dict[str, np.ndarray]:
        return {
            po: self.value(driver.name)
            for po, driver in self.netlist.outputs.items()
        }

    # ------------------------------------------------------------------
    # Forced-value propagation (no committed-state mutation)
    # ------------------------------------------------------------------
    def propagate_forced(
        self, forced: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Propagate overridden stem values through their TFO.

        Returns a name -> value mapping holding the *overlay*: forced stems,
        plus every TFO gate whose value differs under the overlay.  Committed
        values are untouched.
        """
        from repro.kernels.packed import packed_view

        packed = packed_view(self.netlist)
        forced_idx = {
            packed.index[name]: np.asarray(word, dtype=np.uint64)
            for name, word in forced.items()
        }
        overlay = packed.propagate_overlay(self.matrix(), forced_idx)
        return {packed.names[i]: word for i, word in overlay.items()}

    def stem_observability(self, gate: Gate) -> np.ndarray:
        """Patterns on which flipping the stem flips some primary output."""
        from repro.kernels.packed import packed_view

        packed = packed_view(self.netlist)
        return packed.flip_mask(
            self.matrix(), packed.index[gate.name], self.nwords
        )

    def branch_observability(self, sink: Gate, pin: int) -> np.ndarray:
        """Patterns on which flipping one input branch flips some output."""
        if sink.is_input:
            raise NetlistError("primary inputs have no input branches")
        fanin_words = [
            ~self.values[f.name] if i == pin else self.values[f.name]
            for i, f in enumerate(sink.fanins)
        ]
        flipped_sink = evaluate_cell(sink.cell, fanin_words, self.nwords)
        if np.array_equal(flipped_sink, self.values[sink.name]):
            return np.zeros(self.nwords, dtype=np.uint64)
        from repro.kernels.packed import packed_view

        packed = packed_view(self.netlist)
        overlay = packed.propagate_overlay(
            self.matrix(), {packed.index[sink.name]: flipped_sink}
        )
        return packed.output_diff_mask(self.matrix(), overlay, self.nwords)
