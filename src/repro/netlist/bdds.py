"""Global BDD construction for netlists.

Builds one ROBDD per stem over the primary inputs.  Used by the exact
probability engine and as the equivalence oracle's fallback for circuits
whose miters defeat plain PODEM (XOR/carry chains have linear-sized BDDs
but exponential branch-and-bound search trees).

Construction is bounded by the manager's node limit;
:class:`~repro.logic.bdd.BddSizeError` propagates to the caller, which
treats it as "fallback unavailable".
"""

from __future__ import annotations

from typing import Optional

from repro.logic.bdd import BddManager
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.traverse import topological_order


def build_gate_bdd(
    manager: BddManager, gate: Gate, nodes: dict[str, int]
) -> int:
    """Compose a gate's cell function over its fanin BDDs."""
    table = gate.cell.function
    fanin_nodes = [nodes[f.name] for f in gate.fanins]

    def expand(var: int, bits: int) -> int:
        if var == table.nvars:
            return manager.constant(bool(bits & 1))
        remaining = table.nvars - var
        zero_bits = 0
        one_bits = 0
        for m in range(1 << remaining):
            if (bits >> m) & 1:
                if m & 1:
                    one_bits |= 1 << (m >> 1)
                else:
                    zero_bits |= 1 << (m >> 1)
        low = expand(var + 1, zero_bits)
        high = expand(var + 1, one_bits)
        if low == high:
            return low
        return manager.apply_ite(fanin_nodes[var], high, low)

    return expand(0, table.bits)


def netlist_bdds(
    netlist: Netlist,
    manager: Optional[BddManager] = None,
    node_limit: int = 2_000_000,
    input_order: Optional[list[str]] = None,
) -> tuple[BddManager, dict[str, int]]:
    """(manager, stem name -> BDD node) for every stem of the netlist.

    ``input_order`` fixes the variable order (default: the netlist's input
    list); pass the same order when comparing two netlists in one manager.
    """
    order = input_order or list(netlist.input_names)
    if manager is None:
        manager = BddManager(len(order), node_limit)
    index = {name: i for i, name in enumerate(order)}
    nodes: dict[str, int] = {}
    for gate in topological_order(netlist):
        if gate.is_input:
            nodes[gate.name] = manager.variable(index[gate.name])
        else:
            nodes[gate.name] = build_gate_bdd(manager, gate, nodes)
    return manager, nodes
