"""Structural invariant checking for netlists.

:func:`check_netlist` asserts every invariant the rest of the system relies
on (consistent fanin/fanout bookkeeping, acyclicity, pin arities, live
outputs).  The optimizer calls it in its own self-check mode and the test
suite calls it after every transformation.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.netlist import Netlist
from repro.netlist.traverse import topological_order


def check_netlist(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` on any broken structural invariant."""
    for name, gate in netlist.gates.items():
        if gate.name != name:
            raise NetlistError(f"gate registered as {name!r} but named {gate.name!r}")
        if gate.is_input:
            if gate.fanins:
                raise NetlistError(f"primary input {name!r} has fanins")
            if name not in netlist.input_names:
                raise NetlistError(f"input gate {name!r} missing from input list")
        else:
            if gate.cell.num_inputs != len(gate.fanins):
                raise NetlistError(
                    f"gate {name!r}: {len(gate.fanins)} fanins for "
                    f"{gate.cell.num_inputs}-input cell {gate.cell.name!r}"
                )
        for pin, driver in enumerate(gate.fanins):
            if netlist.gates.get(driver.name) is not driver:
                raise NetlistError(
                    f"gate {name!r} pin {pin} driven by foreign gate {driver.name!r}"
                )
            if (gate, pin) not in driver.fanouts:
                raise NetlistError(
                    f"fanout list of {driver.name!r} misses branch to "
                    f"{name!r} pin {pin}"
                )
        for sink, pin in gate.fanouts:
            if netlist.gates.get(sink.name) is not sink:
                raise NetlistError(
                    f"gate {name!r} fans out to foreign gate {sink.name!r}"
                )
            if pin >= len(sink.fanins) or sink.fanins[pin] is not gate:
                raise NetlistError(
                    f"fanout entry {name!r} -> {sink.name!r} pin {pin} is stale"
                )
        for po in gate.po_names:
            if netlist.outputs.get(po) is not gate:
                raise NetlistError(
                    f"gate {name!r} claims PO {po!r} owned by another driver"
                )

    for name in netlist.input_names:
        gate = netlist.gates.get(name)
        if gate is None or not gate.is_input:
            raise NetlistError(f"input list entry {name!r} is not an input gate")

    for po, driver in netlist.outputs.items():
        if netlist.gates.get(driver.name) is not driver:
            raise NetlistError(f"PO {po!r} driven by foreign gate")
        if po not in driver.po_names:
            raise NetlistError(f"driver of PO {po!r} does not list the port")
        if po not in netlist.output_loads:
            raise NetlistError(f"PO {po!r} has no load entry")

    # Raises on combinational cycles.
    topological_order(netlist)
