"""Structural invariant checking for netlists.

:func:`check_netlist` is the historical abort-on-first-violation guard.
Since the introduction of :mod:`repro.lint` it is a thin wrapper over the
structural rule pack (rules ``N001``–``N008``): the rules collect *every*
violation with locations and suggested fixes; this wrapper raises
:class:`NetlistError` on the first error-severity diagnostic so existing
callers (the optimizer's self-check mode, the test suite) keep their
exception contract.  Use :func:`repro.lint.lint_netlist` directly for the
collect-all diagnostics view.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.netlist import Netlist


def check_netlist(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` on any broken structural invariant."""
    from repro.lint.rules import lint_netlist, structural_rules

    report = lint_netlist(netlist, rules=structural_rules())
    for diagnostic in report.errors:
        raise NetlistError(f"[{diagnostic.rule_id}] {diagnostic.message}")
