"""Batched observability masks for every stem and branch.

``SimState.stem_observability`` answers "on which patterns does flipping
this stem flip some primary output?" by propagating a forced flip through
the stem's entire transitive fanout — one full vector pass *per stem*.
Candidate generation asks that question for every stem and every branch of
every round, so the per-round cost is O(stems × TFO-size) vector passes.

:class:`ObservabilityMaps` computes the same masks for *all* stems in one
reverse-topological sweep.  The recurrence is exact because gate evaluation
is bitwise: under a single pattern bit, every downstream signal is a pure
boolean function of a stem's bit, so for a stem ``g`` with exactly one
fanout branch ``(s, p)``

    obs(g) = bd(s, p) & obs(s)

where ``bd(s, p) = eval(s with pin p flipped) XOR value(s)`` is the boolean
difference of the sink's cell function.  Primary-output stems are
observable everywhere, fanout-free stems nowhere.  Multi-fanout stems
reconverge — the OR over branch masks is only an upper bound there — so
they fall back to an exact diff-driven flip propagation that skips every
fanout gate whose fanin words are untouched.  Branch masks come for free:

    obs(g -> s.pin p) = bd(s, p) & obs(s)

which matches ``SimState.branch_observability`` bit for bit (including its
early-return-zeros case, where ``bd`` is identically zero).

Masks stay valid across netlist edits through
:meth:`ObservabilityMaps.update_after_edit`: a mask can only change if the
edit touched the stem's transitive fanout, so the recompute set is the
dirty gates, their direct sinks (whose boolean differences depend on the
dirtied fanin words), and the transitive fanin of both.  Everything else
keeps its existing array object, which lets callers invalidate downstream
caches by identity.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import NetlistError
from repro.netlist.netlist import Gate
from repro.netlist.simulate import _ALL_ONES, SimState, evaluate_cell
from repro.netlist.traverse import (
    topological_order,
    transitive_fanin,
)


class ObservabilityMaps:
    """Stem and branch observability masks for one committed ``SimState``."""

    def __init__(self, sim: SimState):
        self.sim = sim
        self.netlist = sim.netlist
        #: name -> mask of patterns where flipping the stem flips some PO.
        self.stem: dict[str, np.ndarray] = {}
        # Boolean differences, keyed (sink name, pin).
        self._bd: dict[tuple[str, int], np.ndarray] = {}
        self.recompute()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def branch(self, sink: Gate, pin: int) -> np.ndarray:
        """Mask of patterns where flipping one input branch flips some PO."""
        if sink.is_input:
            raise NetlistError("primary inputs have no input branches")
        return self._bd_mask(sink, pin) & self.stem[sink.name]

    # ------------------------------------------------------------------
    # Full sweep
    # ------------------------------------------------------------------
    def recompute(self) -> None:
        """Rebuild every stem mask in one reverse-topological sweep."""
        self.stem.clear()
        self._bd.clear()
        for gate in reversed(topological_order(self.netlist)):
            self.stem[gate.name] = self._stem_mask(gate)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def update_after_edit(self, dirty: Iterable[Gate]) -> set[str]:
        """Refresh masks after a netlist edit; returns names whose mask changed.

        ``dirty`` must contain every live gate whose committed value, fanin
        list, fanout list, or primary-output binding changed (newly added
        gates included).  Removed gates are detected by absence from the
        netlist.  Unchanged masks keep their existing array objects.
        """
        live = self.netlist.gates
        for name in [n for n in self.stem if n not in live]:
            del self.stem[name]
        for key in [k for k in self._bd if k[0] not in live]:
            del self._bd[key]

        frontier: set[str] = set()
        for gate in dirty:
            if gate.name not in live:
                continue
            frontier.add(gate.name)
            for sink, _pin in gate.fanouts:
                frontier.add(sink.name)
        if not frontier:
            return set()
        # Boolean differences of dirtied sinks are stale.
        for key in [k for k in self._bd if k[0] in frontier]:
            del self._bd[key]
        # A stem mask depends only on the stem's transitive fanout, so the
        # recompute set is the frontier plus everything upstream of it.
        seeds = [live[name] for name in frontier]
        recompute_ids = {id(g) for g in seeds}
        recompute_ids.update(
            id(g) for g in transitive_fanin(self.netlist, seeds)
        )
        changed: set[str] = set()
        for gate in reversed(topological_order(self.netlist)):
            if id(gate) not in recompute_ids:
                continue
            new = self._stem_mask(gate)
            old = self.stem.get(gate.name)
            if old is not None and np.array_equal(new, old):
                continue  # keep the old array object
            self.stem[gate.name] = new
            changed.add(gate.name)
        return changed

    # ------------------------------------------------------------------
    # Mask computation
    # ------------------------------------------------------------------
    def _stem_mask(self, gate: Gate) -> np.ndarray:
        if gate.po_names:
            return np.full(self.sim.nwords, _ALL_ONES, dtype=np.uint64)
        branches = gate.fanouts
        if not branches:
            return np.zeros(self.sim.nwords, dtype=np.uint64)
        if len(branches) == 1:
            sink, pin = branches[0]
            return self._bd_mask(sink, pin) & self.stem[sink.name]
        return self._flip_mask(gate)

    def _bd_mask(self, sink: Gate, pin: int) -> np.ndarray:
        key = (sink.name, pin)
        cached = self._bd.get(key)
        if cached is None:
            values = self.sim.values
            fanin_words = [
                ~values[f.name] if i == pin else values[f.name]
                for i, f in enumerate(sink.fanins)
            ]
            flipped = evaluate_cell(sink.cell, fanin_words, self.sim.nwords)
            cached = flipped ^ values[sink.name]
            self._bd[key] = cached
        return cached

    def _flip_mask(self, gate: Gate) -> np.ndarray:
        """Exact flip propagation for reconvergent multi-fanout stems.

        Same semantics as ``SimState.stem_observability``: runs on the
        packed level-grouped kernels, which skip every fanout gate none of
        whose fanin words were touched by the flip so far.
        """
        from repro.kernels.packed import packed_view

        sim = self.sim
        packed = packed_view(self.netlist)
        return packed.flip_mask(
            sim.matrix(), packed.index[gate.name], sim.nwords
        )
