"""Fluent construction of mapped netlists for tests, examples and generators.

:class:`NetlistBuilder` wraps a library and exposes one method per common
gate function (``and2``, ``xor2``...), resolving each to the cheapest library
cell with that function.  This keeps hand-built circuits independent of cell
naming in any particular library.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import LibraryError
from repro.library.cell import Cell, Library
from repro.logic.truthtable import TruthTable
from repro.netlist.netlist import Gate, Netlist

# Two-input function truth tables, variable 0 = first pin.
_TT2 = {
    "and2": 0b1000,
    "or2": 0b1110,
    "nand2": 0b0111,
    "nor2": 0b0001,
    "xor2": 0b0110,
    "xnor2": 0b1001,
}


class NetlistBuilder:
    """Builds a :class:`Netlist` gate by gate against a library."""

    def __init__(self, library: Library, name: str = "circuit"):
        self.library = library
        self.netlist = Netlist(name, library)
        self._cell_cache: dict[tuple[int, int], Cell] = {}

    # ------------------------------------------------------------------
    def input(self, name: str) -> Gate:
        return self.netlist.add_input(name)

    def inputs(self, *names: str) -> list[Gate]:
        return [self.input(n) for n in names]

    def output(self, name: str, driver: Gate, load: float = 1.0) -> None:
        self.netlist.set_output(name, driver, load)

    def cell_by_function(self, function: TruthTable) -> Cell:
        """Cheapest cell computing the function with pins in order."""
        key = (function.nvars, function.bits)
        cached = self._cell_cache.get(key)
        if cached is not None:
            return cached
        best: Optional[Cell] = None
        for cell in self.library.cells_with_inputs(function.nvars):
            if cell.function == function and (best is None or cell.area < best.area):
                best = cell
        if best is None:
            raise LibraryError(
                f"library {self.library.name!r} has no cell for "
                f"{function.nvars}-input function 0x{function.bits:x}"
            )
        self._cell_cache[key] = best
        return best

    def gate(self, function: TruthTable, *fanins: Gate, name: Optional[str] = None) -> Gate:
        cell = self.cell_by_function(function)
        return self.netlist.add_gate(cell, list(fanins), name=name)

    def cell_gate(self, cell_name: str, *fanins: Gate, name: Optional[str] = None) -> Gate:
        return self.netlist.add_gate(self.library[cell_name], list(fanins), name=name)

    # ------------------------------------------------------------------
    def not_(self, a: Gate, name: Optional[str] = None) -> Gate:
        return self.netlist.add_gate(self.library.inverter(), [a], name=name)

    def _two_input(self, kind: str, a: Gate, b: Gate, name: Optional[str]) -> Gate:
        return self.gate(TruthTable(2, _TT2[kind]), a, b, name=name)

    def and_(self, a: Gate, b: Gate, name: Optional[str] = None) -> Gate:
        return self._two_input("and2", a, b, name)

    def or_(self, a: Gate, b: Gate, name: Optional[str] = None) -> Gate:
        return self._two_input("or2", a, b, name)

    def nand_(self, a: Gate, b: Gate, name: Optional[str] = None) -> Gate:
        return self._two_input("nand2", a, b, name)

    def nor_(self, a: Gate, b: Gate, name: Optional[str] = None) -> Gate:
        return self._two_input("nor2", a, b, name)

    def xor_(self, a: Gate, b: Gate, name: Optional[str] = None) -> Gate:
        return self._two_input("xor2", a, b, name)

    def xnor_(self, a: Gate, b: Gate, name: Optional[str] = None) -> Gate:
        return self._two_input("xnor2", a, b, name)

    def and_tree(self, gates: list[Gate]) -> Gate:
        """Balanced AND over any number of signals."""
        return self._tree("and2", gates)

    def or_tree(self, gates: list[Gate]) -> Gate:
        return self._tree("or2", gates)

    def xor_tree(self, gates: list[Gate]) -> Gate:
        return self._tree("xor2", gates)

    def _tree(self, kind: str, gates: list[Gate]) -> Gate:
        if not gates:
            raise LibraryError("cannot build a tree over zero signals")
        level = list(gates)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self._two_input(kind, level[i], level[i + 1], None))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def build(self) -> Netlist:
        return self.netlist
