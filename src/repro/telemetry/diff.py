"""Deterministic-field trace comparison (the golden-trace oracle).

:func:`compare_traces` compares every reproducible field of two
:class:`~repro.telemetry.trace.RunTrace` objects — move sequence
(canonical candidate IDs), gain decompositions, ATPG verdicts, per-round
candidate statistics, counters, and the run summary — and reports each
divergence with a JSON-path-style location.  Wall-times (``timers``) are
machine facts and are never compared.

Floats compare exactly by default: a replayed run of the same build on
the same inputs must reproduce every gain bit-for-bit.  The golden-trace
suite passes a small ``tolerance`` so baselines stay portable across
NumPy builds while still flagging any real drift in the gain arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Real

from repro.telemetry.trace import RunTrace


@dataclass
class Divergence:
    """One differing deterministic field."""

    path: str
    left: object
    right: object

    def __str__(self) -> str:
        return f"{self.path}: {self.left!r} != {self.right!r}"


@dataclass
class TraceDiff:
    """Outcome of one comparison."""

    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def format(self, max_lines: int = 50) -> str:
        if self.ok:
            return "traces are identical on every deterministic field"
        lines = [f"{len(self.divergences)} divergence(s):"]
        for entry in self.divergences[:max_lines]:
            lines.append(f"  {entry}")
        if len(self.divergences) > max_lines:
            lines.append(f"  ... {len(self.divergences) - max_lines} more")
        return "\n".join(lines)


class _Comparator:
    def __init__(self, tolerance: float):
        self.tolerance = tolerance
        self.divergences: list[Divergence] = []

    def diverge(self, path: str, left: object, right: object) -> None:
        self.divergences.append(Divergence(path, left, right))

    def values(self, path: str, left: object, right: object) -> None:
        if (
            isinstance(left, Real)
            and isinstance(right, Real)
            and not isinstance(left, bool)
            and not isinstance(right, bool)
        ):
            if abs(float(left) - float(right)) > self.tolerance:
                self.diverge(path, left, right)
            return
        if left != right:
            self.diverge(path, left, right)

    def mappings(self, path: str, left: dict, right: dict) -> None:
        for key in sorted(set(left) | set(right)):
            entry = f"{path}.{key}"
            if key not in left:
                self.diverge(entry, "<absent>", right[key])
            elif key not in right:
                self.diverge(entry, left[key], "<absent>")
            else:
                self.values(entry, left[key], right[key])


def compare_traces(
    left: RunTrace, right: RunTrace, tolerance: float = 0.0
) -> TraceDiff:
    """Compare every deterministic field; wall-times are ignored.

    ``tolerance`` is an absolute bound applied to float fields only —
    move indices, candidate IDs, classes, counters, and ATPG verdicts
    always compare exactly.
    """
    c = _Comparator(tolerance)
    c.values("$.schema_version", left.schema_version, right.schema_version)
    c.values("$.netlist", left.netlist, right.netlist)
    c.mappings("$.options", left.options, right.options)

    if len(left.moves) != len(right.moves):
        c.diverge(
            "$.moves.length",
            f"{len(left.moves)} moves",
            f"{len(right.moves)} moves",
        )
    for i, (lm, rm) in enumerate(zip(left.moves, right.moves)):
        path = f"$.moves[{i}]"
        # The move's identity first: when the sequences fork, the field
        # noise after the fork is meaningless, so stop at the fork point.
        if lm.candidate_id != rm.candidate_id:
            c.diverge(f"{path}.candidate_id", lm.candidate_id, rm.candidate_id)
            break
        c.values(f"{path}.kind", lm.kind, rm.kind)
        c.values(f"{path}.round", lm.round, rm.round)
        c.values(f"{path}.pg_a", lm.pg_a, rm.pg_a)
        c.values(f"{path}.pg_b", lm.pg_b, rm.pg_b)
        c.values(f"{path}.pg_c", lm.pg_c, rm.pg_c)
        c.values(f"{path}.predicted_total", lm.predicted_total, rm.predicted_total)
        c.values(
            f"{path}.measured_power_gain",
            lm.measured_power_gain,
            rm.measured_power_gain,
        )
        c.values(
            f"{path}.measured_area_delta",
            lm.measured_area_delta,
            rm.measured_area_delta,
        )
        c.values(
            f"{path}.circuit_delay_after",
            lm.circuit_delay_after,
            rm.circuit_delay_after,
        )
        c.values(f"{path}.atpg_status", lm.atpg_status, rm.atpg_status)
        c.values(f"{path}.atpg_stage", lm.atpg_stage, rm.atpg_stage)
        c.values(
            f"{path}.atpg_backtracks", lm.atpg_backtracks, rm.atpg_backtracks
        )

    if len(left.rounds) != len(right.rounds):
        c.diverge(
            "$.rounds.length",
            f"{len(left.rounds)} rounds",
            f"{len(right.rounds)} rounds",
        )
    for i, (lr, rr) in enumerate(zip(left.rounds, right.rounds)):
        path = f"$.rounds[{i}]"
        c.values(f"{path}.index", lr.index, rr.index)
        c.values(f"{path}.pool_size", lr.pool_size, rr.pool_size)
        c.mappings(
            f"{path}.candidates_by_class",
            lr.candidates_by_class,
            rr.candidates_by_class,
        )
        c.values(
            f"{path}.shortlist_evaluations",
            lr.shortlist_evaluations,
            rr.shortlist_evaluations,
        )
        c.values(f"{path}.moves_applied", lr.moves_applied, rr.moves_applied)
        c.mappings(f"{path}.rejections", lr.rejections, rr.rejections)

    c.mappings("$.counters", left.counters, right.counters)
    c.mappings("$.summary", left.summary, right.summary)
    return TraceDiff(c.divergences)
