"""Structural validation of the versioned trace JSON.

Hand-rolled (no external json-schema dependency): :func:`validate_trace`
walks a plain dict and raises :class:`~repro.errors.TelemetryError` with
a precise path on the first violation.  Readers validate before
constructing :class:`~repro.telemetry.trace.RunTrace` objects, so a
corrupted or foreign file fails loudly instead of surfacing as an
``AttributeError`` deep inside the diff tool.
"""

from __future__ import annotations

from numbers import Integral, Real

from repro.errors import TelemetryError

_MOVE_FIELDS: dict[str, type] = {
    "index": Integral,
    "round": Integral,
    "candidate_id": str,
    "kind": str,
    "pg_a": Real,
    "pg_b": Real,
    "pg_c": Real,
    "predicted_total": Real,
    "measured_power_gain": Real,
    "measured_area_delta": Real,
    "circuit_delay_after": Real,
    "atpg_status": str,
    "atpg_stage": str,
    "atpg_backtracks": Integral,
}

_ROUND_FIELDS: dict[str, type] = {
    "index": Integral,
    "pool_size": Integral,
    "candidates_by_class": dict,
    "shortlist_evaluations": Integral,
    "moves_applied": Integral,
    "rejections": dict,
}

_TOP_FIELDS: dict[str, type] = {
    "schema_version": Integral,
    "netlist": str,
    "options": dict,
    "rounds": list,
    "moves": list,
    "counters": dict,
    "summary": dict,
}

_KINDS = ("OS2", "IS2", "OS3", "IS3")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise TelemetryError(f"invalid trace at {path}: {message}")


def _check_fields(data: dict, fields: dict[str, type], path: str) -> None:
    _require(isinstance(data, dict), path, "expected an object")
    for name, kind in fields.items():
        _require(name in data, path, f"missing field {name!r}")
        value = data[name]
        # bool is an Integral; never a valid trace value here.
        _require(
            isinstance(value, kind) and not isinstance(value, bool),
            f"{path}.{name}",
            f"expected {kind.__name__}, got {type(value).__name__}",
        )


def validate_trace(data: dict) -> None:
    """Raise :class:`TelemetryError` unless ``data`` is a valid v1 trace."""
    _check_fields(data, _TOP_FIELDS, "$")
    version = data["schema_version"]
    from repro.telemetry.trace import TRACE_SCHEMA_VERSION

    _require(
        version == TRACE_SCHEMA_VERSION,
        "$.schema_version",
        f"unsupported version {version} (this build reads "
        f"{TRACE_SCHEMA_VERSION})",
    )
    if "timers" in data:
        _check_fields(data, {"timers": dict}, "$")
        for name, value in data["timers"].items():
            _require(
                isinstance(value, Real) and not isinstance(value, bool),
                f"$.timers.{name}",
                "expected a number",
            )
    for name, value in data["counters"].items():
        _require(
            isinstance(value, Integral) and not isinstance(value, bool),
            f"$.counters.{name}",
            "expected an integer",
        )
    for i, entry in enumerate(data["rounds"]):
        path = f"$.rounds[{i}]"
        _check_fields(entry, _ROUND_FIELDS, path)
        _require(
            set(entry["candidates_by_class"]) == set(_KINDS),
            f"{path}.candidates_by_class",
            f"expected exactly the classes {_KINDS}",
        )
        for reason, count in entry["rejections"].items():
            _require(
                isinstance(count, Integral) and not isinstance(count, bool),
                f"{path}.rejections.{reason}",
                "expected an integer",
            )
    previous = 0
    for i, entry in enumerate(data["moves"]):
        path = f"$.moves[{i}]"
        _check_fields(entry, _MOVE_FIELDS, path)
        _require(
            entry["kind"] in _KINDS, f"{path}.kind", f"unknown class {entry['kind']!r}"
        )
        _require(
            entry["index"] == previous + 1,
            f"{path}.index",
            f"move indices must be 1,2,...; got {entry['index']} after "
            f"{previous}",
        )
        previous = entry["index"]
    for name, value in data["summary"].items():
        _require(
            isinstance(value, Real) and not isinstance(value, bool),
            f"$.summary.{name}",
            "expected a number",
        )
