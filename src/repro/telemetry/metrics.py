"""Counter/timer registry backing the run tracer.

A :class:`Metrics` instance is a flat, named registry of monotonically
increasing :class:`Counter` objects and wall-clock :class:`Timer`
accumulators.  The clock is injectable, so tests can drive timers with a
fake clock and assert on exact durations; production code uses
``time.perf_counter``.

Counters hold run facts that must be reproducible (candidate counts, ATPG
calls/backtracks/aborts, cache hits); timers hold wall-times, which are
inherently machine-dependent and therefore excluded from trace comparison
(:func:`repro.telemetry.diff.compare_traces` ignores them).
"""

from __future__ import annotations

import time
from typing import Callable


class Counter:
    """A named monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Timer:
    """A named wall-time accumulator; usable as a context manager."""

    __slots__ = ("name", "seconds", "_clock", "_started")

    def __init__(self, name: str, clock: Callable[[], float]):
        self.name = name
        self.seconds = 0.0
        self._clock = clock
        self._started: float | None = None

    def start(self) -> None:
        self._started = self._clock()

    def stop(self) -> None:
        if self._started is None:
            return
        self.seconds += self._clock() - self._started
        self._started = None

    def add(self, seconds: float) -> None:
        """Fold in a duration measured elsewhere (e.g. optimizer phases)."""
        self.seconds += seconds

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


class Metrics:
    """Registry of counters and timers for one traced run."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        entry = self._counters.get(name)
        if entry is None:
            entry = self._counters[name] = Counter(name)
        return entry

    def timer(self, name: str) -> Timer:
        entry = self._timers.get(name)
        if entry is None:
            entry = self._timers[name] = Timer(name, self.clock)
        return entry

    def increment(self, name: str, amount: int = 1) -> None:
        self.counter(name).increment(amount)

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """Counter values, sorted by name (deterministic)."""
        return {
            name: self._counters[name].value
            for name in sorted(self._counters)
        }

    def timers(self) -> dict[str, float]:
        """Timer totals, sorted by name (wall-times; machine-dependent)."""
        return {
            name: self._timers[name].seconds for name in sorted(self._timers)
        }
