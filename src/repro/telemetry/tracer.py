"""The optimizer-facing recording surface.

A :class:`Tracer` is handed to the optimizer via
``OptimizeOptions(trace=Tracer())`` and receives one callback per loop
event: round start (with the generated candidate pool), short-list
evaluation, rejection, ATPG verdict, applied move, round end, run end.
It is strictly read-only — it never touches the netlist or estimator —
so a traced run applies exactly the moves an untraced run would.

The optimizer guards every callback behind ``if self.tracer is not
None``, so the disabled path (the default) costs nothing.

After ``run()`` returns, the finished :class:`RunTrace` is available
both as ``tracer.trace`` and as ``OptimizeResult.trace``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional

from repro.telemetry.metrics import Metrics
from repro.telemetry.trace import MoveTrace, RoundTrace, RunTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.transform.optimizer import OptimizeResult, PowerOptimizer
    from repro.transform.permissible import PermissibilityResult
    from repro.transform.report import MoveRecord

#: Rejection tallies every round reports, even when zero.
REJECTION_REASONS = ("delay", "not_permissible", "aborted", "stale")

_CLASSES = ("OS2", "IS2", "OS3", "IS3")

#: OptimizeOptions fields recorded in the trace header.  All are scalars
#: that determine the move sequence; cosmetic/diagnostic flags
#: (verbose, self_check, sanitize, trace itself) are excluded because
#: they cannot change behaviour.
_OPTION_FIELDS = (
    "objective",
    "repeat",
    "delay_limit",
    "delay_slack_percent",
    "num_patterns",
    "seed",
    "backtrack_limit",
    "permissibility",
    "preselect",
    "min_gain",
    "gain_threshold_fraction",
    "max_moves",
    "max_rounds",
    "incremental",
    "dedupe_first",
    "analysis_prune",
)

_CANDIDATE_FIELDS = (
    "enable_os2",
    "enable_is2",
    "enable_os3",
    "enable_is3",
    "allow_inversion",
    "max_per_target",
    "max_total",
    "pair_source_limit",
    "min_quick_gain",
    "constant_substitution",
)


class Tracer:
    """Collects one :class:`RunTrace` over one optimizer run."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.metrics = Metrics(clock)
        self.trace = RunTrace()
        self._round: Optional[RoundTrace] = None
        self._pending_atpg: Optional["PermissibilityResult"] = None

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, optimizer: "PowerOptimizer") -> None:
        opts = optimizer.options
        options = {name: getattr(opts, name) for name in _OPTION_FIELDS}
        # A CostModel instance serializes as its registered name.
        options["objective"] = getattr(
            options["objective"], "name", options["objective"]
        )
        for name in _CANDIDATE_FIELDS:
            options[f"candidates.{name}"] = getattr(opts.candidates, name)
        options["input_probs"] = opts.input_probs is not None
        options["input_temporal_specs"] = opts.input_temporal_specs is not None
        self.trace.netlist = optimizer.netlist.name
        self.trace.options = options
        self.metrics.timer("total").start()

    def end_run(self, optimizer: "PowerOptimizer", result: "OptimizeResult") -> RunTrace:
        self.metrics.timer("total").stop()
        for phase, seconds in optimizer.phase_seconds.items():
            self.metrics.timer(f"phase.{phase}").add(seconds)
        workspace = getattr(optimizer, "_workspace", None)
        if workspace is not None:
            self.metrics.counter("workspace_pair_cache_hits").increment(
                workspace.pair_cache_hits
            )
            self.metrics.counter("workspace_pair_cache_misses").increment(
                workspace.pair_cache_misses
            )
        triage = getattr(optimizer, "triage_checker", None)
        if triage is not None:
            for name, value in triage.counters.items():
                self.metrics.counter(f"triage_{name}").increment(value)
        # Work avoided by analysis_prune; only recorded when the option
        # is on, so prune-off baselines keep their counter sets.
        prune = getattr(optimizer, "prune_counters", None)
        if prune and getattr(optimizer.options, "analysis_prune", False):
            for name, value in prune.items():
                self.metrics.counter(f"prune_{name}").increment(value)
        trace = self.trace
        trace.counters = self.metrics.counters()
        trace.timers = self.metrics.timers()
        trace.summary = {
            "initial_power": result.initial_power,
            "final_power": result.final_power,
            "initial_area": result.initial_area,
            "final_area": result.final_area,
            "initial_delay": result.initial_delay,
            "final_delay": result.final_delay,
            "moves": len(result.moves),
            "rounds": result.rounds,
            "rejected_delay": result.rejected_delay,
            "rejected_not_permissible": result.rejected_not_permissible,
            "rejected_aborted": result.rejected_aborted,
            "rejected_stale": result.rejected_stale,
        }
        if result.delay_limit is not None:
            trace.summary["delay_limit"] = result.delay_limit
        return trace

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def begin_round(self, index: int, pool: list) -> None:
        by_class = {kind: 0 for kind in _CLASSES}
        for candidate in pool:
            by_class[candidate.substitution.kind] += 1
        self._round = RoundTrace(
            index=index,
            pool_size=len(pool),
            candidates_by_class=by_class,
            shortlist_evaluations=0,
            moves_applied=0,
            rejections={reason: 0 for reason in REJECTION_REASONS},
        )
        self.metrics.increment("candidates_generated", len(pool))
        for kind, count in by_class.items():
            self.metrics.increment(f"candidates_{kind.lower()}", count)

    def end_round(self) -> None:
        if self._round is not None:
            self.trace.rounds.append(self._round)
            self._round = None

    # ------------------------------------------------------------------
    # Per-decision events
    # ------------------------------------------------------------------
    def record_shortlist(self, size: int) -> None:
        """``size`` candidates just had their PG_C re-estimated."""
        self.metrics.increment("shortlist_evaluations", size)
        if self._round is not None:
            self._round.shortlist_evaluations += size

    def record_rejection(self, reason: str) -> None:
        self.metrics.increment(f"rejected_{reason}")
        if self._round is not None:
            self._round.rejections[reason] += 1

    def record_atpg(self, result: "PermissibilityResult") -> None:
        """One ``check_candidate`` verdict (kept for the next move)."""
        self.metrics.increment("atpg_calls")
        self.metrics.increment("atpg_backtracks", result.backtracks)
        if result.status == "aborted":
            self.metrics.increment("atpg_aborts")
        self._pending_atpg = result

    def record_move(self, record: "MoveRecord") -> None:
        atpg = self._pending_atpg
        self._pending_atpg = None
        move = MoveTrace(
            index=len(self.trace.moves) + 1,
            round=record.round_index,
            candidate_id=record.substitution.candidate_id(),
            kind=record.substitution.kind,
            pg_a=record.predicted.pg_a,
            pg_b=record.predicted.pg_b,
            pg_c=record.predicted.pg_c,
            predicted_total=record.predicted.total,
            measured_power_gain=record.measured_power_gain,
            measured_area_delta=record.measured_area_delta,
            circuit_delay_after=record.circuit_delay_after,
            atpg_status=atpg.status if atpg else "",
            atpg_stage=atpg.stage if atpg else "",
            atpg_backtracks=atpg.backtracks if atpg else 0,
        )
        self.trace.moves.append(move)
        self.metrics.increment("moves_applied")
        if self._round is not None:
            self._round.moves_applied += 1
