"""Run telemetry: structured tracing and metrics for the optimizer.

The subsystem has four parts:

- :mod:`repro.telemetry.metrics` — named counters and (injectable-clock)
  timers,
- :mod:`repro.telemetry.trace` — the :class:`RunTrace` model with a
  versioned JSON schema, writer, and reader,
- :mod:`repro.telemetry.tracer` — the :class:`Tracer` callback surface
  the optimizer drives when ``OptimizeOptions(trace=...)`` is set,
- :mod:`repro.telemetry.diff` — :func:`compare_traces`, the
  deterministic-field comparison behind the golden-trace regression
  suite and ``powder trace diff``.
"""

from repro.telemetry.diff import Divergence, TraceDiff, compare_traces
from repro.telemetry.metrics import Counter, Metrics, Timer
from repro.telemetry.schema import validate_trace
from repro.telemetry.trace import (
    TRACE_SCHEMA_VERSION,
    MoveTrace,
    RoundTrace,
    RunTrace,
    deterministic_json,
    format_trace,
    read_trace,
    write_trace,
)
from repro.telemetry.tracer import Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Divergence",
    "Metrics",
    "MoveTrace",
    "RoundTrace",
    "RunTrace",
    "Timer",
    "TraceDiff",
    "Tracer",
    "compare_traces",
    "deterministic_json",
    "format_trace",
    "read_trace",
    "validate_trace",
    "write_trace",
]
