"""The structured run trace: per-round and per-move records of one
POWDER run, with a versioned JSON serialization.

A :class:`RunTrace` pins everything the paper's value claims rest on:

- the exact move sequence, each move identified by its canonical
  :meth:`~repro.transform.substitution.Substitution.candidate_id` (the
  optimizer's tie-break key, stable across Python builds),
- the ``PG = PG_A + PG_B + PG_C`` gain decomposition of every applied
  move next to the independently measured power delta,
- the ATPG verdict behind every acceptance (status, deciding stage,
  backtracks spent),
- per-round candidate counts by class (OS2/IS2/OS3/IS3), short-list
  sizes, and rejection tallies,
- run-level counters (ATPG calls/backtracks/aborts, workspace cache hit
  rates) and phase wall-times.

Every field except the ``timers`` section is a pure function of
(netlist, options), so two runs of the same build must produce
byte-identical deterministic sections — that is what the golden-trace
regression suite asserts.  ``timers`` are machine facts and are ignored
by :func:`repro.telemetry.diff.compare_traces`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import TelemetryError

#: Bump on any backwards-incompatible change to the trace layout.
TRACE_SCHEMA_VERSION = 1


def deterministic_json(data) -> str:
    """Canonical JSON text for ``data``: sorted keys, compact separators,
    shortest-roundtrip floats, NaN/Infinity rejected.

    Two structurally equal values serialize to byte-identical text, so
    this is the serialization for everything that must be byte-stable:
    the deterministic trace subset, canonical
    :class:`~repro.transform.optimizer.OptimizeOptions` dictionaries,
    and the result payloads the :mod:`repro.serve` cache hands out.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


@dataclass
class MoveTrace:
    """One applied substitution, with its full value decomposition."""

    index: int  # 1-based position in the run's move sequence
    round: int  # candidate-generation round that produced it
    candidate_id: str  # canonical Substitution.candidate_id()
    kind: str  # OS2 / IS2 / OS3 / IS3
    pg_a: float
    pg_b: float
    pg_c: float
    predicted_total: float  # PG_A + PG_B + PG_C
    measured_power_gain: float  # estimator total before - after
    measured_area_delta: float
    circuit_delay_after: float
    atpg_status: str  # permissible verdict behind the acceptance
    atpg_stage: str  # which oracle stage decided (simulation/bdd/atpg)
    atpg_backtracks: int


@dataclass
class RoundTrace:
    """One candidate-generation round of the optimizer's outer loop."""

    index: int  # 1-based round number
    pool_size: int  # candidates emitted by generation
    candidates_by_class: dict[str, int]  # OS2/IS2/OS3/IS3 counts
    shortlist_evaluations: int  # candidates whose PG_C was re-estimated
    moves_applied: int
    rejections: dict[str, int]  # delay/not-permissible/aborted/stale


@dataclass
class RunTrace:
    """Complete telemetry of one optimizer run."""

    schema_version: int = TRACE_SCHEMA_VERSION
    netlist: str = ""
    options: dict = field(default_factory=dict)
    rounds: list[RoundTrace] = field(default_factory=list)
    moves: list[MoveTrace] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, float] = field(default_factory=dict)
    summary: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form, keys in canonical order."""
        data = asdict(self)
        data["counters"] = dict(sorted(data["counters"].items()))
        data["timers"] = dict(sorted(data["timers"].items()))
        data["summary"] = dict(sorted(data["summary"].items()))
        return data

    def deterministic_dict(self) -> dict:
        """The reproducible subset: everything except wall-times."""
        data = self.to_dict()
        del data["timers"]
        return data

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, shortest-roundtrip floats)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def deterministic_json(self) -> str:
        """Canonical JSON of the deterministic subset (byte-comparable)."""
        return deterministic_json(self.deterministic_dict())

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "RunTrace":
        from repro.telemetry.schema import validate_trace

        validate_trace(data)
        return cls(
            schema_version=data["schema_version"],
            netlist=data["netlist"],
            options=dict(data["options"]),
            rounds=[RoundTrace(**r) for r in data["rounds"]],
            moves=[MoveTrace(**m) for m in data["moves"]],
            counters=dict(data["counters"]),
            timers=dict(data.get("timers", {})),
            summary=dict(data["summary"]),
        )


def write_trace(trace: RunTrace, path: str | Path) -> None:
    """Serialize ``trace`` to ``path`` as schema-valid JSON."""
    Path(path).write_text(trace.to_json())


def read_trace(path: str | Path) -> RunTrace:
    """Load and validate a trace written by :func:`write_trace`."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TelemetryError(f"cannot read trace {path}: {exc}") from exc
    return RunTrace.from_dict(data)


def format_trace(trace: RunTrace, max_moves: Optional[int] = None) -> str:
    """Human-readable rendering (the ``powder trace show`` output)."""
    lines = [
        f"trace of {trace.netlist!r} (schema v{trace.schema_version})",
        f"  rounds : {len(trace.rounds)}   moves : {len(trace.moves)}",
    ]
    summary = trace.summary
    if "initial_power" in summary and "final_power" in summary:
        lines.append(
            f"  power  : {summary['initial_power']:.4f} -> "
            f"{summary['final_power']:.4f}"
        )
    if trace.counters:
        parts = ", ".join(
            f"{name}={value}" for name, value in sorted(trace.counters.items())
        )
        lines.append(f"  counts : {parts}")
    if trace.timers:
        parts = ", ".join(
            f"{name} {seconds:.3f}s"
            for name, seconds in sorted(trace.timers.items())
        )
        lines.append(f"  timers : {parts}")
    shown = trace.moves if max_moves is None else trace.moves[:max_moves]
    if shown:
        header = (
            f"  {'#':>4} {'rnd':>3} {'class':>5} {'PG_A':>9} {'PG_B':>9} "
            f"{'PG_C':>9} {'total':>9} {'measured':>9}  atpg"
        )
        lines.append(header)
        for move in shown:
            lines.append(
                f"  {move.index:>4} {move.round:>3} {move.kind:>5} "
                f"{move.pg_a:>9.4f} {move.pg_b:>9.4f} {move.pg_c:>9.4f} "
                f"{move.predicted_total:>9.4f} "
                f"{move.measured_power_gain:>9.4f}  "
                f"{move.atpg_status}/{move.atpg_stage}"
            )
        if len(shown) < len(trace.moves):
            lines.append(f"  ... {len(trace.moves) - len(shown)} more moves")
    return "\n".join(lines)
