"""The transformation sanitizer: per-move validation of the optimizer.

:class:`TransformSanitizer` is the diagnostics-grade superset of
``OptimizeOptions.self_check``.  After every applied substitution it

1. runs the configured lint rule set over the edited netlist (``X001``
   wraps any error-severity finding),
2. rebuilds the simulation state from the committed input patterns and
   compares every stem word and probability against the incremental
   engine (``X002``),
3. rebuilds the static timing analysis from scratch and compares arrival
   times, gate delays, and the circuit delay exactly (``X003``),
4. recomputes the batched observability masks and compares them against
   the persistent candidate workspace (``X004``),
5. revalidates every cached OS3/IS3 pair-compatibility table against a
   recomputation from its own stored inputs (``X005``).

The sanitizer only *reads* optimizer state (the workspace's pending-edit
queue is flushed, which is a pure reordering of work the next candidate
round would do anyway), so a sanitized run applies a bit-identical move
sequence to an unsanitized one.  On any finding it raises
:class:`~repro.errors.LintError` naming the offending move, the rule ID,
and the minimal repro context.

The same checks are available between pipeline stages as the
``sanitize`` pass (:class:`repro.pipeline.SanitizePass`), which
cross-checks whatever analyses the shared context has built so far.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.rules import Rule, lint_netlist, resolve_rules
from repro.netlist.observability import ObservabilityMaps
from repro.netlist.simulate import SimState
from repro.power.probability import SimulationProbability
from repro.timing.analysis import TimingAnalysis

if TYPE_CHECKING:  # pragma: no cover
    from repro.transform.optimizer import PowerOptimizer
    from repro.transform.substitution import AppliedSubstitution

#: Sanitizer check IDs (documented alongside the lint rule catalog).
X_LINT = "X001"
X_PROBABILITY = "X002"
X_TIMING = "X003"
X_OBSERVABILITY = "X004"
X_PAIR_TABLE = "X005"


class TransformSanitizer:
    """Validates the optimizer's incremental state after every move."""

    def __init__(
        self,
        optimizer: "PowerOptimizer",
        rules: Optional[list[Rule]] = None,
    ):
        self.optimizer = optimizer
        #: Lint rules run after each move (default: every registered rule
        #: at error severity — warnings would fire on legitimate
        #: intermediate states like freshly inserted inverter chains).
        self.rules = rules if rules is not None else resolve_rules()
        #: Reports of every checked move (all clean unless a raise aborted).
        self.reports: list[LintReport] = []

    # ------------------------------------------------------------------
    def after_move(self, applied: "AppliedSubstitution", move_index: int) -> None:
        """Run every check; raise :class:`LintError` on any finding."""
        findings: list[Diagnostic] = []
        findings.extend(self._check_lint())
        if not findings:
            # The rebuild cross-checks assume a structurally sound netlist;
            # on lint failures they could crash (e.g. a stale fanout pin
            # index breaks load computation), so report the lint finding
            # alone rather than masking it with a secondary exception.
            findings.extend(self._check_probabilities())
            findings.extend(self._check_timing())
            findings.extend(self._check_observability())
            findings.extend(self._check_pair_tables())
        move = str(applied.substitution)
        report = LintReport(
            f"{self.optimizer.netlist.name}: move #{move_index} {move}",
            findings,
        )
        self.reports.append(report)
        if findings:
            first = findings[0]
            context = (
                f"move #{move_index} {move} "
                f"(added {applied.added or '[]'}, removed "
                f"{applied.removed or '[]'})"
            )
            raise LintError(
                f"sanitizer: {first.rule_id} after {context}: {first.message}",
                rule_id=first.rule_id,
                report=report,
            )

    # ------------------------------------------------------------------
    # Individual checks
    # ------------------------------------------------------------------
    def _check_lint(self) -> list[Diagnostic]:
        report = lint_netlist(self.optimizer.netlist, rules=self.rules)
        return [
            Diagnostic(
                rule_id=X_LINT,
                severity=Severity.ERROR,
                message=f"netlist lint failed: {diag}",
                gate=diag.gate,
                pin=diag.pin,
            )
            for diag in report.errors
        ]

    def _check_probabilities(self) -> list[Diagnostic]:
        engine = self.optimizer.estimator.engine
        if not isinstance(engine, SimulationProbability):
            return []
        netlist = self.optimizer.netlist
        patterns = {
            name: engine.sim.values[name] for name in netlist.input_names
        }
        fresh = SimState(netlist, patterns)
        findings: list[Diagnostic] = []
        for name in netlist.gates:
            committed = engine.sim.values.get(name)
            if committed is None:
                findings.append(
                    _finding(
                        X_PROBABILITY,
                        f"no committed simulation value for {name!r}",
                        gate=name,
                    )
                )
                continue
            if not np.array_equal(committed, fresh.values[name]):
                findings.append(
                    _finding(
                        X_PROBABILITY,
                        f"committed value of {name!r} diverged from a "
                        f"from-scratch resimulation",
                        gate=name,
                    )
                )
        for name in [n for n in engine.sim.values if n not in netlist.gates]:
            findings.append(
                _finding(
                    X_PROBABILITY,
                    f"simulation carries value for dead gate {name!r}",
                    gate=name,
                )
            )
        # Probabilities: exact restatement of the committed sample.  Only
        # the plain engine derives them from `sim` alone; temporal
        # subclasses measure from pair simulations we don't rebuild here.
        if type(engine) is SimulationProbability:
            for name in netlist.gates:
                expected = fresh.signal_probability(name)
                got = engine.probability(name)
                if got != expected:
                    findings.append(
                        _finding(
                            X_PROBABILITY,
                            f"probability of {name!r} is {got!r}, "
                            f"resimulation gives {expected!r}",
                            gate=name,
                        )
                    )
        return findings

    def _check_timing(self) -> list[Diagnostic]:
        optimizer = self.optimizer
        fresh = TimingAnalysis(
            optimizer.netlist,
            optimizer.constraint.limit if optimizer.constraint else None,
        )
        timing = optimizer.timing
        findings: list[Diagnostic] = []
        for label, incremental, rebuilt in (
            ("arrival", timing.arrival, fresh.arrival),
            ("delay", timing.delay_of, fresh.delay_of),
        ):
            for name in rebuilt:
                if incremental.get(name) != rebuilt[name]:
                    findings.append(
                        _finding(
                            X_TIMING,
                            f"incremental {label} of {name!r} is "
                            f"{incremental.get(name)!r}, rebuild gives "
                            f"{rebuilt[name]!r}",
                            gate=name,
                        )
                    )
            for name in incremental:
                if name not in rebuilt:
                    findings.append(
                        _finding(
                            X_TIMING,
                            f"incremental STA carries {label} for dead "
                            f"gate {name!r}",
                            gate=name,
                        )
                    )
        if timing.circuit_delay != fresh.circuit_delay:
            findings.append(
                _finding(
                    X_TIMING,
                    f"incremental circuit delay {timing.circuit_delay!r} "
                    f"!= rebuilt {fresh.circuit_delay!r}",
                )
            )
        return findings

    def _check_observability(self) -> list[Diagnostic]:
        workspace = self.optimizer._workspace
        if workspace is None:
            return []
        # Flush the accumulated per-move invalidations: the next candidate
        # round would do exactly this, so it cannot change move selection.
        workspace._flush_pending()
        fresh = ObservabilityMaps(workspace.sim)
        findings: list[Diagnostic] = []
        for name, mask in fresh.stem.items():
            incremental = workspace.maps.stem.get(name)
            if incremental is None or not np.array_equal(incremental, mask):
                findings.append(
                    _finding(
                        X_OBSERVABILITY,
                        f"incremental observability mask of {name!r} "
                        f"diverged from a full recomputation",
                        gate=name,
                    )
                )
        for name in workspace.maps.stem:
            if name not in fresh.stem:
                findings.append(
                    _finding(
                        X_OBSERVABILITY,
                        f"observability map carries mask for dead gate "
                        f"{name!r}",
                        gate=name,
                    )
                )
        return findings

    def _check_pair_tables(self) -> list[Diagnostic]:
        workspace = self.optimizer._workspace
        if workspace is None:
            return []
        library = workspace.netlist.library
        findings: list[Diagnostic] = []
        for key, entry in workspace._pair_cache.items():
            target, _branch = key
            names, cell_names, va, obs, rows, rows_next, table, act = entry
            if library is None or any(n not in library for n in cell_names):
                continue  # entry can never validate; dropped on next use
            cells = [library[n] for n in cell_names]
            expected, expected_act = workspace._compute_pair_tables(
                rows, rows_next, va, obs, cells
            )
            if not np.array_equal(table, expected) or not np.array_equal(
                act, expected_act
            ):
                findings.append(
                    _finding(
                        X_PAIR_TABLE,
                        f"cached pair-compatibility table for target "
                        f"{target!r} (sources {list(names)}) disagrees "
                        f"with recomputation from its own inputs",
                        gate=target,
                    )
                )
        return findings


def _finding(
    rule_id: str, message: str, gate: Optional[str] = None
) -> Diagnostic:
    return Diagnostic(
        rule_id=rule_id,
        severity=Severity.ERROR,
        message=message,
        gate=gate,
    )
