"""The lint rule framework: rule base class, registry, and the driver.

A :class:`Rule` inspects a :class:`LintContext` (netlist plus optional
probability data) and yields :class:`Diagnostic` records — it never raises
on findings and never stops at the first one.  Rules self-register under a
stable ID (``N0xx`` structural invariants, ``Q0xx`` structural quality,
``L0xx`` library contracts, ``P0xx`` power data); IDs are the unit of
selection and suppression, so they survive rule renames.

:func:`lint_netlist` is the entry point: it resolves the rule set, runs
every rule defensively (a rule crashing on an already-corrupt netlist is
itself reported, not propagated), and returns a :class:`LintReport`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Optional

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.netlist.netlist import Netlist

#: Rule categories, in report order.
CATEGORY_STRUCTURE = "structure"
CATEGORY_QUALITY = "quality"
CATEGORY_LIBRARY = "library"
CATEGORY_POWER = "power"
CATEGORY_ANALYSIS = "analysis"


class LintContext:
    """Everything a rule may look at during one lint pass."""

    def __init__(
        self,
        netlist: Netlist,
        probabilities: Optional[Mapping[str, float]] = None,
        facts=None,
    ):
        self.netlist = netlist
        #: Signal name -> P(signal = 1), when the caller measured them.
        self.probabilities = probabilities
        #: A :class:`repro.analysis.NetlistFacts` for the ``S0xx`` rules,
        #: when the caller ran the analysis suite (``None`` skips them).
        self.facts = facts


class Rule:
    """One lint rule.  Subclasses set the class attributes and ``check``."""

    #: Stable identifier (e.g. ``"N001"``); the unit of selection.
    id: str = ""
    #: One-line description for catalogs and ``--help`` output.
    title: str = ""
    #: Severity of this rule's diagnostics.
    severity: Severity = Severity.ERROR
    #: Rule family (structure / quality / library / power).
    category: str = CATEGORY_STRUCTURE

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        message: str,
        gate: Optional[str] = None,
        pin: Optional[int] = None,
        suggestion: Optional[str] = None,
    ) -> Diagnostic:
        """Build a diagnostic attributed to this rule."""
        return Diagnostic(
            rule_id=self.id,
            severity=self.severity,
            message=message,
            gate=gate,
            pin=pin,
            suggestion=suggestion,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule under its ID."""
    rule = cls()
    if not rule.id:
        raise LintError(f"rule {cls.__name__} has no ID")
    if rule.id in _REGISTRY:
        raise LintError(f"duplicate rule ID {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in stable ID order."""
    _ensure_builtin()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_builtin()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(f"unknown rule ID {rule_id!r}") from None


def structural_rules() -> list[Rule]:
    """The invariant pack ``check_netlist`` enforces (category N)."""
    return [r for r in all_rules() if r.category == CATEGORY_STRUCTURE]


def resolve_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Rule]:
    """Rule set from selection/suppression ID lists.

    ``select=None`` starts from every registered rule; unknown IDs in
    either list raise :class:`LintError` so typos fail loudly.
    """
    if select is None:
        rules = all_rules()
    else:
        rules = [get_rule(rule_id) for rule_id in select]
    if ignore:
        ignored = {get_rule(rule_id).id for rule_id in ignore}
        rules = [r for r in rules if r.id not in ignored]
    return rules


def _ensure_builtin() -> None:
    # The builtin packs register on import; import lazily to avoid a cycle
    # (builtin rules use netlist helpers that may import this module).
    from repro.lint import analysis_rules, builtin  # noqa: F401


def run_rules(ctx: LintContext, rules: Iterable[Rule]) -> list[Diagnostic]:
    """Run rules defensively; a crashing rule becomes its own diagnostic."""
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        try:
            diagnostics.extend(rule.check(ctx))
        except LintError:
            raise
        except Exception as exc:  # corrupt input broke the rule itself
            diagnostics.append(
                Diagnostic(
                    rule_id=rule.id,
                    severity=Severity.ERROR,
                    message=f"rule crashed on this netlist: {exc}",
                )
            )
    return diagnostics


def lint_netlist(
    netlist: Netlist,
    rules: Optional[Iterable[Rule]] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    probabilities: Optional[Mapping[str, float]] = None,
    facts=None,
) -> LintReport:
    """Run the configured rule set over ``netlist``; collect all findings.

    ``rules`` overrides the registry entirely; otherwise ``select`` /
    ``ignore`` narrow the registered set by ID.  ``probabilities`` feeds
    the power rules (``P0xx``) and ``facts`` (a
    :class:`repro.analysis.NetlistFacts`) the analysis rules (``S0xx``);
    without them those packs are skipped silently.
    """
    if rules is None:
        rule_list = resolve_rules(select, ignore)
    else:
        rule_list = list(rules)
    ctx = LintContext(netlist, probabilities=probabilities, facts=facts)
    return LintReport(netlist.name, run_rules(ctx, rule_list))


def rule_catalog() -> list[tuple[str, str, str, str]]:
    """(id, severity, category, title) rows for docs and ``--list-rules``."""
    return [
        (r.id, str(r.severity), r.category, r.title) for r in all_rules()
    ]
