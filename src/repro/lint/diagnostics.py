"""Diagnostic records and reports for the lint subsystem.

A :class:`Diagnostic` pins one finding to a rule (stable ID), a severity,
and a location (gate name, optionally a pin index), with an optional
suggested fix.  A :class:`LintReport` aggregates the diagnostics of one
lint pass and renders them as text or JSON.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import LintError


class Severity(enum.IntEnum):
    """Diagnostic severity; comparable (``ERROR > WARNING > INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            choices = ", ".join(s.name.lower() for s in cls)
            raise LintError(
                f"unknown severity {name!r} (choices: {choices})"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, pinned to a rule and a netlist location."""

    rule_id: str
    severity: Severity
    message: str
    #: Gate (stem) the finding is anchored to, when locatable.
    gate: Optional[str] = None
    #: Input-pin index on ``gate``, for branch-level findings.
    pin: Optional[int] = None
    #: Human-readable suggested fix.
    suggestion: Optional[str] = None

    def location(self) -> str:
        if self.gate is None:
            return "<netlist>"
        if self.pin is None:
            return self.gate
        return f"{self.gate}.{self.pin}"

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "location": self.location(),
            "message": self.message,
        }
        if self.gate is not None:
            record["gate"] = self.gate
        if self.pin is not None:
            record["pin"] = self.pin
        if self.suggestion is not None:
            record["suggestion"] = self.suggestion
        return record

    def __str__(self) -> str:
        text = f"{self.location()}: {self.severity}: {self.rule_id}: {self.message}"
        if self.suggestion:
            text += f" (fix: {self.suggestion})"
        return text


@dataclass
class LintReport:
    """All diagnostics of one lint pass over one netlist."""

    netlist_name: str
    diagnostics: list[Diagnostic]

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity == Severity.WARNING
        ]

    def worst(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for diag in self.diagnostics:
            key = str(diag.severity)
            tally[key] = tally.get(key, 0) + 1
        return tally

    def format_text(self) -> str:
        lines = [f"lint report for {self.netlist_name!r}:"]
        for diag in self.diagnostics:
            lines.append(f"  {diag}")
        if not self.diagnostics:
            lines.append("  clean: no findings")
        else:
            parts = ", ".join(
                f"{count} {name}" for name, count in sorted(self.counts().items())
            )
            lines.append(f"  {len(self.diagnostics)} finding(s): {parts}")
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps(
            {
                "netlist": self.netlist_name,
                "counts": self.counts(),
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
        )

    def raise_on_error(self) -> None:
        """Raise :class:`LintError` carrying the first error diagnostic."""
        for diag in self.diagnostics:
            if diag.severity >= Severity.ERROR:
                raise LintError(str(diag), rule_id=diag.rule_id, report=self)
