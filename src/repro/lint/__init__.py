"""Static analysis for mapped netlists (``repro.lint``).

Public surface:

- :func:`lint_netlist` — run a rule set, collect *all* findings,
- :class:`LintReport` / :class:`Diagnostic` / :class:`Severity` — results,
- :class:`Rule` + :func:`register` — the extension point for custom rules,
- :func:`all_rules` / :func:`resolve_rules` / :func:`rule_catalog` — the
  registry (built-in IDs: ``N0xx`` structure, ``Q0xx`` quality, ``L0xx``
  library, ``P0xx`` power),
- :class:`TransformSanitizer` — per-move optimizer validation behind
  ``OptimizeOptions(sanitize=True)`` (check IDs ``X001``–``X005``).
"""

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.rules import (
    LintContext,
    Rule,
    all_rules,
    get_rule,
    lint_netlist,
    register,
    resolve_rules,
    rule_catalog,
    structural_rules,
)
from repro.lint import builtin  # noqa: F401  (registers the rule pack)
from repro.lint.sanitizer import TransformSanitizer

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintReport",
    "Rule",
    "Severity",
    "TransformSanitizer",
    "all_rules",
    "get_rule",
    "lint_netlist",
    "register",
    "resolve_rules",
    "rule_catalog",
    "structural_rules",
]
