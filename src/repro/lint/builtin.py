"""The built-in rule pack.

Rule families:

- ``N0xx`` — structural invariants the whole system relies on; the
  collect-all restatement of the old ``check_netlist`` plus multi-driver
  detection.  All error severity.
- ``Q0xx`` — structural quality: dead logic, constant-foldable gates,
  double-inverter chains.  Warnings: the netlist still works, but power
  and area are being wasted.
- ``L0xx`` — library contracts: every gate's cell must come from the bound
  library and no stem may exceed its drive limit.
- ``P0xx`` — power data: switching probabilities must be well-formed.

Every rule walks an arbitrarily corrupted netlist without raising; the
messages mirror the historical ``check_netlist`` wording so error text
stays familiar.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import (
    CATEGORY_LIBRARY,
    CATEGORY_POWER,
    CATEGORY_QUALITY,
    LintContext,
    Rule,
    register,
)
from repro.netlist.netlist import Gate, Netlist

#: Slack applied to drive-limit comparisons (floats from genlib parsing).
_LOAD_EPS = 1e-9


# ----------------------------------------------------------------------
# N0xx — structural invariants (error severity)
# ----------------------------------------------------------------------
@register
class GateRegistrationRule(Rule):
    """The registry key and the gate's own name must agree.

    ``Netlist.gates`` maps names to gates; every lookup, rewiring helper,
    and serializer assumes ``gates[n].name == n``.  A mismatch means some
    mutation bypassed ``add_gate``/``rename`` and the two views of the
    netlist have already diverged.
    """

    id = "N001"
    title = "gate registered under a name different from its own"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for name, gate in ctx.netlist.gates.items():
            if gate.name != name:
                yield self.diag(
                    f"gate registered as {name!r} but named {gate.name!r}",
                    gate=name,
                    suggestion="re-register the gate under its own name",
                )


@register
class PrimaryInputRule(Rule):
    """Input gates, and only input gates, appear in the input list.

    Three invariants in one pass: primary inputs have no fanins, every
    input gate is listed in ``netlist.input_names``, and every list
    entry names a registered input gate exactly once.  Simulation
    pattern order and BLIF port order both derive from this list.
    """

    id = "N002"
    title = "primary-input bookkeeping broken"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        netlist = ctx.netlist
        for name, gate in netlist.gates.items():
            if not gate.is_input:
                continue
            if gate.fanins:
                yield self.diag(
                    f"primary input {name!r} has fanins",
                    gate=name,
                    suggestion="clear the fanin list of the input gate",
                )
            if name not in netlist.input_names:
                yield self.diag(
                    f"input gate {name!r} missing from input list",
                    gate=name,
                    suggestion="append the name to netlist.input_names",
                )
        seen: set[str] = set()
        for name in netlist.input_names:
            if name in seen:
                yield self.diag(
                    f"input list names {name!r} more than once", gate=name
                )
                continue
            seen.add(name)
            gate = netlist.gates.get(name)
            if gate is None or not gate.is_input:
                yield self.diag(
                    f"input list entry {name!r} is not an input gate",
                    gate=name,
                    suggestion="drop the entry or register the input gate",
                )


@register
class PinArityRule(Rule):
    """Every cell pin has exactly one driver.

    A gate's fanin list must be as long as its cell's input count —
    shorter means a floating pin, longer means a phantom connection.
    Either way the cell function cannot be evaluated as mapped.
    """

    id = "N003"
    title = "fanin count disagrees with the cell's pin count"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for name, gate in ctx.netlist.gates.items():
            if gate.is_input or gate.cell is None:
                continue
            if gate.cell.num_inputs != len(gate.fanins):
                yield self.diag(
                    f"gate {name!r}: {len(gate.fanins)} fanins for "
                    f"{gate.cell.num_inputs}-input cell {gate.cell.name!r}",
                    gate=name,
                    suggestion="rewire the gate with one driver per cell pin",
                )


@register
class ForeignReferenceRule(Rule):
    """Fanin/fanout edges must stay inside the netlist.

    A connection to a gate object that is not the registered gate of
    that name (deleted, replaced, or from another netlist) keeps stale
    structure alive and silently decouples simulation from the graph
    the traversals see.
    """

    id = "N004"
    title = "fanin/fanout references a gate outside the netlist"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        gates = ctx.netlist.gates
        for name, gate in gates.items():
            for pin, driver in enumerate(gate.fanins):
                if gates.get(driver.name) is not driver:
                    yield self.diag(
                        f"gate {name!r} pin {pin} driven by foreign gate "
                        f"{driver.name!r}",
                        gate=name,
                        pin=pin,
                        suggestion="reconnect the pin to a registered gate",
                    )
            for sink, pin in gate.fanouts:
                if gates.get(sink.name) is not sink:
                    yield self.diag(
                        f"gate {name!r} fans out to foreign gate {sink.name!r}",
                        gate=name,
                        suggestion="drop the fanout branch to the foreign gate",
                    )


@register
class FanoutBookkeepingRule(Rule):
    """Fanin lists and fanout lists are two views of the same edges.

    For every fanin edge ``driver -> (gate, pin)`` the driver's fanout
    list must hold the matching branch, and vice versa.  The power
    estimator walks fanouts while simulation walks fanins; if the views
    disagree, load and activity are computed on different circuits.
    """

    id = "N005"
    title = "fanin and fanout lists disagree"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        gates = ctx.netlist.gates
        for name, gate in gates.items():
            for pin, driver in enumerate(gate.fanins):
                if gates.get(driver.name) is not driver:
                    continue  # N004's finding; don't double-report
                if (gate, pin) not in driver.fanouts:
                    yield self.diag(
                        f"fanout list of {driver.name!r} misses branch to "
                        f"{name!r} pin {pin}",
                        gate=driver.name,
                        suggestion=f"append ({name!r}, {pin}) to the fanout list",
                    )
            for sink, pin in gate.fanouts:
                if gates.get(sink.name) is not sink:
                    continue  # N004's finding
                if pin >= len(sink.fanins) or sink.fanins[pin] is not gate:
                    yield self.diag(
                        f"fanout entry {name!r} -> {sink.name!r} pin {pin} "
                        f"is stale",
                        gate=name,
                        pin=pin,
                        suggestion="remove the stale branch from the fanout list",
                    )


@register
class OutputBindingRule(Rule):
    """Primary-output ports and their drivers must agree both ways.

    A gate claiming a port in ``po_names`` must be the driver recorded
    in ``netlist.outputs`` and vice versa, and every port needs a load
    entry — output load is part of the driver's power and delay.
    """

    id = "N006"
    title = "primary-output binding broken"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        netlist = ctx.netlist
        for name, gate in netlist.gates.items():
            for po in gate.po_names:
                if netlist.outputs.get(po) is not gate:
                    yield self.diag(
                        f"gate {name!r} claims PO {po!r} owned by another "
                        f"driver",
                        gate=name,
                        suggestion="rebind the port with set_output",
                    )
        for po, driver in netlist.outputs.items():
            if netlist.gates.get(driver.name) is not driver:
                yield self.diag(
                    f"PO {po!r} driven by foreign gate",
                    gate=driver.name,
                    suggestion="rebind the port to a registered gate",
                )
            elif po not in driver.po_names:
                yield self.diag(
                    f"driver of PO {po!r} does not list the port",
                    gate=driver.name,
                    suggestion=f"append {po!r} to the driver's po_names",
                )
            if po not in netlist.output_loads:
                yield self.diag(
                    f"PO {po!r} has no load entry",
                    gate=driver.name,
                    suggestion="record the port's load in output_loads",
                )


@register
class MultiDrivenOutputRule(Rule):
    """Each primary output port has exactly one driver.

    Two gates claiming the same port is electrical contention; which
    one a writer or simulator picks is arbitrary, so the netlist has no
    well-defined function.
    """

    id = "N007"
    title = "primary output claimed by more than one driver"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        claims: dict[str, list[str]] = {}
        for name, gate in ctx.netlist.gates.items():
            for po in gate.po_names:
                claims.setdefault(po, []).append(name)
        for po, drivers in claims.items():
            if len(drivers) > 1:
                yield self.diag(
                    f"PO {po!r} claimed by {len(drivers)} drivers: "
                    f"{', '.join(sorted(drivers))}",
                    gate=sorted(drivers)[0],
                    suggestion="keep exactly one driver per output port",
                )


@register
class CombinationalCycleRule(Rule):
    """The gate graph must be acyclic.

    Topological order, simulation, timing, and every dataflow analysis
    assume a DAG.  The DFS here is deliberately fresh (not the cached
    topological order, which may itself be stale on a corrupt netlist)
    and reports one representative gate per detected cycle.
    """

    id = "N008"
    title = "combinational cycle"

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        # Fresh DFS over fanin edges — deliberately not the cached
        # topological order, which may be stale on a hand-corrupted netlist.
        state: dict[int, int] = {}  # 0 = on stack, 1 = done
        for root in ctx.netlist.gates.values():
            if id(root) in state:
                continue
            stack: list[tuple[Gate, int]] = [(root, 0)]
            while stack:
                gate, child = stack[-1]
                if child == 0 and state.get(id(gate)) is None:
                    state[id(gate)] = 0
                if child < len(gate.fanins):
                    stack[-1] = (gate, child + 1)
                    nxt = gate.fanins[child]
                    marker = state.get(id(nxt))
                    if marker == 0:
                        yield self.diag(
                            f"combinational cycle through {nxt.name!r}",
                            gate=nxt.name,
                            suggestion="break the loop or register the "
                            "signal as sequential",
                        )
                        return  # one cycle report is enough
                    if marker is None:
                        stack.append((nxt, 0))
                else:
                    state[id(gate)] = 1
                    stack.pop()


# ----------------------------------------------------------------------
# Q0xx — structural quality (warning severity)
# ----------------------------------------------------------------------
@register
class DanglingGateRule(Rule):
    """A logic gate drives neither another gate nor a primary output.

    Dead logic still switches and still burns area.  Usually left over
    from a rewiring that forgot to sweep; ``Netlist.sweep_dead()``
    removes the whole dead cone safely.
    """

    id = "Q001"
    title = "logic gate with no fanout (dead logic)"
    severity = Severity.WARNING
    category = CATEGORY_QUALITY

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for name, gate in ctx.netlist.gates.items():
            if gate.is_input:
                continue
            if not gate.fanouts and not gate.po_names:
                yield self.diag(
                    f"gate {name!r} drives nothing",
                    gate=name,
                    suggestion="remove it with Netlist.sweep_dead()",
                )


@register
class ConstantFoldableRule(Rule):
    """A gate's output is constant by construction.

    Either the mapped cell function itself ignores its inputs, or every
    fanin is a constant tie cell.  Both shapes are local and syntactic —
    the SAT-backed S001 catches the non-obvious ones — and both fold
    away to a tie cell plus rewiring.
    """

    id = "Q002"
    title = "gate computes a constant or is fed only by constants"
    severity = Severity.WARNING
    category = CATEGORY_QUALITY

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for name, gate in ctx.netlist.gates.items():
            if gate.is_input or gate.cell is None:
                continue
            if gate.num_inputs > 0 and gate.cell.function.is_constant():
                yield self.diag(
                    f"gate {name!r}: cell {gate.cell.name!r} computes a "
                    f"constant regardless of its inputs",
                    gate=name,
                    suggestion="replace the gate by a tie cell",
                )
                continue
            if gate.fanins and all(
                not f.is_input and f.cell is not None and f.cell.is_constant()
                for f in gate.fanins
            ):
                yield self.diag(
                    f"gate {name!r} is fed only by constant tie cells",
                    gate=name,
                    suggestion="constant-fold the gate and propagate the value",
                )


@register
class DoubleInverterRule(Rule):
    """Back-to-back inverters cancel.

    INV(INV(x)) == x, so sinks of the second inverter can read the root
    directly; both inverters often die after the rewire.  Kept as a
    syntactic check; S004 generalizes it to arbitrary-depth phase
    chains via the phase analysis.
    """

    id = "Q003"
    title = "inverter driven by another inverter"
    severity = Severity.WARNING
    category = CATEGORY_QUALITY

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for name, gate in ctx.netlist.gates.items():
            if gate.is_input or gate.cell is None:
                continue
            if not gate.cell.is_inverter() or not gate.fanins:
                continue
            driver = gate.fanins[0]
            if driver.is_input or driver.cell is None:
                continue
            if driver.cell.is_inverter() and driver.fanins:
                root = driver.fanins[0]
                yield self.diag(
                    f"double inversion {root.name!r} -> {driver.name!r} -> "
                    f"{name!r}",
                    gate=name,
                    suggestion=f"rewire sinks of {name!r} to {root.name!r}",
                )


# ----------------------------------------------------------------------
# L0xx — library contracts
# ----------------------------------------------------------------------
@register
class UnknownCellRule(Rule):
    """Every mapped gate must instantiate a cell of the bound library.

    A cell name the library does not know — or a lookalike object
    shadowing the library's cell — means area/power/delay numbers come
    from data the library never vouched for.  Skipped when no library
    is bound.
    """

    id = "L001"
    title = "gate instantiates a cell absent from the bound library"
    category = CATEGORY_LIBRARY

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        library = ctx.netlist.library
        if library is None:
            return
        for name, gate in ctx.netlist.gates.items():
            if gate.is_input or gate.cell is None:
                continue
            if gate.cell.name not in library:
                yield self.diag(
                    f"gate {name!r} uses cell {gate.cell.name!r} not in "
                    f"library {library.name!r}",
                    gate=name,
                    suggestion="remap the gate onto a library cell",
                )
            elif library[gate.cell.name] is not gate.cell:
                yield self.diag(
                    f"gate {name!r}: cell {gate.cell.name!r} shadows the "
                    f"library's cell of the same name",
                    gate=name,
                    suggestion="instantiate the cell object owned by the "
                    "bound library",
                )


@register
class DriveLimitRule(Rule):
    """A stem's total load must respect its cell's drive limit.

    Load is the sum of sink pin loads plus output-port loads; the limit
    is the weakest ``max_load`` over the cell's pins.  Exceeding it
    stretches transition times in the delay model and invites glitches.
    """

    id = "L002"
    title = "stem load exceeds the cell's drive limit"
    severity = Severity.WARNING
    category = CATEGORY_LIBRARY

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        netlist = ctx.netlist
        for name, gate in netlist.gates.items():
            if gate.is_input or gate.cell is None or not gate.cell.pins:
                continue
            limit = min(p.max_load for p in gate.cell.pins)
            load = _safe_load(netlist, gate)
            if load is not None and load > limit + _LOAD_EPS:
                yield self.diag(
                    f"gate {name!r} drives {load:.3f} against a max_load "
                    f"of {limit:.3f}",
                    gate=name,
                    suggestion="buffer the stem or duplicate the gate",
                )


# ----------------------------------------------------------------------
# P0xx — power data
# ----------------------------------------------------------------------
@register
class ProbabilityRangeRule(Rule):
    """Measured switching probabilities must lie in [0, 1].

    The power rules and the estimator both consume the caller-supplied
    probability map; a value outside the unit interval (or NaN) means
    the estimation upstream is broken.  Skipped when the caller did not
    attach probabilities.
    """

    id = "P001"
    title = "switching probability outside [0, 1]"
    category = CATEGORY_POWER

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.probabilities is None:
            return
        for name, p in ctx.probabilities.items():
            if name not in ctx.netlist.gates:
                continue
            if not (0.0 <= p <= 1.0):  # also catches NaN
                yield self.diag(
                    f"signal {name!r} has probability {p!r}",
                    gate=name,
                    suggestion="re-estimate probabilities from a valid "
                    "pattern set",
                )


def _safe_load(netlist: Netlist, gate: Gate) -> float | None:
    """``Netlist.load_of`` that survives corrupt fanout bookkeeping."""
    total = 0.0
    for sink, pin in gate.fanouts:
        if sink.cell is None or pin >= len(sink.cell.pins):
            return None  # N003/N005 territory; no load verdict possible
        total += sink.cell.pins[pin].load
    for po in gate.po_names:
        load = netlist.output_loads.get(po)
        if load is None:
            return None
        total += load
    return total
