"""The S-series rule pack: findings backed by the static fact base.

Unlike the local ``Q0xx`` quality rules, which pattern-match one gate at
a time, every ``S0xx`` finding is a *proven* whole-netlist fact from
:class:`repro.analysis.AnalysisSuite` — dataflow results, structural
reachability, or SAT verdicts (the proof provenance is part of each
message).  The rules read :attr:`LintContext.facts` and skip silently
when the caller did not attach a fact base, mirroring how the ``P0xx``
rules treat missing probabilities.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import (
    CATEGORY_ANALYSIS,
    LintContext,
    Rule,
    register,
)


@register
class StaticallyConstantRule(Rule):
    """A logic gate's output is proven to never change.

    The constant analysis propagates ternary values forward through the
    netlist; gates it cannot decide are nominated by their simulation
    signature and confirmed by the SAT oracle.  A constant gate burns
    area and input load for a value a tie cell (or rewiring) provides
    for free.  Deliberate tie cells are exempt: computing a constant is
    their job.
    """

    id = "S001"
    title = "gate output proven statically constant"
    severity = Severity.WARNING
    category = CATEGORY_ANALYSIS

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.facts is None:
            return
        gates = ctx.netlist.gates
        for fact in ctx.facts.constants:
            gate = gates.get(fact.name)
            if gate is None or gate.is_input:
                continue
            if gate.cell is not None and gate.cell.is_constant():
                continue  # a tie cell is constant by design
            yield self.diag(
                f"gate {fact.name!r} always outputs {fact.value} "
                f"(proof: {fact.proof})",
                gate=fact.name,
                suggestion="replace the gate with a tie cell or fold the "
                "constant into its sinks",
            )


@register
class UnobservableConeRule(Rule):
    """A gate's output can never influence any primary output.

    Two proof shapes: ``dead`` gates have no structural path to a PO at
    all (purely graph reachability), while ``blocked`` gates have paths
    that the SAT flip-miter proved unable to propagate a change — every
    path runs into side inputs whose proven values block it.  Either
    way the gate and the cone feeding only it are wasted power.
    """

    id = "S002"
    title = "gate proven unobservable at every primary output"
    severity = Severity.WARNING
    category = CATEGORY_ANALYSIS

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.facts is None:
            return
        gates = ctx.netlist.gates
        for fact in ctx.facts.unobservables:
            if fact.name not in gates:
                continue
            if fact.reason == "dead":
                detail = "no structural path to any primary output"
            else:
                detail = "every path to a primary output is blocked"
            yield self.diag(
                f"gate {fact.name!r} is unobservable: {detail} "
                f"(proof: {fact.proof})",
                gate=fact.name,
                suggestion="remove the gate (and any cone feeding only "
                "it) to save its power and area",
            )


@register
class ProvenDuplicateRule(Rule):
    """Two gates compute the same function (or exact complements).

    Equivalence classes are seeded by structural hashing and packed
    simulation signatures, then confirmed pairwise by the SAT miter —
    a reported pair is *proven* pointwise-identical, not just
    signature-identical.  Duplicates can share one driver; complement
    pairs can share a driver plus one inverter.

    Deliberate phase structure is exempt: primary inputs (nothing to
    remove) and single INV/BUF cells reading their class partner
    directly (that *is* the one inverter the fix would insert; chains
    are S004's finding).
    """

    id = "S003"
    title = "gate proven equivalent to another gate"
    severity = Severity.WARNING
    category = CATEGORY_ANALYSIS

    @staticmethod
    def _is_phase_gate_of(gate, other_name: str) -> bool:
        """Is ``gate`` a lone INV/BUF reading ``other_name`` directly?"""
        if gate.cell is None or not (
            gate.cell.is_inverter() or gate.cell.is_buffer()
        ):
            return False
        return bool(gate.fanins) and gate.fanins[0].name == other_name

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.facts is None:
            return
        gates = ctx.netlist.gates
        for cls in ctx.facts.equivalences:
            rep_gate = gates.get(cls.representative)
            for member, parity in sorted(cls.members.items()):
                if member == cls.representative or member not in gates:
                    continue
                gate = gates[member]
                if gate.is_input:
                    continue
                if self._is_phase_gate_of(gate, cls.representative) or (
                    rep_gate is not None
                    and self._is_phase_gate_of(rep_gate, member)
                ):
                    continue
                relation = "complement of" if parity else "duplicate of"
                yield self.diag(
                    f"gate {member!r} is a proven {relation} "
                    f"{cls.representative!r} (proof: {cls.proofs.get(member, 'sat')})",
                    gate=member,
                    suggestion=f"rewire fanouts of {member!r} to "
                    f"{cls.representative!r}"
                    + (" through an inverter" if parity else "")
                    + " and drop the duplicate cone",
                )


@register
class InvertiblePhaseChainRule(Rule):
    """A signal is an inverter/buffer chain over a distant root.

    Phase tracking follows INV/BUF cells from each root, recording
    parity and depth.  A chain of depth >= 2 re-buffers a signal that is
    already available (in one phase or the other) closer to the root;
    unless the chain exists for drive strength, its inner stages are
    removable.
    """

    id = "S004"
    title = "inverter/buffer chain of depth >= 2"
    severity = Severity.INFO
    category = CATEGORY_ANALYSIS

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        if ctx.facts is None:
            return
        gates = ctx.netlist.gates
        for fact in ctx.facts.phases:
            if fact.depth < 2 or fact.name not in gates:
                continue
            phase = "inverted" if fact.parity else "same-phase"
            yield self.diag(
                f"gate {fact.name!r} is a depth-{fact.depth} "
                f"inverter/buffer chain over {fact.root!r} ({phase})",
                gate=fact.name,
                suggestion=f"read {fact.root!r} "
                + ("through one inverter" if fact.parity else "directly")
                + " unless the chain buffers for drive strength",
            )
