"""Scheduling passes over a shared context.

The :class:`PassManager` runs a pass sequence with declared-dependency
semantics: before each pass it lazily (re)builds the analyses the pass
``requires``; afterwards it invalidates exactly what the pass declares
in ``invalidates`` (dependents cascade through the context's dependency
graph).  Each pass runs under its own telemetry phase — a
``pass.<name>`` timer on the manager's
:class:`~repro.telemetry.metrics.Metrics` — so pipeline hot spots show
up per stage, not as one opaque total.

When the context's options carry ``sanitize=True``, each pass also runs
under a :class:`PassContract`: reading an analysis it never declared, or
dirtying state without declaring ``invalidates``/``maintains``, raises a
``[contract]``-tagged :class:`~repro.errors.PipelineError` instead of
silently computing over (or handing the next pass) stale analyses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.errors import PipelineError
from repro.netlist.netlist import Netlist
from repro.pipeline.context import OptimizationContext
from repro.pipeline.passes import Pass, PassResult
from repro.telemetry.metrics import Metrics
from repro.transform.optimizer import OptimizeOptions


class PassContract:
    """Declared-dependency audit for one pass run (``sanitize`` mode).

    Installed on the context around ``stage.run``.  Three checks:

    - a depth-0 ``ctx.get`` of an analysis outside ``requires`` or
      ``maintains`` (prerequisites fetched by the context's own builders
      are exempt — they are the context's reads, not the pass's),
    - a ``ctx.put``/``ctx.invalidate`` of an analysis outside
      ``maintains`` or ``invalidates`` (cascaded dependents of a
      declared invalidation are exempt),
    - a structural netlist edit by a pass declaring neither
      ``invalidates`` nor ``maintains`` — the one way to hand every
      later pass silently-stale analyses.

    Violations raise a ``[contract]``-tagged
    :class:`~repro.errors.PipelineError` naming the pass, the access,
    and the declaration that would legalize it.
    """

    def __init__(self, stage: Pass):
        self.stage = stage
        self._reads = set(stage.requires) | set(stage.maintains)
        self._writes = set(stage.maintains) | set(stage.invalidates)

    def _fail(self, what: str, fix: str) -> None:
        stage = self.stage
        raise PipelineError(
            f"[contract] pass {stage.name!r} {what} without declaring it; "
            f"{fix} (requires={list(stage.requires)}, "
            f"maintains={list(stage.maintains)}, "
            f"invalidates={list(stage.invalidates)})"
        )

    def check_read(self, name: str) -> None:
        if name not in self._reads:
            self._fail(
                f"read analysis {name!r}",
                "add it to the pass's requires (or maintains)",
            )

    def check_write(self, name: str) -> None:
        if name not in self._writes:
            self._fail(
                f"dirtied analysis {name!r}",
                "add it to the pass's invalidates (or maintains)",
            )

    def check_netlist(self, before: tuple, context: OptimizationContext) -> None:
        after = (id(context.netlist), context.netlist.structural_version)
        if after != before and not self._writes:
            self._fail(
                "edited the netlist",
                "declare invalidates (or maintain the analyses "
                "incrementally and declare maintains)",
            )


@dataclass
class PipelineResult:
    """Everything one pipeline run produced."""

    context: OptimizationContext
    passes: list[PassResult] = field(default_factory=list)
    metrics: Optional[Metrics] = None

    @property
    def netlist(self) -> Netlist:
        return self.context.netlist

    @property
    def optimize_result(self):
        """The last powder stage's
        :class:`~repro.transform.optimizer.OptimizeResult` (``None`` when
        no stage ran the engine)."""
        for result in reversed(self.passes):
            if result.optimize_result is not None:
                return result.optimize_result
        return None

    @property
    def changed(self) -> bool:
        return any(result.changed for result in self.passes)

    def summary(self) -> str:
        lines = [f"pipeline over {self.context.netlist.name!r}:"]
        lines.extend(f"  {result.summary()}" for result in self.passes)
        total = sum(result.seconds for result in self.passes)
        lines.append(f"  {'total':10s} {total:7.2f}s")
        return "\n".join(lines)


class PassManager:
    """Runs pass sequences with build/invalidate bookkeeping."""

    def __init__(self, metrics: Optional[Metrics] = None, verbose: bool = False):
        self.metrics = metrics or Metrics()
        self.verbose = verbose

    def run(
        self, context: OptimizationContext, passes: Sequence[Pass]
    ) -> PipelineResult:
        outcome = PipelineResult(context=context, metrics=self.metrics)
        for stage in passes:
            # A pass may retune the context's options (e.g. powder
            # overrides) before its requirements are built against them.
            stage.configure(context)
            for analysis in stage.requires:
                context.get(analysis)
            contract = None
            if getattr(context.options, "sanitize", False):
                contract = PassContract(stage)
            before = (id(context.netlist), context.netlist.structural_version)
            tick = time.perf_counter()
            context._contract = contract
            try:
                with self.metrics.timer(f"pass.{stage.name}"):
                    result = stage.run(context)
            finally:
                context._contract = None
            if contract is not None:
                contract.check_netlist(before, context)
            result.seconds = time.perf_counter() - tick
            context.invalidate(*stage.invalidates)
            outcome.passes.append(result)
            if self.verbose:
                print(f"  [pipeline] {result.summary()}", flush=True)
        return outcome


def run_pipeline(
    netlist: Netlist,
    pipeline: Union[str, Sequence[Pass]],
    options: Optional[OptimizeOptions] = None,
    verbose: bool = False,
) -> PipelineResult:
    """Run a pipeline — a spec string or ready passes — on ``netlist``.

    ``run_pipeline(nl, "dedupe; powder(repeat=25); sweep")`` parses the
    spec through :func:`repro.pipeline.spec.parse_pipeline_spec` and
    schedules the stages over a fresh context built from ``options``.
    """
    if isinstance(pipeline, str):
        from repro.pipeline.spec import build_pipeline

        passes: Sequence[Pass] = build_pipeline(pipeline)
    else:
        passes = pipeline
    context = OptimizationContext(netlist, options)
    return PassManager(verbose=verbose).run(context, passes)
