"""The pipeline-spec mini-language.

A spec is a ``;``-separated list of stages, each a registered pass name
with optional keyword parameters::

    dedupe; powder(repeat=25, objective=power); sweep

Grammar (whitespace insignificant)::

    spec   := stage (';' stage)* [';']
    stage  := NAME [ '(' [param (',' param)*] ')' ]
    param  := NAME '=' value
    value  := INT | FLOAT | 'true' | 'false' | 'none' | NAME | STRING

``NAME`` is ``[A-Za-z_][A-Za-z0-9_]*``; bare-word values parse as
strings (``objective=power``); ``STRING`` is single- or double-quoted
for values with commas or spaces.  Errors raise
:class:`~repro.errors.PipelineError` carrying the 0-based character
``position`` of the offending token.

``parse_pipeline_spec`` and ``format_pipeline_spec`` round-trip:
``parse(format(parse(s))) == parse(s)`` for every valid ``s``, and
``format`` emits the canonical spelling (single spaces, lowercase
keyword literals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import PipelineError

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789")

#: Keyword literals (case-insensitive in the source, canonical lowercase).
_KEYWORDS = {"true": True, "false": False, "none": None}


@dataclass(frozen=True)
class StageSpec:
    """One parsed stage: a pass name plus its keyword parameters."""

    name: str
    kwargs: dict = field(default_factory=dict)


class _Cursor:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def error(self, message: str, position: int | None = None) -> PipelineError:
        return PipelineError(
            message, position=self.pos if position is None else position
        )

    def name(self, what: str) -> str:
        self.skip_ws()
        start = self.pos
        if self.peek() not in _NAME_START:
            raise self.error(
                f"expected {what}, got "
                + (f"{self.peek()!r}" if self.peek() else "end of spec")
            )
        while self.peek() in _NAME_CHARS:
            self.pos += 1
        return self.text[start:self.pos]

    def value(self):
        self.skip_ws()
        start = self.pos
        ch = self.peek()
        if ch in ("'", '"'):
            self.pos += 1
            while self.peek() and self.peek() != ch:
                self.pos += 1
            if not self.peek():
                raise self.error("unterminated string", position=start)
            literal = self.text[start + 1:self.pos]
            self.pos += 1
            return literal
        if ch in _NAME_START:
            word = self.name("value")
            return _KEYWORDS.get(word.lower(), word)
        # Numeric literal: consume up to a delimiter, let Python decide.
        while self.peek() and self.peek() not in ",); \t\n":
            self.pos += 1
        token = self.text[start:self.pos]
        if not token:
            raise self.error("expected a parameter value")
        for cast in (int, float):
            try:
                return cast(token)
            except ValueError:
                continue
        raise self.error(f"invalid value {token!r}", position=start)


def parse_pipeline_spec(text: str) -> list[StageSpec]:
    """Parse a spec string into :class:`StageSpec` stages."""
    cursor = _Cursor(text)
    stages: list[StageSpec] = []
    while True:
        cursor.skip_ws()
        if cursor.pos >= len(text):
            break
        stage_name = cursor.name("a pass name")
        kwargs: dict = {}
        cursor.skip_ws()
        if cursor.peek() == "(":
            cursor.pos += 1
            cursor.skip_ws()
            while cursor.peek() != ")":
                param_start = cursor.pos
                param = cursor.name("a parameter name")
                if param in kwargs:
                    raise cursor.error(
                        f"duplicate parameter {param!r}", position=param_start
                    )
                cursor.skip_ws()
                if cursor.peek() != "=":
                    raise cursor.error(f"expected '=' after {param!r}")
                cursor.pos += 1
                kwargs[param] = cursor.value()
                cursor.skip_ws()
                if cursor.peek() == ",":
                    cursor.pos += 1
                    cursor.skip_ws()
                    if cursor.peek() == ")":
                        raise cursor.error("trailing comma before ')'")
                elif cursor.peek() != ")":
                    raise cursor.error(
                        "expected ',' or ')' in the parameter list"
                    )
            cursor.pos += 1
        stages.append(StageSpec(stage_name, kwargs))
        cursor.skip_ws()
        if cursor.pos >= len(text):
            break
        if cursor.peek() != ";":
            raise cursor.error("expected ';' between stages")
        cursor.pos += 1
    if not stages:
        raise PipelineError("empty pipeline spec", position=0)
    return stages


def _format_value(value) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "none"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if text and all(c in _NAME_CHARS for c in text) and text[0] in _NAME_START:
        lowered = text.lower()
        if lowered in _KEYWORDS:
            return f'"{text}"'  # quote so it stays a string on reparse
        return text
    escaped = text.replace('"', "'")
    return f'"{escaped}"'


def format_stage(name: str, kwargs: dict) -> str:
    """The canonical spelling of one stage."""
    if not kwargs:
        return name
    params = ", ".join(
        f"{key}={_format_value(value)}"
        for key, value in kwargs.items()
        if value is not None
    )
    return f"{name}({params})" if params else name


def format_pipeline_spec(stages: Sequence[StageSpec]) -> str:
    """The canonical spec string for ``stages`` (round-trips with
    :func:`parse_pipeline_spec`)."""
    return "; ".join(format_stage(s.name, s.kwargs) for s in stages)


def build_pipeline(spec: str):
    """Parse ``spec`` and instantiate every stage through the registry."""
    from repro.pipeline.passes import make_pass

    return [
        make_pass(stage.name, stage.kwargs)
        for stage in parse_pipeline_spec(spec)
    ]
