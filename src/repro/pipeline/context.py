"""Shared analysis state the pass pipeline schedules work over.

An :class:`OptimizationContext` owns one netlist plus every derived
analysis the passes need — the probability engine, the power estimator,
the delay constraint, static timing, and the persistent candidate
workspace — under declared build/invalidate semantics:

- analyses are **built lazily**: ``ctx.get("estimator")`` constructs the
  estimator (and its prerequisite probability engine) on first use and
  returns the cached instance afterwards,
- passes **invalidate only what they dirty**: ``ctx.invalidate("timing")``
  drops the timing analysis and everything depending on it, so the next
  pass that requires it triggers exactly one rebuild,
- ``build_counts`` records every construction, which is how the
  scheduling tests pin "rebuilt exactly once after invalidation".

The dependency graph (an edge means "is built from"):

    probability -> estimator -> workspace
    constraint  -> timing
    triage      (self-contained: permissibility caches keyed on the
                 netlist's structural state)
    analysis    (self-contained: the static fact base, keyed on the
                 netlist's structural state with its own dirty hooks)

Every analysis also depends on the netlist structure; passes that edit
the netlist without maintaining the analyses incrementally declare
``invalidates = ALL_ANALYSES``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PipelineError
from repro.netlist.netlist import Netlist
from repro.transform.optimizer import OptimizeOptions

#: Every analysis name the context can build, in build-dependency order.
ALL_ANALYSES = (
    "probability",
    "estimator",
    "constraint",
    "timing",
    "workspace",
    "triage",
    "analysis",
)

#: analysis -> analyses built *from* it (invalidated along with it).
_DEPENDENTS = {
    "probability": ("estimator",),
    "estimator": ("workspace",),
    "constraint": ("timing",),
    "timing": (),
    "workspace": (),
    "triage": (),
    "analysis": (),
}

_UNBUILT = object()


class OptimizationContext:
    """One netlist plus lazily-built shared analyses, passed between passes."""

    def __init__(
        self,
        netlist: Netlist,
        options: Optional[OptimizeOptions] = None,
    ):
        self.netlist = netlist
        self.options = options or OptimizeOptions()
        #: The tracer configured on the options (read by the powder pass).
        self.tracer = self.options.trace
        #: (kept, removed) gate pairs when a dedupe ran over this context;
        #: lets the powder engine's ``dedupe_first`` skip a redundant sweep.
        self.dedupe_pairs: Optional[list[tuple[str, str]]] = None
        self._analyses: dict[str, object] = {}
        #: analysis name -> number of times it was constructed.
        self.build_counts: dict[str, int] = {}
        #: Active :class:`~repro.pipeline.manager.PassContract`, installed
        #: by the manager around each pass run when ``options.sanitize``
        #: is set; ``None`` means access is unchecked.
        self._contract = None
        # Builders fetch their prerequisites through ``get`` too; those
        # nested reads are the context's own, not the pass's, so the
        # contract only audits depth-0 calls.
        self._build_depth = 0

    # ------------------------------------------------------------------
    # Build / invalidate protocol
    # ------------------------------------------------------------------
    def get(self, name: str):
        """The analysis ``name``, building it (and prerequisites) lazily."""
        if self._contract is not None and self._build_depth == 0:
            self._contract.check_read(name)
        value = self._analyses.get(name, _UNBUILT)
        if value is _UNBUILT:
            builder = getattr(self, f"_build_{name}", None)
            if builder is None:
                raise PipelineError(f"unknown analysis {name!r}")
            self._build_depth += 1
            try:
                value = builder()
            finally:
                self._build_depth -= 1
            self._analyses[name] = value
            self.build_counts[name] = self.build_counts.get(name, 0) + 1
        return value

    def peek(self, name: str):
        """The analysis if already built, else ``None`` (never builds)."""
        value = self._analyses.get(name, _UNBUILT)
        return None if value is _UNBUILT else value

    def put(self, name: str, value) -> None:
        """Install a pass-maintained instance (e.g. a rebuilt STA)."""
        if name not in ALL_ANALYSES:
            raise PipelineError(f"unknown analysis {name!r}")
        if self._contract is not None:
            self._contract.check_write(name)
        self._analyses[name] = value

    def is_built(self, name: str) -> bool:
        return self._analyses.get(name, _UNBUILT) is not _UNBUILT

    def invalidate(self, *names: str) -> None:
        """Drop the named analyses and, transitively, their dependents."""
        if self._contract is not None:
            # Only the named roots are audited: declaring an invalidation
            # implies its dependents, which cascade below unchecked.
            for name in names:
                self._contract.check_write(name)
        self._drop(*names)

    def _drop(self, *names: str) -> None:
        for name in names:
            if name not in _DEPENDENTS:
                raise PipelineError(f"unknown analysis {name!r}")
            self._analyses.pop(name, None)
            self._drop(*_DEPENDENTS[name])

    def invalidate_all(self) -> None:
        self.invalidate(*ALL_ANALYSES)

    # ------------------------------------------------------------------
    # Builders (one per analysis; construction mirrors the legacy
    # PowerOptimizer.__init__ exactly, so pipelines stay bit-identical)
    # ------------------------------------------------------------------
    def _build_probability(self):
        opts = self.options
        if opts.input_temporal_specs is not None:
            from repro.power.temporal import TemporalSimulationProbability

            return TemporalSimulationProbability(
                self.netlist,
                num_patterns=opts.num_patterns,
                seed=opts.seed,
                input_specs=opts.input_temporal_specs,
            )
        from repro.power.probability import SimulationProbability

        return SimulationProbability(
            self.netlist,
            num_patterns=opts.num_patterns,
            seed=opts.seed,
            input_probs=opts.input_probs,
        )

    def _build_estimator(self):
        from repro.power.estimate import PowerEstimator

        return PowerEstimator(self.netlist, self.get("probability"))

    def _build_constraint(self):
        from repro.timing.constraints import DelayConstraint

        opts = self.options
        if opts.delay_limit is not None:
            return DelayConstraint(opts.delay_limit)
        if opts.delay_slack_percent is not None:
            return DelayConstraint.from_netlist(
                self.netlist, opts.delay_slack_percent
            )
        return None

    def _build_timing(self):
        from repro.timing.analysis import TimingAnalysis

        constraint = self.get("constraint")
        return TimingAnalysis(
            self.netlist, constraint.limit if constraint else None
        )

    def _build_workspace(self):
        from repro.transform.candidates import CandidateWorkspace

        return CandidateWorkspace(self.get("estimator"))

    def _build_triage(self):
        from repro.transform.permissible import TriageChecker

        return TriageChecker(
            self.netlist, backtrack_limit=self.options.backtrack_limit
        )

    def _build_analysis(self):
        from repro.analysis.suite import AnalysisSuite

        # Deliberately independent of the run's pattern/seed options:
        # every emitted fact is proven (SAT or exhaustively), so the
        # fact *content* does not depend on the simulation seed — only
        # which candidates get nominated for confirmation does.
        return AnalysisSuite(self.netlist)

    # ------------------------------------------------------------------
    # Convenience accessors (lazy-building)
    # ------------------------------------------------------------------
    @property
    def probability(self):
        return self.get("probability")

    @property
    def estimator(self):
        return self.get("estimator")

    @property
    def constraint(self):
        return self.get("constraint")

    @property
    def timing(self):
        return self.get("timing")

    @property
    def workspace(self):
        return self.get("workspace")

    @property
    def analysis(self):
        """The static fact base (:class:`repro.analysis.AnalysisSuite`)."""
        return self.get("analysis")
