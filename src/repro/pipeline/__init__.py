"""Composable optimization pass pipelines.

The architecture production synthesis flows converge on: small
single-purpose passes scheduled over shared, incrementally-maintained
analysis state.

- :class:`~repro.pipeline.context.OptimizationContext` — one netlist
  plus every derived analysis (probability engine, power estimator,
  delay constraint, STA, candidate workspace) with lazy build and
  declared invalidation,
- :class:`~repro.pipeline.passes.Pass` — the pass protocol (``name``,
  ``requires``, ``invalidates``, ``run(ctx)``) and the builtin passes
  (``dedupe``, ``powder``, ``sweep``, ``lint``, ``sanitize``,
  ``resynth``),
- :class:`~repro.pipeline.manager.PassManager` — schedules passes,
  rebuilds required analyses exactly when needed, and emits per-pass
  telemetry phases,
- :mod:`~repro.pipeline.spec` — the ``"dedupe; powder(repeat=25);
  sweep"`` mini-language, surfaced as ``powder pipeline run`` in the
  CLI.

Quickstart::

    from repro.pipeline import run_pipeline

    outcome = run_pipeline(netlist, "dedupe; powder(repeat=25); sweep")
    print(outcome.summary())
    print(outcome.optimize_result.summary())
"""

from repro.errors import PipelineError
from repro.pipeline.context import ALL_ANALYSES, OptimizationContext
from repro.pipeline.manager import (
    PassContract,
    PassManager,
    PipelineResult,
    run_pipeline,
)
from repro.pipeline.passes import (
    BddResynthPass,
    DedupePass,
    LintPass,
    Pass,
    PassResult,
    PowderPass,
    RegisteredPass,
    ResynthPass,
    SanitizePass,
    SweepPass,
    available_passes,
    default_pipeline,
    make_pass,
    register_pass,
)
from repro.pipeline.spec import (
    StageSpec,
    build_pipeline,
    format_pipeline_spec,
    format_stage,
    parse_pipeline_spec,
)

__all__ = [
    "ALL_ANALYSES",
    "OptimizationContext",
    "PassContract",
    "PassManager",
    "PipelineError",
    "PipelineResult",
    "run_pipeline",
    "Pass",
    "PassResult",
    "DedupePass",
    "PowderPass",
    "SweepPass",
    "LintPass",
    "SanitizePass",
    "BddResynthPass",
    "ResynthPass",
    "RegisteredPass",
    "available_passes",
    "default_pipeline",
    "make_pass",
    "register_pass",
    "StageSpec",
    "build_pipeline",
    "format_pipeline_spec",
    "format_stage",
    "parse_pipeline_spec",
]
