"""First-class optimization passes and the pass registry.

Each :class:`Pass` is a small, composable unit of work over a shared
:class:`~repro.pipeline.context.OptimizationContext`:

- ``requires`` names the analyses the pass reads — the
  :class:`~repro.pipeline.manager.PassManager` (re)builds them lazily
  before ``run``,
- ``invalidates`` names the analyses the pass dirties — the manager
  drops them (and their dependents) afterwards, so the next consumer
  pays exactly one rebuild,
- ``run(ctx)`` does the work and reports a :class:`PassResult`.

Builtin passes (see :func:`available_passes` / ``powder pipeline run
--list-passes``):

``dedupe``
    Merge structurally identical gates to a fixed point (the
    unconditional, always-permissible sweep of
    :mod:`repro.transform.dedupe`).
``powder``
    The paper's Figure-5 substitution round loop, parameterized by any
    :class:`~repro.transform.optimizer.OptimizeOptions` field —
    ``powder(repeat=25, objective=power)`` — with the objective resolved
    through the pluggable cost-model registry.
``sweep``
    Remove gates feeding neither a primary output nor another live gate.
``lint``
    Run the :mod:`repro.lint` rule pack; fails the pipeline at a
    configurable severity.
``sanitize``
    Cross-check every *built* analysis in the context against a
    from-scratch rebuild (the pipeline-level variant of the per-move
    :class:`~repro.lint.sanitizer.TransformSanitizer`).
``resynth``
    Adapter over the :mod:`repro.synth` flow: un-map to the AND2/INV
    subject graph and technology-map again (``mode=power|area|delay``).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Optional

from repro.errors import LintError, PipelineError
from repro.pipeline.context import ALL_ANALYSES, OptimizationContext
from repro.transform.optimizer import OptimizeOptions, PowerOptimizer

#: OptimizeOptions fields whose value determines how analyses are
#: *constructed*; a powder override of one of these must rebuild the
#: affected analysis roots before the engine runs.
_ANALYSIS_OPTION_ROOTS = {
    "num_patterns": ("probability",),
    "seed": ("probability",),
    "input_probs": ("probability",),
    "input_temporal_specs": ("probability",),
    "delay_limit": ("constraint",),
    "delay_slack_percent": ("constraint",),
}


@dataclass
class PassResult:
    """What one pass did to the context."""

    name: str
    #: Whether the pass changed the netlist.
    changed: bool = False
    #: Wall-clock seconds (filled in by the manager).
    seconds: float = 0.0
    #: Pass-specific counters (moves applied, gates merged, ...).
    details: dict = field(default_factory=dict)
    #: The full :class:`~repro.transform.optimizer.OptimizeResult` when
    #: the pass ran the optimization engine; ``None`` otherwise.
    optimize_result: Optional[object] = None

    def summary(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.details.items())
        state = "changed" if self.changed else "clean"
        return f"{self.name:10s} {self.seconds:7.2f}s  {state:7s}  {parts}"


class Pass:
    """One composable unit of work over an :class:`OptimizationContext`."""

    #: Registry key; also the stage name in pipeline specs.
    name: str = "?"
    #: Analyses built before :meth:`run` (in declaration order).
    requires: tuple[str, ...] = ()
    #: Analyses dropped after :meth:`run` (dependents cascade).
    invalidates: tuple[str, ...] = ()
    #: Analyses the pass reads or updates *itself* — lazily, optionally,
    #: or incrementally — without the manager's pre-build/invalidate
    #: help.  Purely a contract declaration (see
    #: :class:`~repro.pipeline.manager.PassContract`); the manager never
    #: acts on it.
    maintains: tuple[str, ...] = ()

    def __init__(self, **params):
        #: The constructor kwargs, kept for spec round-tripping.
        self.params = params

    def configure(self, ctx: OptimizationContext) -> None:
        """Adjust the context before the manager builds ``requires``."""

    def run(self, ctx: OptimizationContext) -> PassResult:
        raise NotImplementedError

    def spec(self) -> str:
        """The pipeline-spec stage recreating this pass."""
        from repro.pipeline.spec import format_stage

        return format_stage(self.name, self.params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pass {self.spec()}>"


class DedupePass(Pass):
    """Merge structurally identical gates (same cell, same fanins)."""

    name = "dedupe"
    invalidates = ALL_ANALYSES

    def run(self, ctx: OptimizationContext) -> PassResult:
        from repro.transform.dedupe import merge_duplicate_gates

        pairs = merge_duplicate_gates(ctx.netlist)
        # Remember the sweep so a powder engine with ``dedupe_first``
        # doesn't redo it on the already-deduplicated netlist.
        ctx.dedupe_pairs = (ctx.dedupe_pairs or []) + pairs
        return PassResult(
            self.name, changed=bool(pairs), details={"merged": len(pairs)}
        )


class SweepPass(Pass):
    """Remove dead gates (no path to any primary output)."""

    name = "sweep"
    invalidates = ALL_ANALYSES

    def run(self, ctx: OptimizationContext) -> PassResult:
        removed = ctx.netlist.sweep_dead()
        return PassResult(
            self.name, changed=bool(removed), details={"removed": len(removed)}
        )


class PowderPass(Pass):
    """The Figure-5 substitution round loop over the shared context.

    Keyword parameters override the corresponding
    :class:`~repro.transform.optimizer.OptimizeOptions` fields for this
    stage, e.g. ``powder(repeat=25, objective=power)``; unset fields
    inherit the context's options.  The engine maintains its required
    analyses incrementally, so the pass invalidates nothing.
    """

    name = "powder"
    requires = ("estimator", "timing")
    invalidates = ()
    # The engine builds, reads, and incrementally updates every context
    # analysis itself (workspace, triage, the fact base...), so the full
    # set is contract-legal without manager involvement.
    maintains = ALL_ANALYSES

    def __init__(self, **overrides):
        valid = {f.name for f in fields(OptimizeOptions)}
        unknown = set(overrides) - valid
        if unknown:
            raise PipelineError(
                f"unknown powder option(s) {sorted(unknown)}; valid "
                f"options are the OptimizeOptions fields"
            )
        super().__init__(**overrides)

    def configure(self, ctx: OptimizationContext) -> None:
        if not self.params:
            return
        effective = replace(ctx.options, **self.params)
        # An override that changes how an analysis is *built* must force
        # a rebuild; otherwise keep whatever prior passes left valid.
        for option_name, roots in _ANALYSIS_OPTION_ROOTS.items():
            if getattr(effective, option_name) != getattr(
                ctx.options, option_name
            ):
                ctx.invalidate(*roots)
        ctx.options = effective
        ctx.tracer = effective.trace

    def run(self, ctx: OptimizationContext) -> PassResult:
        engine = PowerOptimizer(context=ctx)
        result = engine.run()
        return PassResult(
            self.name,
            changed=bool(result.moves) or bool(engine.deduped),
            details={
                "moves": len(result.moves),
                "rounds": result.rounds,
                "power": round(result.final_power, 6),
            },
            optimize_result=result,
        )


class WindowPass(Pass):
    """Windowed POWDER for large netlists (:mod:`repro.transform.windowed`).

    Partitions the netlist into TFI/TFO windows, optimizes each on a
    ``multiprocessing`` pool, and merges the non-conflicting move lists.
    Keyword parameters override :class:`OptimizeOptions` fields, e.g.
    ``window(jobs=4, window_size=120)``; ``windowed=True`` is implied.
    The merge edits the netlist outside the context's incremental
    machinery, so every analysis is invalidated afterwards.
    """

    name = "window"
    invalidates = ALL_ANALYSES

    def __init__(self, **overrides):
        valid = {f.name for f in fields(OptimizeOptions)}
        unknown = set(overrides) - valid
        if unknown:
            raise PipelineError(
                f"unknown window option(s) {sorted(unknown)}; valid "
                f"options are the OptimizeOptions fields"
            )
        super().__init__(**overrides)

    def run(self, ctx: OptimizationContext) -> PassResult:
        from repro.transform.windowed import WindowedOptimizer

        options = replace(ctx.options, windowed=True, **self.params)
        engine = WindowedOptimizer(ctx.netlist, options)
        result = engine.run()
        statuses: dict = {}
        for outcome in engine.outcomes:
            statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
        return PassResult(
            self.name,
            changed=bool(result.moves),
            details={
                "moves": len(result.moves),
                "windows": result.rounds,
                "jobs": options.jobs,
                "power": round(result.final_power, 6),
                **statuses,
            },
            optimize_result=result,
        )


class LintPass(Pass):
    """Gate the pipeline on the :mod:`repro.lint` rule pack.

    Parameters: ``fail_on`` severity (``error``/``warning``/``info``),
    ``select``/``ignore`` comma-separated rule IDs,
    ``probabilities=true`` to also run the probability rules against the
    context's engine, and ``facts=true`` to build the context's static
    fact base and run the proof-backed ``S0xx`` rules.
    """

    name = "lint"

    def __init__(
        self,
        fail_on: str = "error",
        select: Optional[str] = None,
        ignore: Optional[str] = None,
        probabilities: bool = False,
        facts: bool = False,
    ):
        super().__init__(
            fail_on=fail_on,
            select=select,
            ignore=ignore,
            probabilities=probabilities,
            facts=facts,
        )
        from repro.lint import Severity

        self.threshold = Severity.from_name(fail_on)
        self.select = self._split(select)
        self.ignore = self._split(ignore)
        self.probabilities = probabilities
        self.facts = facts
        requires = []
        if probabilities:
            requires.append("probability")
        if facts:
            requires.append("analysis")
        if requires:
            self.requires = tuple(requires)

    @staticmethod
    def _split(ids: Optional[str]) -> Optional[list[str]]:
        if not ids:
            return None
        return [part.strip() for part in ids.split(",") if part.strip()]

    def run(self, ctx: OptimizationContext) -> PassResult:
        from repro.lint import lint_netlist

        probabilities = None
        if self.probabilities:
            engine = ctx.probability
            probabilities = {
                name: engine.probability(name) for name in ctx.netlist.gates
            }
        facts = ctx.analysis.facts if self.facts else None
        report = lint_netlist(
            ctx.netlist,
            select=self.select,
            ignore=self.ignore,
            probabilities=probabilities,
            facts=facts,
        )
        if report.at_least(self.threshold):
            raise LintError(
                f"pipeline lint gate failed at severity "
                f"{self.params['fail_on']}:\n{report.format_text()}",
                report=report,
            )
        return PassResult(
            self.name,
            changed=False,
            details={"findings": len(report.diagnostics)},
        )


class _ContextView:
    """Adapts a context to the optimizer surface the sanitizer reads."""

    def __init__(self, ctx: OptimizationContext):
        self._ctx = ctx
        self.netlist = ctx.netlist
        self.options = ctx.options

    @property
    def estimator(self):
        return self._ctx.estimator

    @property
    def constraint(self):
        return self._ctx.constraint

    @property
    def timing(self):
        return self._ctx.timing

    @property
    def _workspace(self):
        return self._ctx.peek("workspace")


class SanitizePass(Pass):
    """Cross-check the context's built analyses against fresh rebuilds.

    The pipeline-level counterpart of the per-move
    :class:`~repro.lint.sanitizer.TransformSanitizer`: structural lint
    always runs; the probability/timing/observability/pair-table
    rebuild comparisons run only for analyses earlier passes actually
    built, so a clean pipeline pays nothing extra.  Read-only: raises
    :class:`~repro.errors.LintError` on the first divergence and never
    mutates the netlist or the analyses.
    """

    name = "sanitize"
    # Read-only over whatever happens to be built; the checks themselves
    # decide what to inspect, so the whole set is contract-legal.
    maintains = ALL_ANALYSES

    def run(self, ctx: OptimizationContext) -> PassResult:
        from repro.lint.diagnostics import LintReport
        from repro.lint.sanitizer import TransformSanitizer

        checker = TransformSanitizer(_ContextView(ctx))
        findings = list(checker._check_lint())
        checked = ["lint"]
        if not findings:
            if ctx.is_built("estimator"):
                findings.extend(checker._check_probabilities())
                checked.append("probability")
            if ctx.is_built("timing"):
                findings.extend(checker._check_timing())
                checked.append("timing")
            if ctx.is_built("workspace"):
                findings.extend(checker._check_observability())
                findings.extend(checker._check_pair_tables())
                checked.append("workspace")
        if findings:
            first = findings[0]
            report = LintReport(
                f"{ctx.netlist.name}: pipeline sanitize", findings
            )
            raise LintError(
                f"sanitize pass: {first.rule_id}: {first.message}",
                rule_id=first.rule_id,
                report=report,
            )
        return PassResult(
            self.name, changed=False, details={"checked": ",".join(checked)}
        )


class ResynthPass(Pass):
    """Un-map and technology-map again (the :mod:`repro.synth` adapter).

    Parameters mirror :class:`repro.synth.mapper.MapOptions`:
    ``mode=power|area|delay`` selects the mapping cost.  Produces a new
    netlist bound to the same library, so every analysis is rebuilt.
    """

    name = "resynth"
    invalidates = ALL_ANALYSES

    def __init__(self, mode: str = "power"):
        if mode not in ("area", "power", "delay"):
            raise PipelineError(
                f"unknown resynth mode {mode!r}; pick area, power, or delay"
            )
        super().__init__(mode=mode)
        self.mode = mode

    def run(self, ctx: OptimizationContext) -> PassResult:
        from repro.synth.mapper import MapOptions
        from repro.synth.resynth import resynthesize

        before = ctx.netlist.num_gates()
        remapped = resynthesize(
            ctx.netlist, options=MapOptions(mode=self.mode)
        )
        ctx.netlist = remapped
        ctx.dedupe_pairs = None
        return PassResult(
            self.name,
            changed=True,
            details={"gates": f"{before}->{remapped.num_gates()}"},
        )


class BddResynthPass(Pass):
    """Functional resynthesis through probability-sifted output BDDs.

    The library-parametric alternative to :class:`ResynthPass`
    (:mod:`repro.synth.bdd_resynth`): per-output ROBDDs are minimised
    under an activity-weighted sifting cost and decomposed into a shared
    MUX tree before re-mapping.  Structure-forgetting, so it can win or
    lose big; circuits whose global BDD exceeds ``node_limit`` are left
    untouched and reported as skipped rather than failing the pipeline.
    """

    name = "bdd_resynth"
    invalidates = ALL_ANALYSES

    def __init__(
        self,
        mode: str = "power",
        sift: bool = True,
        max_sift_vars: int = 8,
        node_limit: int = 200_000,
    ):
        if mode not in ("area", "power", "delay"):
            raise PipelineError(
                f"unknown bdd_resynth mode {mode!r}; "
                f"pick area, power, or delay"
            )
        super().__init__(
            mode=mode,
            sift=sift,
            max_sift_vars=max_sift_vars,
            node_limit=node_limit,
        )
        self.mode = mode
        self.sift = bool(sift)
        self.max_sift_vars = int(max_sift_vars)
        self.node_limit = int(node_limit)

    def run(self, ctx: OptimizationContext) -> PassResult:
        from repro.logic.bdd import BddSizeError
        from repro.synth.bdd_resynth import (
            BddResynthOptions,
            bdd_resynthesize,
        )
        from repro.synth.mapper import MapOptions

        before = ctx.netlist.num_gates()
        try:
            remapped = bdd_resynthesize(
                ctx.netlist,
                options=BddResynthOptions(
                    sift=self.sift,
                    max_sift_vars=self.max_sift_vars,
                    node_limit=self.node_limit,
                ),
                map_options=MapOptions(mode=self.mode),
            )
        except BddSizeError as exc:
            return PassResult(
                self.name,
                changed=False,
                details={"skipped": str(exc)},
            )
        ctx.netlist = remapped
        ctx.dedupe_pairs = None
        return PassResult(
            self.name,
            changed=True,
            details={"gates": f"{before}->{remapped.num_gates()}"},
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegisteredPass:
    """One registry entry, as listed by ``--list-passes``."""

    name: str
    factory: Callable[..., Pass]
    description: str
    parameters: str


PASS_REGISTRY: dict[str, RegisteredPass] = {}


def register_pass(
    name: str,
    factory: Callable[..., Pass],
    description: str,
    parameters: str = "",
) -> None:
    """Register a pass factory under ``name`` for specs and the CLI."""
    PASS_REGISTRY[name] = RegisteredPass(name, factory, description, parameters)


register_pass(
    "dedupe",
    DedupePass,
    "merge structurally identical gates to a fixed point",
)
register_pass(
    "powder",
    PowderPass,
    "the paper's substitution round loop (Figure 5)",
    "any OptimizeOptions field, e.g. repeat=25, objective=power",
)
register_pass(
    "window",
    WindowPass,
    "windowed POWDER: partition, optimize per-window on a pool, merge",
    "any OptimizeOptions field, e.g. jobs=4, window_size=120",
)
register_pass(
    "sweep",
    SweepPass,
    "remove gates with no path to a primary output",
)
register_pass(
    "lint",
    LintPass,
    "gate the pipeline on the static-analysis rule pack",
    "fail_on=error|warning|info, select=IDS, ignore=IDS, "
    "probabilities=true|false, facts=true|false",
)
register_pass(
    "sanitize",
    SanitizePass,
    "cross-check built analyses against from-scratch rebuilds",
)
register_pass(
    "resynth",
    ResynthPass,
    "un-map and technology-map again (synthesis-flow adapter)",
    "mode=power|area|delay",
)
register_pass(
    "bdd_resynth",
    BddResynthPass,
    "re-express outputs as probability-sifted BDDs, re-map the MUX trees",
    "mode=power|area|delay, sift=true|false, max_sift_vars=N, node_limit=N",
)


def available_passes() -> list[RegisteredPass]:
    """Every registered pass, in registration order."""
    return list(PASS_REGISTRY.values())


def make_pass(name: str, kwargs: Optional[dict] = None) -> Pass:
    """Instantiate the registered pass ``name`` with ``kwargs``.

    Raises :class:`~repro.errors.PipelineError` on unknown names or
    parameters the factory rejects.
    """
    entry = PASS_REGISTRY.get(name)
    if entry is None:
        raise PipelineError(
            f"unknown pass {name!r}; registered passes: "
            f"{', '.join(sorted(PASS_REGISTRY))}"
        )
    try:
        return entry.factory(**(kwargs or {}))
    except TypeError as error:
        signature = ""
        try:
            signature = str(inspect.signature(entry.factory))
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            pass
        raise PipelineError(
            f"pass {name!r} rejected its parameters: {error}"
            + (f" (signature: {name}{signature})" if signature else "")
        ) from error


def default_pipeline(options: OptimizeOptions) -> list[Pass]:
    """The pipeline :func:`repro.transform.optimizer.power_optimize` runs:
    an optional ``dedupe`` (when ``dedupe_first`` is set) followed by one
    ``powder`` stage inheriting every option unchanged."""
    passes: list[Pass] = []
    if options.dedupe_first:
        passes.append(DedupePass())
    if options.windowed:
        passes.append(WindowPass())
    else:
        passes.append(PowderPass())
    return passes
