"""Cell library: gate models, genlib parsing, and the built-in library.

The paper maps circuits with the MCNC ``lib2.genlib`` library.  That exact
file is not redistributable here, so :mod:`repro.library.standard` provides a
library with the same gate classes and plausible area / capacitance / delay
figures, and :mod:`repro.library.genlib` parses the real thing when a user
has it.
"""

from repro.library.cell import Cell, Pin, Library
from repro.library.genlib import parse_genlib, parse_genlib_file, write_genlib
from repro.library.npn import NpnTransform, apply_npn, npn_canon, npn_key
from repro.library.standard import standard_library, STANDARD_GENLIB

__all__ = [
    "Cell",
    "Pin",
    "Library",
    "NpnTransform",
    "apply_npn",
    "npn_canon",
    "npn_key",
    "parse_genlib",
    "parse_genlib_file",
    "write_genlib",
    "standard_library",
    "STANDARD_GENLIB",
]
