"""The built-in standard-cell library.

The paper mapped its benchmarks with MCNC ``lib2.genlib``.  That file is not
redistributable, so this module defines a library with the same *shape*: the
usual static-CMOS gate classes (inverters/buffer, NAND/NOR/AND/OR of 2-4
inputs, XOR/XNOR, AOI/OAI complex gates) with plausible relative areas, pin
capacitances and linear-model delays.  Capacitances follow the paper's
Figure-2 convention (simple-gate input = 1 unit, XOR input = 2 units).

The text lives in :data:`STANDARD_GENLIB` and is parsed by the regular genlib
reader, so the built-in library exercises exactly the code path a real
``lib2.genlib`` would.
"""

from __future__ import annotations

from functools import lru_cache

from repro.library.cell import Library
from repro.library.genlib import parse_genlib

#: genlib source of the built-in library.
STANDARD_GENLIB = """
# repro standard library (lib2-like gate classes)
# PIN fields: name phase input-load max-load rise-block rise-fanout fall-block fall-fanout

GATE inv1   928  O=!a;            PIN * INV 1.0 999 1.0 0.9 1.0 0.9
GATE inv2  1392  O=!a;            PIN * INV 2.0 999 1.0 0.45 1.0 0.45
GATE buf1  1856  O=a;             PIN * NONINV 1.0 999 2.0 0.7 2.0 0.7

GATE nand2 1392  O=!(a*b);        PIN * INV 1.0 999 1.2 1.0 1.2 1.0
GATE nand3 1856  O=!(a*b*c);      PIN * INV 1.0 999 1.6 1.1 1.6 1.1
GATE nand4 2320  O=!(a*b*c*d);    PIN * INV 1.0 999 2.0 1.2 2.0 1.2

GATE nor2  1392  O=!(a+b);        PIN * INV 1.0 999 1.4 1.1 1.4 1.1
GATE nor3  1856  O=!(a+b+c);      PIN * INV 1.0 999 2.0 1.3 2.0 1.3
GATE nor4  2320  O=!(a+b+c+d);    PIN * INV 1.0 999 2.6 1.5 2.6 1.5

GATE and2  1856  O=a*b;           PIN * NONINV 1.0 999 1.9 0.9 1.9 0.9
GATE and3  2320  O=a*b*c;         PIN * NONINV 1.0 999 2.3 1.0 2.3 1.0
GATE or2   1856  O=a+b;           PIN * NONINV 1.0 999 2.1 1.0 2.1 1.0
GATE or3   2320  O=a+b+c;         PIN * NONINV 1.0 999 2.7 1.1 2.7 1.1

GATE xor2  2784  O=a*!b+!a*b;     PIN * UNKNOWN 2.0 999 2.6 1.2 2.6 1.2
GATE xnor2 2784  O=a*b+!a*!b;     PIN * UNKNOWN 2.0 999 2.6 1.2 2.6 1.2

GATE aoi21 1856  O=!(a*b+c);      PIN * INV 1.0 999 1.8 1.1 1.8 1.1
GATE aoi22 2320  O=!(a*b+c*d);    PIN * INV 1.0 999 2.1 1.2 2.1 1.2
GATE oai21 1856  O=!((a+b)*c);    PIN * INV 1.0 999 1.8 1.1 1.8 1.1
GATE oai22 2320  O=!((a+b)*(c+d)); PIN * INV 1.0 999 2.1 1.2 2.1 1.2

GATE zero   464  O=CONST0;
GATE one    464  O=CONST1;
"""


@lru_cache(maxsize=1)
def _cached_standard() -> Library:
    library = parse_genlib(STANDARD_GENLIB, name="repro-std")
    library.validate()
    return library


def standard_library() -> Library:
    """The built-in library (parsed once, shared instance)."""
    return _cached_standard()
