"""NPN canonicalisation of small Boolean functions.

Two functions are NPN-equivalent when one can be obtained from the other
by Negating inputs, Permuting inputs, and/or Negating the output.  The
canonical representative chosen here is the lexicographically smallest
truth table over all ``nvars! * 2**nvars * 2`` transforms — exhaustive,
which is exactly right for library cells (a handful of inputs each) and
wrong for anything bigger, hence the :data:`MAX_NPN_VARS` guard.

The :class:`~repro.library.cell.Library` NPN index
(:meth:`~repro.library.cell.Library.npn_index`) keys every matchable
cell by ``(num_inputs, canonical bits)`` so capability questions like
"can this library realise an AND-shaped function in *some* polarity?"
become dictionary lookups instead of per-call scans hard-coded to the
built-in genlib's cell list.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import permutations

from repro.errors import LogicError
from repro.logic.truthtable import TruthTable

#: Exhaustive canonicalisation is factorial·exponential; library cells
#: stay far below this.
MAX_NPN_VARS = 6


@dataclass(frozen=True)
class NpnTransform:
    """The transform that carries a function onto its NPN canon.

    Applied in order: permute inputs with ``perm`` (``perm[new] = old``,
    the :meth:`TruthTable.permute` convention), negate the permuted
    inputs selected by ``input_negation`` (bit ``v`` set = input ``v``
    of the permuted function is complemented), then complement the
    output when ``output_negation`` is set.
    """

    perm: tuple[int, ...]
    input_negation: int
    output_negation: bool


def negate_inputs(table: TruthTable, mask: int) -> TruthTable:
    """Complement the inputs selected by ``mask`` (bit ``v`` = input ``v``)."""
    if mask >> table.nvars:
        raise LogicError(
            f"negation mask 0x{mask:x} exceeds {table.nvars} inputs"
        )
    if mask == 0:
        return table
    bits = 0
    for minterm in range(table.nrows):
        if (table.bits >> (minterm ^ mask)) & 1:
            bits |= 1 << minterm
    return TruthTable(table.nvars, bits)


@lru_cache(maxsize=4096)
def _canon(nvars: int, bits: int) -> tuple[int, tuple[int, ...], int, bool]:
    table = TruthTable(nvars, bits)
    full = (1 << (1 << nvars)) - 1
    best_bits: int | None = None
    best = (tuple(range(nvars)), 0, False)
    for perm in permutations(range(nvars)):
        permuted = table.permute(perm)
        for mask in range(1 << nvars):
            negated = negate_inputs(permuted, mask).bits
            for flip in (False, True):
                candidate = negated ^ full if flip else negated
                if best_bits is None or candidate < best_bits:
                    best_bits = candidate
                    best = (perm, mask, flip)
    return best_bits or 0, best[0], best[1], best[2]


def npn_canon(table: TruthTable) -> tuple[TruthTable, NpnTransform]:
    """Canonical NPN representative and the transform producing it.

    The invariant ``apply_npn(table, transform) == canon`` holds for the
    returned pair.
    """
    if table.nvars > MAX_NPN_VARS:
        raise LogicError(
            f"NPN canonicalisation supports at most {MAX_NPN_VARS} inputs, "
            f"got {table.nvars}"
        )
    bits, perm, mask, flip = _canon(table.nvars, table.bits)
    return TruthTable(table.nvars, bits), NpnTransform(perm, mask, flip)


def apply_npn(table: TruthTable, transform: NpnTransform) -> TruthTable:
    """Apply an :class:`NpnTransform` (permute, negate inputs, negate output)."""
    result = negate_inputs(
        table.permute(transform.perm), transform.input_negation
    )
    return ~result if transform.output_negation else result


def npn_key(table: TruthTable) -> tuple[int, int]:
    """Hashable NPN-class key ``(nvars, canonical bits)``."""
    canon, _ = npn_canon(table)
    return (canon.nvars, canon.bits)
