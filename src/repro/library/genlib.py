"""Reader/writer for the SIS ``genlib`` library format.

The accepted grammar is the practically-relevant subset::

    GATE <name> <area> <output> = <expression> ;
    PIN  <name|*> <phase> <input-load> <max-load>
         <rise-block> <rise-fanout> <fall-block> <fall-fanout>

- ``#`` starts a comment to end of line.
- A ``PIN *`` line applies to every input of the preceding gate.
- Rise/fall delay pairs are averaged into the single ``tau``/``resistance``
  of the paper's linear model.
- ``CONST0``/``CONST1`` gates become zero-input tie cells.

:func:`write_genlib` emits the same subset, so a round-trip preserves every
field this library uses.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import LibraryError, ParseError
from repro.library.cell import Cell, Library, Pin

_PHASES = {"INV", "NONINV", "UNKNOWN"}


def _strip_comments(text: str) -> str:
    return re.sub(r"#[^\n]*", "", text)


def _tokenize(text: str) -> list[tuple[str, int]]:
    """Split into tokens tagged with their 1-based line number."""
    tokens: list[tuple[str, int]] = []
    for lineno, line in enumerate(_strip_comments(text).splitlines(), start=1):
        # Keep '=' and ';' as separate tokens, leave expression chars intact.
        line = line.replace("=", " = ").replace(";", " ; ")
        for token in line.split():
            tokens.append((token, lineno))
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[tuple[str, int]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos][0] if self.pos < len(self.tokens) else None

    def line(self) -> int:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos][1]
        return self.tokens[-1][1] if self.tokens else 0

    def take(self, expected: str | None = None) -> str:
        if self.pos >= len(self.tokens):
            raise ParseError("unexpected end of genlib input")
        token, lineno = self.tokens[self.pos]
        if expected is not None and token != expected:
            raise ParseError(f"expected {expected!r}, got {token!r}", lineno)
        self.pos += 1
        return token

    def take_float(self, what: str) -> float:
        token, lineno = self.tokens[self.pos], self.line()
        try:
            value = float(self.take())
        except ValueError:
            raise ParseError(f"bad {what}: {token[0]!r}", lineno) from None
        return value


def parse_genlib(text: str, name: str = "genlib") -> Library:
    """Parse genlib text into a :class:`Library`."""
    stream = _TokenStream(_tokenize(text))
    library = Library(name)
    while stream.peek() is not None:
        if stream.peek().upper() != "GATE":
            raise ParseError(f"expected GATE, got {stream.peek()!r}", stream.line())
        stream.take()
        gate_line = stream.line()
        gate_name = stream.take()
        if gate_name in library:
            raise LibraryError(
                f"duplicate gate {gate_name!r} (first defined earlier in "
                f"this library)",
                line=gate_line,
            )
        area = stream.take_float("area")
        output = stream.take()
        stream.take("=")
        expr_tokens: list[str] = []
        while stream.peek() is not None and stream.peek() != ";":
            expr_tokens.append(stream.take())
        stream.take(";")
        expression = " ".join(expr_tokens)
        if not expression:
            raise ParseError(f"gate {gate_name!r}: empty expression", gate_line)

        pin_specs: list[tuple[str, Pin]] = []
        while stream.peek() is not None and stream.peek().upper() == "PIN":
            stream.take()
            pin_line = stream.line()
            pin_name = stream.take()
            phase = stream.take().upper()
            if phase not in _PHASES:
                raise ParseError(
                    f"gate {gate_name!r}: bad pin phase {phase!r}", pin_line
                )
            load = stream.take_float("input load")
            max_load = stream.take_float("max load")
            rise_block = stream.take_float("rise block delay")
            rise_fanout = stream.take_float("rise fanout delay")
            fall_block = stream.take_float("fall block delay")
            fall_fanout = stream.take_float("fall fanout delay")
            if any(existing == pin_name for existing, _ in pin_specs):
                # A repeated PIN line used to silently shadow the earlier
                # one — reject it so electrical data cannot vanish.
                what = "wildcard PIN '*'" if pin_name == "*" else (
                    f"PIN {pin_name!r}"
                )
                raise LibraryError(
                    f"gate {gate_name!r}: duplicate {what}", line=pin_line
                )
            pin_specs.append(
                (
                    pin_name,
                    Pin(
                        name=pin_name,
                        load=load,
                        max_load=max_load,
                        tau=(rise_block + fall_block) / 2.0,
                        resistance=(rise_fanout + fall_fanout) / 2.0,
                    ),
                )
            )

        cell = _build_cell(gate_name, area, output, expression, pin_specs, gate_line)
        library.add(cell)
    return library


def _build_cell(
    gate_name: str,
    area: float,
    output: str,
    expression: str,
    pin_specs: list[tuple[str, Pin]],
    lineno: int,
) -> Cell:
    from repro.logic.expr import parse_expression

    expr = parse_expression(expression)
    variables = list(expr.variables())
    wildcard = next((p for n, p in pin_specs if n == "*"), None)
    named = {n: p for n, p in pin_specs if n != "*"}
    unknown = set(named) - set(variables)
    if unknown:
        raise ParseError(
            f"gate {gate_name!r}: PIN lines for unused inputs {sorted(unknown)}",
            lineno,
        )
    pins: list[Pin] = []
    for var in variables:
        if var in named:
            pins.append(named[var])
        elif wildcard is not None:
            pins.append(
                Pin(
                    name=var,
                    load=wildcard.load,
                    max_load=wildcard.max_load,
                    tau=wildcard.tau,
                    resistance=wildcard.resistance,
                )
            )
        else:
            raise ParseError(
                f"gate {gate_name!r}: no PIN data for input {var!r}", lineno
            )
    return Cell(gate_name, area, output, expr, pins)


def parse_genlib_file(path: str | Path) -> Library:
    path = Path(path)
    return parse_genlib(path.read_text(), name=path.stem)


def write_genlib(library: Library) -> str:
    """Render a library back to genlib text."""
    lines = [f"# library {library.name}"]
    for cell in library:
        lines.append(
            f"GATE {cell.name} {cell.area:g} {cell.output}={cell.expression.to_genlib()};"
        )
        for pin in cell.pins:
            lines.append(
                f"  PIN {pin.name} UNKNOWN {pin.load:g} {pin.max_load:g} "
                f"{pin.tau:g} {pin.resistance:g} {pin.tau:g} {pin.resistance:g}"
            )
    return "\n".join(lines) + "\n"
