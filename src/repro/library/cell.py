"""Gate and library models.

A :class:`Cell` is a combinational gate with one output.  Its logic function
is stored both as a genlib expression AST and as a
:class:`~repro.logic.truthtable.TruthTable` over the cell's ordered pin list.
Electrical data follows the paper's linear model:

- every input pin has a capacitive ``load`` it presents to its driver,
- the gate delay from pin *i* is ``tau[i] + R[i] * C_out`` where ``C_out`` is
  the capacitance driven by the gate output.

A :class:`Library` is a named collection of cells with convenience lookups
used by the mapper (cells by input count, canonical-function index) and by
the optimizer (cheapest 2-input gate of a given function).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import LibraryError
from repro.logic.expr import Expr, parse_expression
from repro.logic.truthtable import TruthTable


@dataclass(frozen=True)
class Pin:
    """One input pin of a cell."""

    name: str
    load: float  # input capacitance presented to the driving signal
    max_load: float = 999.0  # drive limit of the *driving* gate (genlib field)
    tau: float = 1.0  # intrinsic (block) delay through this pin
    resistance: float = 0.2  # load-dependent delay slope (R in tau + R*C)

    def __post_init__(self):
        if self.load < 0:
            raise LibraryError(f"pin {self.name!r}: negative load")
        if self.tau < 0 or self.resistance < 0:
            raise LibraryError(f"pin {self.name!r}: negative delay parameter")


class Cell:
    """A single-output combinational library gate."""

    def __init__(
        self,
        name: str,
        area: float,
        output: str,
        expression: Expr | str,
        pins: Sequence[Pin],
    ):
        if area < 0:
            raise LibraryError(f"cell {name!r}: negative area")
        self.name = name
        self.area = float(area)
        self.output = output
        if isinstance(expression, str):
            expression = parse_expression(expression)
        self.expression = expression
        self.pins: tuple[Pin, ...] = tuple(pins)
        self.pin_names: tuple[str, ...] = tuple(p.name for p in self.pins)
        if len(set(self.pin_names)) != len(self.pin_names):
            raise LibraryError(f"cell {name!r}: duplicate pin names")
        used = set(expression.variables())
        declared = set(self.pin_names)
        if used - declared:
            raise LibraryError(
                f"cell {name!r}: expression uses undeclared pins {sorted(used - declared)}"
            )
        self.function: TruthTable = expression.to_truthtable(self.pin_names)

    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return len(self.pins)

    def pin_index(self, name: str) -> int:
        try:
            return self.pin_names.index(name)
        except ValueError:
            raise LibraryError(f"cell {self.name!r} has no pin {name!r}") from None

    def pin(self, index_or_name) -> Pin:
        if isinstance(index_or_name, str):
            return self.pins[self.pin_index(index_or_name)]
        return self.pins[index_or_name]

    def input_load(self, index: int) -> float:
        return self.pins[index].load

    def total_input_load(self) -> float:
        return sum(p.load for p in self.pins)

    def is_constant(self) -> bool:
        return self.num_inputs == 0

    def is_inverter(self) -> bool:
        return self.num_inputs == 1 and self.function.bits == 0b01

    def is_buffer(self) -> bool:
        return self.num_inputs == 1 and self.function.bits == 0b10

    def evaluate(self, inputs: Sequence[int]) -> int:
        return self.function.evaluate(inputs)

    def __repr__(self) -> str:
        return f"Cell({self.name!r}, area={self.area}, f={self.expression})"


@dataclass
class Library:
    """A named collection of cells."""

    name: str
    cells: dict[str, Cell] = field(default_factory=dict)

    def add(self, cell: Cell) -> None:
        if cell.name in self.cells:
            raise LibraryError(f"duplicate cell {cell.name!r}")
        self.cells[cell.name] = cell
        self._invalidate_caches()

    def _invalidate_caches(self) -> None:
        self._inverter_cache = None
        self._npn_index_cache = None
        self._function_index_cache: dict[int | None, dict] = {}
        self._insertion_cache = None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __getitem__(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise LibraryError(f"library {self.name!r} has no cell {name!r}") from None

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    # ------------------------------------------------------------------
    # Lookups used across the system
    # ------------------------------------------------------------------
    def cells_with_inputs(self, n: int) -> list[Cell]:
        return [c for c in self.cells.values() if c.num_inputs == n]

    def inverter(self) -> Cell:
        """The smallest inverter; every usable library must have one."""
        cached = getattr(self, "_inverter_cache", None)
        if cached is not None:
            return cached
        candidates = [c for c in self.cells.values() if c.is_inverter()]
        if not candidates:
            raise LibraryError(f"library {self.name!r} has no inverter")
        best = min(candidates, key=lambda c: c.area)
        self._inverter_cache = best
        return best

    def buffer(self) -> Cell | None:
        candidates = [c for c in self.cells.values() if c.is_buffer()]
        return min(candidates, key=lambda c: c.area) if candidates else None

    def constant(self, value: bool) -> Cell | None:
        """A tie cell driving the given constant, if present."""
        target = TruthTable.constant(value, 0)
        for cell in self.cells.values():
            if cell.is_constant() and cell.function == target:
                return cell
        return None

    def find_two_input(self, function: TruthTable) -> Cell | None:
        """Cheapest 2-input cell computing the function, pin order as given.

        Used by OS3/IS3 to realise the new 2-input gate; per the paper, only
        gates actually in the library may be inserted.
        """
        if function.nvars != 2:
            raise LibraryError("find_two_input expects a 2-variable function")
        best: Cell | None = None
        for cell in self.cells_with_inputs(2):
            if cell.function == function and (best is None or cell.area < best.area):
                best = cell
        return best

    def matchable_cells(self, max_inputs: int | None = None) -> list[Cell]:
        """Cells eligible for technology mapping, sorted by area."""
        cells = [
            c
            for c in self.cells.values()
            if c.num_inputs > 0 and not c.function.is_constant()
        ]
        if max_inputs is not None:
            cells = [c for c in cells if c.num_inputs <= max_inputs]
        return sorted(cells, key=lambda c: (c.area, c.name))

    # ------------------------------------------------------------------
    # Capability queries (library-parametric backends)
    # ------------------------------------------------------------------
    def npn_index(self) -> dict[tuple[int, int], list[Cell]]:
        """Matchable cells grouped by NPN class.

        Keys are ``(num_inputs, canonical bits)`` from
        :func:`repro.library.npn.npn_key`; each bucket is sorted by
        ``(area, name)`` so "the cheapest cell in this class" is always
        ``bucket[0]``.  Cells wider than the NPN canonicaliser supports
        are left out — exhaustive canonicalisation past 6 inputs is not
        worth the factorial blow-up for a capability summary.
        """
        cached = getattr(self, "_npn_index_cache", None)
        if cached is not None:
            return cached
        from repro.library.npn import MAX_NPN_VARS, npn_key

        index: dict[tuple[int, int], list[Cell]] = {}
        for cell in self.matchable_cells():
            if cell.num_inputs > MAX_NPN_VARS:
                continue
            index.setdefault(npn_key(cell.function), []).append(cell)
        for bucket in index.values():
            bucket.sort(key=lambda c: (c.area, c.name))
        self._npn_index_cache = index
        return index

    def npn_cells(self, function: TruthTable) -> list[Cell]:
        """Cells NPN-equivalent to ``function``, cheapest first."""
        from repro.library.npn import npn_key

        return list(self.npn_index().get(npn_key(function), ()))

    def function_index(
        self, max_inputs: int | None = None
    ) -> dict[tuple[int, int], Cell]:
        """Cheapest cell per exact function ``(nvars, bits)``.

        Ties on area keep the first cell in :meth:`matchable_cells`
        order (area then name) — the technology mapper's historical
        tie-break, now shared so every backend resolves "which cell
        implements this function" identically.
        """
        caches = getattr(self, "_function_index_cache", None)
        if caches is None:
            caches = {}
            self._function_index_cache = caches
        cached = caches.get(max_inputs)
        if cached is not None:
            return cached
        index: dict[tuple[int, int], Cell] = {}
        for cell in self.matchable_cells(max_inputs=max_inputs):
            key = (cell.function.nvars, cell.function.bits)
            existing = index.get(key)
            if existing is None or cell.area < existing.area:
                index[key] = cell
        caches[max_inputs] = index
        return index

    def insertion_cells(self) -> list[Cell]:
        """2-input cells eligible as OS3/IS3 insertion gates.

        One cell per distinct exact function: the cheapest, with ties on
        area resolved by library declaration order (a stable sort, so
        the built-in genlib keeps its historical candidate ordering).
        Degenerate 2-input cells — constants or functions that ignore an
        input — are excluded; inserting one would be a buffer or tie in
        disguise, which OS2/sweep already cover.
        """
        cached = getattr(self, "_insertion_cache", None)
        if cached is not None:
            return list(cached)
        by_function: dict[int, Cell] = {}
        for cell in sorted(self.cells_with_inputs(2), key=lambda c: c.area):
            if cell.function.is_constant() or len(cell.function.support()) < 2:
                continue
            by_function.setdefault(cell.function.bits, cell)
        result = list(by_function.values())
        self._insertion_cache = tuple(result)
        return result

    def validate(self) -> None:
        """Check the invariants the rest of the system relies on.

        Beyond the inverter, the mapper needs a 2-input cell in the NPN
        class of AND2 whose polarity it can actually bridge: matching
        has no input-phase negation, so the cell must be AND2, OR2 (an
        AND of complemented inputs is an OR output-inverted), or their
        output complements NAND2/NOR2 — exactly the AND2 NPN class.
        """
        self.inverter()
        from repro.library.npn import npn_key

        and2_key = npn_key(TruthTable(2, 0b1000))
        usable = {0b1000, 0b1110, 0b0111, 0b0001}
        have_and_class = any(
            cell.function.bits in usable
            for cell in self.npn_index().get(and2_key, ())
        )
        if not have_and_class:
            raise LibraryError(
                f"library {self.name!r} needs a 2-input AND/OR/NAND/NOR "
                f"for mapping"
            )

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self.cells)} cells)"


def build_library(name: str, cell_specs: Iterable[Cell]) -> Library:
    """Assemble and validate a library from cells."""
    library = Library(name)
    for cell in cell_specs:
        library.add(cell)
    library.validate()
    return library
