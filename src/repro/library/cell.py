"""Gate and library models.

A :class:`Cell` is a combinational gate with one output.  Its logic function
is stored both as a genlib expression AST and as a
:class:`~repro.logic.truthtable.TruthTable` over the cell's ordered pin list.
Electrical data follows the paper's linear model:

- every input pin has a capacitive ``load`` it presents to its driver,
- the gate delay from pin *i* is ``tau[i] + R[i] * C_out`` where ``C_out`` is
  the capacitance driven by the gate output.

A :class:`Library` is a named collection of cells with convenience lookups
used by the mapper (cells by input count, canonical-function index) and by
the optimizer (cheapest 2-input gate of a given function).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.errors import LibraryError
from repro.logic.expr import Expr, parse_expression
from repro.logic.truthtable import TruthTable


@dataclass(frozen=True)
class Pin:
    """One input pin of a cell."""

    name: str
    load: float  # input capacitance presented to the driving signal
    max_load: float = 999.0  # drive limit of the *driving* gate (genlib field)
    tau: float = 1.0  # intrinsic (block) delay through this pin
    resistance: float = 0.2  # load-dependent delay slope (R in tau + R*C)

    def __post_init__(self):
        if self.load < 0:
            raise LibraryError(f"pin {self.name!r}: negative load")
        if self.tau < 0 or self.resistance < 0:
            raise LibraryError(f"pin {self.name!r}: negative delay parameter")


class Cell:
    """A single-output combinational library gate."""

    def __init__(
        self,
        name: str,
        area: float,
        output: str,
        expression: Expr | str,
        pins: Sequence[Pin],
    ):
        if area < 0:
            raise LibraryError(f"cell {name!r}: negative area")
        self.name = name
        self.area = float(area)
        self.output = output
        if isinstance(expression, str):
            expression = parse_expression(expression)
        self.expression = expression
        self.pins: tuple[Pin, ...] = tuple(pins)
        self.pin_names: tuple[str, ...] = tuple(p.name for p in self.pins)
        if len(set(self.pin_names)) != len(self.pin_names):
            raise LibraryError(f"cell {name!r}: duplicate pin names")
        used = set(expression.variables())
        declared = set(self.pin_names)
        if used - declared:
            raise LibraryError(
                f"cell {name!r}: expression uses undeclared pins {sorted(used - declared)}"
            )
        self.function: TruthTable = expression.to_truthtable(self.pin_names)

    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return len(self.pins)

    def pin_index(self, name: str) -> int:
        try:
            return self.pin_names.index(name)
        except ValueError:
            raise LibraryError(f"cell {self.name!r} has no pin {name!r}") from None

    def pin(self, index_or_name) -> Pin:
        if isinstance(index_or_name, str):
            return self.pins[self.pin_index(index_or_name)]
        return self.pins[index_or_name]

    def input_load(self, index: int) -> float:
        return self.pins[index].load

    def total_input_load(self) -> float:
        return sum(p.load for p in self.pins)

    def is_constant(self) -> bool:
        return self.num_inputs == 0

    def is_inverter(self) -> bool:
        return self.num_inputs == 1 and self.function.bits == 0b01

    def is_buffer(self) -> bool:
        return self.num_inputs == 1 and self.function.bits == 0b10

    def evaluate(self, inputs: Sequence[int]) -> int:
        return self.function.evaluate(inputs)

    def __repr__(self) -> str:
        return f"Cell({self.name!r}, area={self.area}, f={self.expression})"


@dataclass
class Library:
    """A named collection of cells."""

    name: str
    cells: dict[str, Cell] = field(default_factory=dict)

    def add(self, cell: Cell) -> None:
        if cell.name in self.cells:
            raise LibraryError(f"duplicate cell {cell.name!r}")
        self.cells[cell.name] = cell
        self._inverter_cache = None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __getitem__(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise LibraryError(f"library {self.name!r} has no cell {name!r}") from None

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    # ------------------------------------------------------------------
    # Lookups used across the system
    # ------------------------------------------------------------------
    def cells_with_inputs(self, n: int) -> list[Cell]:
        return [c for c in self.cells.values() if c.num_inputs == n]

    def inverter(self) -> Cell:
        """The smallest inverter; every usable library must have one."""
        cached = getattr(self, "_inverter_cache", None)
        if cached is not None:
            return cached
        candidates = [c for c in self.cells.values() if c.is_inverter()]
        if not candidates:
            raise LibraryError(f"library {self.name!r} has no inverter")
        best = min(candidates, key=lambda c: c.area)
        self._inverter_cache = best
        return best

    def buffer(self) -> Cell | None:
        candidates = [c for c in self.cells.values() if c.is_buffer()]
        return min(candidates, key=lambda c: c.area) if candidates else None

    def constant(self, value: bool) -> Cell | None:
        """A tie cell driving the given constant, if present."""
        target = TruthTable.constant(value, 0)
        for cell in self.cells.values():
            if cell.is_constant() and cell.function == target:
                return cell
        return None

    def find_two_input(self, function: TruthTable) -> Cell | None:
        """Cheapest 2-input cell computing the function, pin order as given.

        Used by OS3/IS3 to realise the new 2-input gate; per the paper, only
        gates actually in the library may be inserted.
        """
        if function.nvars != 2:
            raise LibraryError("find_two_input expects a 2-variable function")
        best: Cell | None = None
        for cell in self.cells_with_inputs(2):
            if cell.function == function and (best is None or cell.area < best.area):
                best = cell
        return best

    def matchable_cells(self, max_inputs: int | None = None) -> list[Cell]:
        """Cells eligible for technology mapping, sorted by area."""
        cells = [
            c
            for c in self.cells.values()
            if c.num_inputs > 0 and not c.function.is_constant()
        ]
        if max_inputs is not None:
            cells = [c for c in cells if c.num_inputs <= max_inputs]
        return sorted(cells, key=lambda c: (c.area, c.name))

    def validate(self) -> None:
        """Check the invariants the rest of the system relies on."""
        self.inverter()
        have_nand2 = any(
            c.num_inputs == 2 and c.function.bits == 0b0111
            for c in self.cells.values()
        )
        have_and2_or2 = any(
            c.num_inputs == 2 and c.function.bits in (0b1000, 0b1110)
            for c in self.cells.values()
        )
        if not (have_nand2 or have_and2_or2):
            raise LibraryError(
                f"library {self.name!r} needs a 2-input NAND/AND/OR for mapping"
            )

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self.cells)} cells)"


def build_library(name: str, cell_specs: Iterable[Cell]) -> Library:
    """Assemble and validate a library from cells."""
    library = Library(name)
    for cell in cell_specs:
        library.add(cell)
    library.validate()
    return library
