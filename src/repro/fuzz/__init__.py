"""Differential fuzzing & equivalence verification for the optimizer.

POWDER's correctness story rests on every permissible substitution
preserving circuit function; the four bundled benchmarks exercise only a
sliver of the input space.  This package attacks the transforms themselves
across randomized circuits:

- :mod:`~repro.fuzz.generator` — a seeded random mapped-netlist generator
  with controllable size/depth/fanout distributions and targeted shapes
  (reconvergent fanout, high-fanout stems, inverter chains) that stress
  each substitution class,
- :mod:`~repro.fuzz.oracle` — a differential oracle proving
  optimizer-output equivalence three independent ways (exhaustive
  simulation, SAT miter, random-vector prefilter) and cross-checking the
  reported power/area/delay against from-scratch re-estimation,
- :mod:`~repro.fuzz.properties` — metamorphic properties of the optimizer
  (power never increases, the delay constraint holds, re-running is safe,
  incremental and legacy engines agree move for move),
- :mod:`~repro.fuzz.shrink` — delta-debugging reduction of a failing
  netlist to a small reproducer,
- :mod:`~repro.fuzz.harness` — the ``powder fuzz`` campaign driver and the
  regression-corpus replay used by CI.
"""

from repro.fuzz.generator import (
    ALL_SHAPES,
    SHAPES,
    GeneratorConfig,
    batch_configs,
    large_config,
    random_mapped_netlist,
)
from repro.fuzz.oracle import (
    OracleReport,
    check_equivalence_tiers,
    cross_check_metrics,
)
from repro.fuzz.properties import run_properties
from repro.fuzz.shrink import shrink_netlist
from repro.fuzz.harness import (
    CaseResult,
    FuzzOptions,
    FuzzReport,
    cell_swap_mutator,
    replay_corpus,
    run_bench_cases,
    run_case,
    run_fuzz,
)

__all__ = [
    "ALL_SHAPES",
    "SHAPES",
    "GeneratorConfig",
    "batch_configs",
    "large_config",
    "random_mapped_netlist",
    "OracleReport",
    "check_equivalence_tiers",
    "cross_check_metrics",
    "run_properties",
    "shrink_netlist",
    "CaseResult",
    "FuzzOptions",
    "FuzzReport",
    "cell_swap_mutator",
    "replay_corpus",
    "run_bench_cases",
    "run_case",
    "run_fuzz",
]
