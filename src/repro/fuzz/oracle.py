"""The differential equivalence oracle and the metric cross-checker.

Equivalence of optimizer input and output is decided by *three mutually
independent* engines and their verdicts are compared:

1. **Random-vector simulation** (prefilter) — bit-parallel simulation on a
   shared seeded pattern set.  Cheap, only ever proves inequality.
2. **Exhaustive simulation** — for circuits of at most
   :data:`EXHAUSTIVE_INPUT_LIMIT` primary inputs, both netlists are
   simulated on all ``2^n`` vectors.  This is ground truth: no search, no
   abstraction, nothing shared with the production oracle.
3. **SAT miter** — :func:`repro.sat.oracle.sat_check_equivalent`, a
   Tseitin encoding solved by the DPLL engine.

The production oracle (:func:`repro.equiv.checker.check_equivalent`, the
one the optimizer itself trusts for permissibility) runs alongside as a
fourth opinion.  Any disagreement between definite verdicts is a finding —
by construction it implicates one of the engines, whichever way it falls.

:func:`cross_check_metrics` re-derives an :class:`OptimizeResult`'s power,
area and delay figures from scratch and flags drift against the numbers
the incremental engine reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.equiv.checker import check_equivalent
from repro.errors import NetlistError
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import SimState, exhaustive_patterns, random_patterns
from repro.power.estimate import PowerEstimator
from repro.power.probability import SimulationProbability
from repro.sat.oracle import sat_check_equivalent
from repro.timing.analysis import TimingAnalysis
from repro.transform.optimizer import OptimizeOptions, OptimizeResult

#: Largest PI count on which the exhaustive tier runs (2^16 patterns).
EXHAUSTIVE_INPUT_LIMIT = 16

#: Relative tolerance for the power cross-check (both sides are sums of
#: float products in potentially different orders).
POWER_RTOL = 1e-9


@dataclass
class OracleReport:
    """Per-tier verdicts plus every cross-engine disagreement found."""

    #: Tier name -> "equal" / "not-equal" / "unknown" / "skipped".
    verdicts: dict[str, str] = field(default_factory=dict)
    #: One PI assignment distinguishing the circuits, when any tier found one.
    counterexample: dict[str, int] | None = None
    #: Human-readable inconsistencies between the engines.
    disagreements: list[str] = field(default_factory=list)

    @property
    def equal(self) -> bool:
        """True when some engine proved equality and none disproved it."""
        statuses = set(self.verdicts.values())
        return "equal" in statuses and "not-equal" not in statuses

    @property
    def consistent(self) -> bool:
        return not self.disagreements


def _shared_patterns(left: Netlist, right: Netlist, kind: str, seed: int,
                     num_patterns: int) -> dict[str, np.ndarray]:
    """One pattern dict covering both input name sets (name-matched)."""
    names = sorted(set(left.input_names) | set(right.input_names))
    if kind == "exhaustive":
        return exhaustive_patterns(names)
    return random_patterns(names, num_patterns, seed)


def _simulate_outputs(netlist: Netlist, patterns) -> dict[str, np.ndarray]:
    sim = SimState(netlist, patterns)
    return {po: sim.value(driver.name) for po, driver in netlist.outputs.items()}


def _first_difference(
    left_outs: dict[str, np.ndarray],
    right_outs: dict[str, np.ndarray],
    patterns,
    input_names: list[str],
) -> dict[str, int] | None:
    """Name-matched PO comparison; extracts a counterexample vector."""
    for po in sorted(left_outs):
        diff = left_outs[po] ^ right_outs[po]
        nonzero = np.nonzero(diff)[0]
        if nonzero.size:
            word = int(nonzero[0])
            bit = int(diff[word]).bit_length() - 1
            return {
                name: int((int(patterns[name][word]) >> bit) & 1)
                for name in input_names
            }
    return None


def check_equivalence_tiers(
    left: Netlist,
    right: Netlist,
    num_patterns: int = 1024,
    seed: int = 17,
    sat_conflict_limit: int = 200_000,
    atpg_backtrack_limit: int = 50_000,
) -> OracleReport:
    """Run every oracle tier on the pair and reconcile the verdicts."""
    report = OracleReport()
    if set(left.outputs) != set(right.outputs):
        report.verdicts["interface"] = "not-equal"
        report.disagreements.append(
            "primary-output name sets differ: "
            f"{sorted(set(left.outputs) ^ set(right.outputs))}"
        )
        return report

    input_names = sorted(set(left.input_names) | set(right.input_names))

    # Tier 1: random-vector prefilter (proves only inequality).
    patterns = _shared_patterns(left, right, "random", seed, num_patterns)
    cex = _first_difference(
        _simulate_outputs(left, patterns),
        _simulate_outputs(right, patterns),
        patterns,
        input_names,
    )
    if cex is not None:
        report.verdicts["random-sim"] = "not-equal"
        report.counterexample = cex
    else:
        report.verdicts["random-sim"] = "unknown"

    # Tier 2: exhaustive simulation — ground truth on small circuits.
    if len(input_names) <= EXHAUSTIVE_INPUT_LIMIT:
        patterns = _shared_patterns(left, right, "exhaustive", seed, 0)
        cex = _first_difference(
            _simulate_outputs(left, patterns),
            _simulate_outputs(right, patterns),
            patterns,
            input_names,
        )
        report.verdicts["exhaustive"] = "not-equal" if cex else "equal"
        if cex is not None and report.counterexample is None:
            report.counterexample = cex
    else:
        report.verdicts["exhaustive"] = "skipped"

    # Tier 3: SAT miter over the Tseitin encoding.  An engine crashing on
    # an input the others handled is itself a finding, not a fuzzer crash.
    try:
        sat = sat_check_equivalent(left, right, conflict_limit=sat_conflict_limit)
    except NetlistError as exc:
        report.verdicts["sat"] = "error"
        report.disagreements.append(f"sat tier raised: {exc}")
    else:
        report.verdicts["sat"] = sat.status
        if sat.counterexample is not None and report.counterexample is None:
            report.counterexample = sat.counterexample

    # The production oracle, as the fourth opinion.
    try:
        prod = check_equivalent(
            left,
            right,
            num_patterns=num_patterns,
            seed=seed,
            backtrack_limit=atpg_backtrack_limit,
        )
    except NetlistError as exc:
        report.verdicts["production"] = "error"
        report.disagreements.append(f"production tier raised: {exc}")
    else:
        report.verdicts["production"] = prod.status
        if prod.counterexample is not None and report.counterexample is None:
            report.counterexample = prod.counterexample

    _reconcile(report)
    return report


def _reconcile(report: OracleReport) -> None:
    definite = {
        tier: verdict
        for tier, verdict in report.verdicts.items()
        if verdict in ("equal", "not-equal")
    }
    if len(set(definite.values())) > 1:
        report.disagreements.append(
            "oracle tiers disagree: "
            + ", ".join(f"{tier}={v}" for tier, v in sorted(definite.items()))
        )
    if not definite:
        report.disagreements.append(
            "no oracle tier reached a definite verdict: "
            + ", ".join(f"{tier}={v}" for tier, v in sorted(report.verdicts.items()))
        )
    # A found counterexample must actually distinguish the pair — tier 1
    # would have seen any vector the other engines report, so a "equal"
    # consensus alongside a counterexample is itself a disagreement.
    if report.counterexample is not None and "not-equal" not in set(
        report.verdicts.values()
    ):
        report.disagreements.append(
            "counterexample reported without a not-equal verdict"
        )


# ----------------------------------------------------------------------
# Metric cross-checks
# ----------------------------------------------------------------------
def cross_check_metrics(
    result: OptimizeResult, options: OptimizeOptions
) -> list[str]:
    """Re-derive final power/area/delay from scratch; report any drift.

    The optimizer maintains all three incrementally; a silently stale cache
    shows up as a difference against a cold rebuild on the final netlist.
    """
    netlist = result.netlist
    problems: list[str] = []

    engine = SimulationProbability(
        netlist,
        num_patterns=options.num_patterns,
        seed=options.seed,
        input_probs=options.input_probs,
    )
    fresh_power = PowerEstimator(netlist, engine).total()
    if not np.isclose(result.final_power, fresh_power, rtol=POWER_RTOL, atol=1e-12):
        problems.append(
            f"reported final power {result.final_power!r} != from-scratch "
            f"re-estimation {fresh_power!r}"
        )

    fresh_area = netlist.total_area()
    if abs(result.final_area - fresh_area) > 1e-9:
        problems.append(
            f"reported final area {result.final_area!r} != recomputed "
            f"{fresh_area!r}"
        )

    fresh_delay = TimingAnalysis(netlist).circuit_delay
    if abs(result.final_delay - fresh_delay) > 1e-9:
        problems.append(
            f"reported final delay {result.final_delay!r} != from-scratch "
            f"STA {fresh_delay!r}"
        )
    return problems


def verify_counterexample(
    left: Netlist, right: Netlist, assignment: dict[str, int]
) -> bool:
    """True when ``assignment`` really distinguishes the two netlists."""
    patterns = {
        name: np.full(
            1,
            np.uint64(0xFFFFFFFFFFFFFFFF) if assignment.get(name) else np.uint64(0),
            dtype=np.uint64,
        )
        for name in set(left.input_names) | set(right.input_names)
    }
    left_outs = _simulate_outputs(left, patterns)
    right_outs = _simulate_outputs(right, patterns)
    return any(
        int(left_outs[po][0]) & 1 != int(right_outs[po][0]) & 1
        for po in left_outs
    )
